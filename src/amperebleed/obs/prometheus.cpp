#include "amperebleed/obs/prometheus.hpp"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "amperebleed/util/strings.hpp"

namespace amperebleed::obs {

std::string prometheus_metric_name(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    const bool ok = alpha || c == '_' || c == ':' || (digit && i > 0);
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

std::string prometheus_escape_label_value(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

std::string fmt_value(double v) {
  // printf renders non-finite doubles as "nan"/"inf"; the exposition format
  // requires the exact tokens "NaN", "+Inf" and "-Inf".
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return util::format("%.17g", v);
}

// Renders from the registry's JSON snapshot — the one already-locked,
// point-in-time view — so text and JSON exports can never disagree.
void render_histogram(const std::string& name, const util::Json& entry,
                      std::string& out) {
  const util::Json* buckets = entry.find("buckets");
  const util::Json* sum = entry.find("sum");
  const util::Json* count = entry.find("count");
  if (buckets == nullptr || sum == nullptr || count == nullptr) return;

  out += "# TYPE " + name + " histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets->size(); ++i) {
    const util::Json& bucket = buckets->at(i);
    const util::Json* le = bucket.find("le");
    const util::Json* bucket_count = bucket.find("count");
    if (le == nullptr || bucket_count == nullptr) continue;
    cumulative += static_cast<std::uint64_t>(bucket_count->as_integer());
    const std::string le_text =
        le->is_string() ? "+Inf" : fmt_value(le->as_number());
    out += name + "_bucket{le=\"" + le_text + "\"} " +
           util::format("%llu", static_cast<unsigned long long>(cumulative)) +
           "\n";
  }
  out += name + "_sum " + fmt_value(sum->as_number()) + "\n";
  out += name + "_count " +
         util::format("%llu",
                      static_cast<unsigned long long>(count->as_integer())) +
         "\n";

  // Companion summary with the streaming quantile estimates ("p50" JSON keys
  // map to {quantile="0.5"} samples).
  std::string quantile_lines;
  for (const auto& key : entry.keys()) {
    if (key.size() < 2 || key[0] != 'p') continue;
    char* end = nullptr;
    const double percent = std::strtod(key.c_str() + 1, &end);
    if (end == nullptr || *end != '\0') continue;
    const util::Json* value = entry.find(key);
    if (value == nullptr || !value->is_number()) continue;
    quantile_lines += name + "_quantiles{quantile=\"" +
                      util::format("%g", percent / 100.0) + "\"} " +
                      fmt_value(value->as_number()) + "\n";
  }
  if (!quantile_lines.empty()) {
    out += "# TYPE " + name + "_quantiles summary\n";
    out += quantile_lines;
    out += name + "_quantiles_sum " + fmt_value(sum->as_number()) + "\n";
    out += name + "_quantiles_count " +
           util::format("%llu",
                        static_cast<unsigned long long>(count->as_integer())) +
           "\n";
  }
}

}  // namespace

std::string to_prometheus_text(const MetricsRegistry& registry) {
  const util::Json snapshot = registry.to_json();
  std::string out;

  if (const util::Json* counters = snapshot.find("counters")) {
    for (const auto& key : counters->keys()) {
      const std::string name = prometheus_metric_name(key);
      out += "# TYPE " + name + " counter\n";
      out += name + " " +
             util::format("%llu", static_cast<unsigned long long>(
                                      counters->find(key)->as_integer())) +
             "\n";
    }
  }
  if (const util::Json* gauges = snapshot.find("gauges")) {
    for (const auto& key : gauges->keys()) {
      const std::string name = prometheus_metric_name(key);
      out += "# TYPE " + name + " gauge\n";
      out += name + " " + fmt_value(gauges->find(key)->as_number()) + "\n";
    }
  }
  if (const util::Json* histograms = snapshot.find("histograms")) {
    for (const auto& key : histograms->keys()) {
      render_histogram(prometheus_metric_name(key), *histograms->find(key),
                       out);
    }
  }
  return out;
}

}  // namespace amperebleed::obs
