#pragma once
// hwmon access-audit layer. Every VirtualFs attribute access is recorded as
// (virtual timestamp, path, principal, outcome) and aggregated per
// (principal, path). On top of the log sits a sliding-window rate-anomaly
// detector: the defender-side observation (noted by SideLine and Hot Pixels)
// that a side-channel attacker's *access pattern* to the sensor interface is
// itself a signal — an unprivileged process polling one current attribute at
// 28.6 Hz (35 ms) or 1 kHz does not look like a health daemon reading four
// rails once a second. bench/ablation_detection quantifies the TPR/FPR.

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "amperebleed/sim/time.hpp"
#include "amperebleed/util/json.hpp"

namespace amperebleed::obs {

/// Coarse access outcome (the fine-grained VfsStatus stays in the hwmon
/// layer's per-status counters; the audit trail only needs the defender's
/// view: it worked, it was denied, or it failed some other way).
enum class AccessOutcome { Ok, Denied, Error };

std::string_view access_outcome_name(AccessOutcome o);

/// Scoped "current principal" identity for audit records, so a sampler (or a
/// scripted benign daemon) can label its accesses. Thread-local; nested
/// scopes restore the previous identity. When no scope is active, records
/// fall back to "user" / "root" from the privileged bit.
class PrincipalScope {
 public:
  explicit PrincipalScope(std::string name);
  PrincipalScope(const PrincipalScope&) = delete;
  PrincipalScope& operator=(const PrincipalScope&) = delete;
  ~PrincipalScope();

  /// The active principal name, or empty if no scope is active.
  [[nodiscard]] static const std::string& current();

 private:
  std::string previous_;
};

/// Append-only, bounded, thread-safe access log with per-key aggregation.
class AccessAuditLog {
 public:
  explicit AccessAuditLog(std::size_t max_events = 1 << 22);

  /// Virtual clock used to timestamp records (the owning SoC wires its
  /// now()). Without a clock, records carry t = -1.
  void set_clock(std::function<sim::TimeNs()> now_fn);
  void clear_clock();

  /// Record one access. `principal` may be empty, in which case the active
  /// PrincipalScope (or "user"/"root") is used.
  void record(std::string_view path, bool privileged, AccessOutcome outcome,
              std::string_view principal = {});

  struct Event {
    sim::TimeNs t{-1};
    std::uint32_t path_id = 0;
    std::uint32_t principal_id = 0;
    AccessOutcome outcome = AccessOutcome::Ok;
    bool privileged = false;
  };

  struct KeyStats {
    std::string principal;
    std::string path;
    std::uint64_t ok = 0;
    std::uint64_t denied = 0;
    std::uint64_t error = 0;
    [[nodiscard]] std::uint64_t total() const { return ok + denied + error; }
  };

  [[nodiscard]] std::uint64_t total_accesses() const;
  [[nodiscard]] std::uint64_t total_denials() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// Aggregated counters, sorted by principal then path.
  [[nodiscard]] std::vector<KeyStats> stats() const;
  /// Copy of the raw event stream (bounded by max_events).
  [[nodiscard]] std::vector<Event> events() const;
  [[nodiscard]] std::string path_name(std::uint32_t id) const;
  [[nodiscard]] std::string principal_name(std::uint32_t id) const;

  /// {"totals": {...}, "by_principal": [...], "events": n}
  [[nodiscard]] util::Json to_json() const;
  void write_json(const std::string& path) const;

  void clear();

 private:
  [[nodiscard]] std::uint32_t intern(std::vector<std::string>& names,
                                     std::map<std::string, std::uint32_t>& ids,
                                     std::string_view name);

  std::size_t max_events_;
  mutable std::mutex mu_;
  std::function<sim::TimeNs()> now_fn_;
  std::vector<std::string> path_names_;
  std::map<std::string, std::uint32_t> path_ids_;
  std::vector<std::string> principal_names_;
  std::map<std::string, std::uint32_t> principal_ids_;
  std::vector<Event> events_;
  std::uint64_t dropped_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t denials_ = 0;
  // (principal_id, path_id) -> [ok, denied, error]
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::array<std::uint64_t, 3>>
      by_key_;
};

// ---------------------------------------------------------------------------
// Rate-anomaly detection over the audit trail.

struct RateDetectorConfig {
  /// Windowing of the virtual timeline.
  sim::TimeNs window = sim::seconds(1);
  /// A (principal, path) window is "hot" when its access rate reaches this.
  double threshold_reads_per_s = 10.0;
  /// Principal is flagged after this many consecutive hot windows on any
  /// single path — one burst does not trip the alarm.
  std::size_t consecutive_windows = 3;
};

struct PrincipalReport {
  std::string principal;
  std::uint64_t accesses = 0;
  std::uint64_t denials = 0;
  /// Peak single-path windowed rate (accesses/s) — the detection signal.
  double peak_path_rate_hz = 0.0;
  /// Mean rate over the principal's active extent.
  double mean_rate_hz = 0.0;
  std::size_t hot_windows = 0;
  std::size_t active_windows = 0;
  bool flagged = false;
  /// End of the window that completed the consecutive run (-1 if never).
  sim::TimeNs detection_time{-1};
};

struct DetectionReport {
  RateDetectorConfig config;
  std::vector<PrincipalReport> principals;  // sorted by name

  [[nodiscard]] const PrincipalReport* find(std::string_view name) const;
};

/// Run the sliding-window detector over the log's event stream. Events
/// without timestamps (t < 0) are ignored.
DetectionReport detect_rate_anomalies(const AccessAuditLog& log,
                                      const RateDetectorConfig& config);

/// Window-level confusion matrix: every (principal, active window) is one
/// sample; label = principal in `attacker_principals`; prediction = window
/// belongs to a flagged run of >= consecutive_windows hot windows.
struct DetectionEval {
  std::uint64_t tp = 0, fp = 0, tn = 0, fn = 0;
  [[nodiscard]] double tpr() const {
    return tp + fn == 0 ? 0.0
                        : static_cast<double>(tp) / static_cast<double>(tp + fn);
  }
  [[nodiscard]] double fpr() const {
    return fp + tn == 0 ? 0.0
                        : static_cast<double>(fp) / static_cast<double>(fp + tn);
  }
};

DetectionEval evaluate_detector(const AccessAuditLog& log,
                                const RateDetectorConfig& config,
                                const std::set<std::string>& attacker_principals);

}  // namespace amperebleed::obs
