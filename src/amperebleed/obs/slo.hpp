#pragma once
// SLO engine over the metrics registry's histograms, SRE-style multi-window
// burn rates computed in VIRTUAL time.
//
// An SloObjective declares a latency SLI over one histogram: an observation
// is "good" when it lands in a bucket whose upper bound is <= threshold, and
// the objective asks that a `target` fraction of observations be good. The
// error budget is 1 - target, and the burn rate over a window is
//
//     burn = (bad fraction in window) / (1 - target)
//
// so burn == 1.0 consumes the budget exactly at the sustainable pace.
// Following the multi-window alerting recipe, each evaluation computes the
// burn over a fast window (default 300 s) and a slow window (default
// 3600 s); the objective is breached when BOTH exceed their alert rates
// (defaults 14.4 / 6.0 — the classic page thresholds).
//
// Time is the SloRegistry's virtual clock, advanced by the Sampler with the
// simulated nanoseconds each collection consumed (including retry-backoff
// waits injected by faults::FaultInjector). Burn windows therefore measure
// the *simulated* service timeline and are bit-reproducible: the same seed
// and fault plan always produce the same compliance report, regardless of
// host speed or pool size. Windows clamp to the available history (an
// implicit (t=0, good=0, total=0) origin anchors the first evaluation).

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "amperebleed/obs/metrics.hpp"
#include "amperebleed/util/json.hpp"

namespace amperebleed::obs {

struct SloObjective {
  std::string name;       // e.g. "acquire_virtual_latency"
  std::string histogram;  // registry histogram the SLI reads
  /// Observations <= threshold (bucket upper bound) count as good.
  double threshold = 0.0;
  /// Target good fraction in [0, 1). The error budget is 1 - target.
  double target = 0.99;
  double fast_window_s = 300.0;   // 5 min equivalent, virtual
  double slow_window_s = 3600.0;  // 1 h equivalent, virtual
  double fast_burn_alert = 14.4;
  double slow_burn_alert = 6.0;
};

struct SloStatus {
  std::string name;
  double now_s = 0.0;        // evaluation instant (virtual)
  std::uint64_t good = 0;    // lifetime good observations
  std::uint64_t total = 0;   // lifetime observations
  double compliance = 1.0;   // lifetime good/total (1.0 while empty)
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  bool fast_alert = false;
  bool slow_alert = false;
  /// Both windows above their alert rates — the page condition.
  bool breached = false;

  [[nodiscard]] util::Json to_json() const;
};

/// One objective plus its cumulative (t, good, total) history. evaluate()
/// snapshots the histogram, appends to the history, prunes entries older
/// than the slow window and computes both burn rates.
class Slo {
 public:
  explicit Slo(SloObjective objective);

  [[nodiscard]] const SloObjective& objective() const { return objective_; }

  SloStatus evaluate(const MetricsRegistry& registry, double now_s);

  void reset_history();

 private:
  struct Snapshot {
    double t = 0.0;
    std::uint64_t good = 0;
    std::uint64_t total = 0;
  };
  [[nodiscard]] double windowed_burn(const Snapshot& now,
                                     double window_s) const;

  SloObjective objective_;
  std::deque<Snapshot> history_;  // ascending t; front anchors the windows
};

/// Named objectives plus the virtual clock they are evaluated against.
/// Thread-safe; Slo references stay valid until reset().
class SloRegistry {
 public:
  /// Register (or replace) an objective by name.
  void add(SloObjective objective);
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::size_t size() const;

  /// Advance the virtual clock (seconds of simulated time consumed).
  void advance(double seconds);
  [[nodiscard]] double now_s() const;

  /// Evaluate every objective at the current virtual instant.
  std::vector<SloStatus> evaluate_all(const MetricsRegistry& registry);
  /// {"now_s":..., "objectives":[...statuses...]} — evaluates first.
  [[nodiscard]] util::Json to_json(const MetricsRegistry& registry);

  /// Drop every objective and zero the clock.
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<Slo> slos_;
  double now_s_ = 0.0;
};

/// Process-wide registry; the Sampler advances its clock, benches register
/// default objectives, /slo serves evaluate_all().
SloRegistry& slos();

/// Count good (bucket bound <= threshold) and total observations of a
/// histogram. Exposed for tests.
void histogram_good_total(const Histogram& histogram, double threshold,
                          std::uint64_t& good, std::uint64_t& total);

}  // namespace amperebleed::obs
