#include "amperebleed/obs/obs.hpp"

#include "amperebleed/obs/quality.hpp"

namespace amperebleed::obs {

namespace detail {
std::atomic<bool> g_metrics_on{false};
std::atomic<bool> g_tracing_on{false};
std::atomic<bool> g_audit_on{false};
std::atomic<bool> g_quality_on{false};
}  // namespace detail

MetricsRegistry& metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

SpanTracer& tracer() {
  static SpanTracer* t = new SpanTracer();
  return *t;
}

AccessAuditLog& audit_log() {
  static AccessAuditLog* log = new AccessAuditLog();
  return *log;
}

void init(const ObsConfig& config) {
  detail::g_metrics_on.store(config.enabled && config.metrics,
                             std::memory_order_relaxed);
  detail::g_tracing_on.store(config.enabled && config.tracing,
                             std::memory_order_relaxed);
  detail::g_audit_on.store(config.enabled && config.audit,
                           std::memory_order_relaxed);
  detail::g_quality_on.store(config.enabled && config.quality,
                             std::memory_order_relaxed);
}

void disable() { init(ObsConfig{.enabled = false}); }

void reset_data() {
  metrics().reset();
  tracer().clear();
  audit_log().clear();
  timeline().reset();
  slos().reset();
  quality_hub().reset();
}

void shutdown() {
  disable();
  reset_data();
}

}  // namespace amperebleed::obs
