#pragma once
// Machine-readable bench run records: every bench binary writes a
// BENCH_<name>.json capturing wall time, throughput and its headline
// accuracy numbers, so the repo accumulates a perf trajectory across
// commits (bench/run_all.sh collects them into one directory).

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "amperebleed/util/json.hpp"

namespace amperebleed::obs {

class RunRecord {
 public:
  explicit RunRecord(std::string bench_name);

  /// Record a headline number ("top1_accuracy", "samples_per_sec", ...).
  void set_number(const std::string& key, double value);
  void set_integer(const std::string& key, std::int64_t value);
  void set_text(const std::string& key, std::string value);

  [[nodiscard]] const std::string& name() const { return name_; }
  /// Wall seconds since construction.
  [[nodiscard]] double elapsed_seconds() const;

  /// {"bench": ..., "wall_seconds": ..., "unix_time": ...,
  ///  "numbers": {...}, "text": {...}}
  [[nodiscard]] util::Json to_json() const;

  /// Default output filename: BENCH_<name>.json.
  [[nodiscard]] std::string default_path() const;
  void write(const std::string& path) const;

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, util::Json>> numbers_;
  std::vector<std::pair<std::string, std::string>> text_;
};

}  // namespace amperebleed::obs
