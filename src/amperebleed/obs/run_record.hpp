#pragma once
// Machine-readable bench run records: every bench binary writes a
// BENCH_<name>.json capturing wall time, throughput and its headline
// accuracy numbers, so the repo accumulates a perf trajectory across
// commits (bench/run_all.sh collects them into bench/trajectory/ and
// tools/bench_compare gates on the deltas).
//
// Every record also carries provenance ("env": git sha, hostname, build
// type) so bench_compare can refuse to compare cross-machine or
// Debug-vs-Release records, and optional per-run repetition samples that
// feed its Mann-Whitney noise-aware verdicts.
//
// Thread-safe: the HTTP exporter's /runrecord endpoint serializes the
// record from its serve thread while the bench keeps mutating it.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "amperebleed/util/json.hpp"

namespace amperebleed::obs {

/// Best-effort build/host provenance for run records. git_sha resolves from
/// $AMPEREBLEED_GIT_SHA (exported by bench/run_all.sh), falling back to the
/// compile-time AMPEREBLEED_GIT_SHA definition, else "unknown".
struct RunEnvironment {
  std::string git_sha;
  std::string hostname;
  std::string build_type;  // CMAKE_BUILD_TYPE baked in at compile time

  /// Capture the current process environment (cached after the first call).
  static const RunEnvironment& current();
};

class RunRecord {
 public:
  explicit RunRecord(std::string bench_name);

  /// Record a headline number ("top1_accuracy", "samples_per_sec", ...).
  void set_number(const std::string& key, double value);
  void set_integer(const std::string& key, std::int64_t value);
  void set_text(const std::string& key, std::string value);
  /// Append one repetition sample for `key` ("wall_ms", ...). Samples land
  /// in the record's "samples" object and back bench_compare's
  /// Mann-Whitney noise-aware verdicts.
  void add_sample(const std::string& key, double value);

  [[nodiscard]] const std::string& name() const { return name_; }
  /// Wall seconds since construction.
  [[nodiscard]] double elapsed_seconds() const;

  /// {"bench": ..., "wall_seconds": ..., "unix_time": ...,
  ///  "env": {"git_sha": ..., "hostname": ..., "build_type": ...},
  ///  "numbers": {...}, "text": {...}, "samples": {...}}
  /// ("samples" only when add_sample was used.)
  [[nodiscard]] util::Json to_json() const;

  /// Default output filename: BENCH_<name>.json.
  [[nodiscard]] std::string default_path() const;
  void write(const std::string& path) const;

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, util::Json>> numbers_;
  std::vector<std::pair<std::string, std::string>> text_;
  std::vector<std::pair<std::string, std::vector<double>>> samples_;
};

}  // namespace amperebleed::obs
