#pragma once
// Span tracer exporting Chrome trace_event JSON (load the file in
// chrome://tracing or https://ui.perfetto.dev). Two clock domains coexist in
// one trace: wall-clock spans (RAII ScopedSpan around host work such as
// forest training) on pid 1, and virtual-time spans (simulation events such
// as DPU layer schedules, timestamped in sim::TimeNs) on pid 2. Every event
// carries the *other* clock's timestamp in its args, so wall cost and
// simulated time can be cross-referenced.
//
// Wall spans are causal: each carries a SpanContext (obs/context.hpp) whose
// parent is the span live on the creating thread at construction — including
// pool tasks, where util::ThreadPool re-installs the submitting thread's
// context. Cross-thread region edges additionally get Chrome flow events
// ("s" on the submitting thread, "f" with bp:"e" on each worker) so trace
// viewers draw the arrows.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "amperebleed/obs/context.hpp"
#include "amperebleed/sim/time.hpp"
#include "amperebleed/util/json.hpp"

namespace amperebleed::obs {

enum class SpanClock {
  Wall,     // host steady_clock, microseconds since tracer construction
  Virtual,  // simulation TimeNs
};

struct TraceEvent {
  std::string name;
  std::string category;
  SpanClock clock = SpanClock::Wall;
  /// Chrome phase: 'X' complete span, 's' flow start, 'f' flow finish.
  char phase = 'X';
  double ts_us = 0.0;   // in the event's own clock domain
  double dur_us = 0.0;
  std::uint64_t tid = 0;
  /// Causal identity ('X' wall spans only; 0 = not tracked).
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  /// Flow-event binding id ('s'/'f' phases; the region id).
  std::uint64_t flow_id = 0;
  /// Cross-clock reference: wall ns for virtual events, virtual ns for wall
  /// events (negative when unknown).
  std::int64_t other_clock_ns = -1;
  /// Optional numeric arguments (small, copied into the args object).
  std::vector<std::pair<std::string, double>> args;
  /// Optional string arguments (channel / model_id / fault kind ...).
  std::vector<std::pair<std::string, std::string>> str_args;
};

/// Bounded, thread-safe event buffer. When full, new events are counted in
/// dropped() instead of recorded, so tracing can never exhaust memory.
class SpanTracer {
 public:
  explicit SpanTracer(std::size_t max_events = 1 << 20);

  /// Record a completed span ("ph":"X").
  void add_event(TraceEvent event);

  /// Convenience: record a virtual-time span. `wall_ns` cross-references the
  /// host clock (pass wall_now_ns(), or -1 if not meaningful).
  void add_virtual_span(
      std::string name, std::string category, sim::TimeNs start,
      sim::TimeNs duration,
      std::vector<std::pair<std::string, double>> args = {});

  /// Record a flow event ('s' start on the submitting thread, 'f' finish on
  /// a worker) binding cross-thread edges under `flow_id`.
  void add_flow_event(char phase, std::uint64_t flow_id, std::string name,
                      std::string category = "pool");

  /// Microseconds of wall time since tracer construction.
  [[nodiscard]] double wall_now_us() const;
  /// Nanoseconds of wall time since tracer construction.
  [[nodiscard]] std::int64_t wall_now_ns() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const { return max_events_; }

  /// Point-in-time copy of every recorded event (profiling, tests).
  [[nodiscard]] std::vector<TraceEvent> events_snapshot() const;

  /// The whole trace as a Chrome trace_event JSON document:
  /// {"traceEvents": [...], "displayTimeUnit": "ms"}.
  [[nodiscard]] util::Json to_chrome_json() const;
  void write_chrome_trace(const std::string& path) const;

  void clear();

 private:
  std::size_t max_events_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

/// RAII wall-clock span. Construct against a tracer (or the global tracer
/// via the obs.hpp helper) and the span is recorded at scope exit. A
/// default-constructed / nullptr-tracer span is an inert no-op.
///
/// An active span allocates a SpanContext parented to the thread's current
/// context, installs itself as current for its lifetime (children created in
/// scope nest under it), and — inside a pool task — picks up region_id /
/// task_index attributes from the TaskScope.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(SpanTracer* tracer, std::string name, std::string category = "");
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept;
  ScopedSpan& operator=(ScopedSpan&& other) noexcept;
  ~ScopedSpan();

  /// Attach a numeric argument (shown in the trace viewer's args pane).
  void set_arg(std::string key, double value);
  /// Attach a string argument (channel, model_id, fault kind, ...).
  void set_attr(std::string key, std::string value);
  /// Cross-reference the simulation clock at span end.
  void set_virtual_ns(sim::TimeNs t) { virtual_ns_ = t.ns; }

  [[nodiscard]] bool active() const { return tracer_ != nullptr; }
  /// This span's causal identity (all-zero for inert spans).
  [[nodiscard]] const SpanContext& context() const { return ctx_; }

  /// Record now instead of at destruction.
  void finish();

 private:
  SpanTracer* tracer_ = nullptr;
  std::string name_;
  std::string category_;
  double start_us_ = 0.0;
  std::int64_t virtual_ns_ = -1;
  SpanContext ctx_;
  SpanContext prev_ctx_;
  bool installed_ = false;
  std::vector<std::pair<std::string, double>> args_;
  std::vector<std::pair<std::string, std::string>> str_args_;
};

/// Stable small integer for the calling thread (used as Chrome "tid").
std::uint64_t current_thread_tid();

}  // namespace amperebleed::obs
