#pragma once
// Live telemetry export for amperebleed::obs. PR 1's registries are
// end-of-run snapshots; this layer streams them out while the system runs:
//
//   instrumentation site ──try_push──▶ EventRing (bounded, lock-free MPSC)
//                                         │ drained by
//                                  Exporter thread (flush interval)
//                                         │ fan-out
//                              ExportSink*  (SnapshotSink → JSON file via
//                                            atomic rename; HTTP server in
//                                            http_exporter.hpp reads the
//                                            registry directly)
//
// Invariants:
//  * The hot path never blocks. try_push on a full ring increments a dropped
//    counter and returns; the exporter publishes the total as the
//    `obs_exporter_dropped_total` counter every flush.
//  * The MetricsRegistry stays the aggregation point — events are *also*
//    applied at the instrumentation site exactly as before, so turning the
//    exporter on or off never changes any metric value, only whether the
//    per-event stream reaches sinks.
//  * stop() is graceful: it detaches the global emit hook, drains every
//    event still in the ring into the sinks, runs one final flush, then
//    joins the thread. The Exporter must outlive any thread that may still
//    record obs events (ObsSession keeps it alive until bench exit).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "amperebleed/obs/metrics.hpp"
#include "amperebleed/util/json.hpp"

namespace amperebleed::obs {

/// One timestamped telemetry event. POD with a fixed-size, NUL-terminated
/// (truncating) name buffer so ring slots never allocate.
struct ExportEvent {
  enum class Kind : std::uint8_t {
    CounterAdd,        // value = increment
    GaugeSet,          // value = new gauge value
    HistogramObserve,  // value = observation
    SpanEnd,           // value = span duration in microseconds
  };

  static constexpr std::size_t kMaxName = 47;

  Kind kind = Kind::CounterAdd;
  char name[kMaxName + 1] = {};
  double value = 0.0;
  std::uint64_t ts_ns = 0;  // steady-clock ns (process-relative epoch)

  void set_name(const char* s) {
    std::strncpy(name, s == nullptr ? "" : s, kMaxName);
    name[kMaxName] = '\0';
  }
};

const char* export_event_kind_name(ExportEvent::Kind kind);

/// Bounded lock-free multi-producer single-consumer ring (Vyukov-style
/// sequenced slots). Producers never block: a full ring rejects the push and
/// counts it in dropped(). drain() must only be called from one consumer
/// thread at a time (the Exporter serializes this internally).
class EventRing {
 public:
  /// `capacity` is rounded up to the next power of two (min 2).
  explicit EventRing(std::size_t capacity);

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  /// Lock-free, wait-free-on-full. Returns false (and counts the drop) when
  /// the ring is full.
  bool try_push(const ExportEvent& event);

  /// Move up to `max` events into `out` (appended). Single consumer only.
  std::size_t drain(std::vector<ExportEvent>& out, std::size_t max);

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }
  [[nodiscard]] std::uint64_t pushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Entries currently buffered (consumer-side estimate).
  [[nodiscard]] std::size_t approx_size() const;

 private:
  struct Slot {
    std::atomic<std::size_t> seq{0};
    ExportEvent event;
  };

  std::size_t mask_;
  std::vector<Slot> slots_;
  alignas(64) std::atomic<std::size_t> head_{0};  // producers
  alignas(64) std::size_t tail_ = 0;              // consumer-owned
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

struct ExporterStats {
  std::uint64_t events_exported = 0;  // drained and handed to sinks
  std::uint64_t events_dropped = 0;   // rejected by the full ring
  std::uint64_t flushes = 0;          // completed flush cycles
};

/// A pluggable consumer of the live telemetry stream. consume() receives
/// each drained event batch (possibly empty between flushes); flush() runs
/// once per flush interval and at shutdown with the authoritative registry.
class ExportSink {
 public:
  virtual ~ExportSink() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  virtual void consume(const std::vector<ExportEvent>& events) {
    (void)events;
  }
  virtual void flush(const MetricsRegistry& registry,
                     const ExporterStats& stats) {
    (void)registry;
    (void)stats;
  }
};

/// Periodic JSON snapshot to a file. Writes to `<path>.tmp` then renames so
/// scrapers never observe a torn file; the document carries the full metrics
/// snapshot, exporter accounting and the most recent events.
class SnapshotSink : public ExportSink {
 public:
  explicit SnapshotSink(std::string path, std::size_t keep_recent = 128);

  [[nodiscard]] const char* name() const override { return "snapshot"; }
  void consume(const std::vector<ExportEvent>& events) override;
  void flush(const MetricsRegistry& registry,
             const ExporterStats& stats) override;

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }

 private:
  std::string path_;
  std::size_t keep_recent_;
  std::deque<ExportEvent> recent_;
  std::uint64_t writes_ = 0;
};

/// Collects drained events in memory (bounded); used by tests and as a cheap
/// in-process "recent activity" feed.
class CollectorSink : public ExportSink {
 public:
  explicit CollectorSink(std::size_t max_events = 1 << 16)
      : max_events_(max_events) {}

  [[nodiscard]] const char* name() const override { return "collector"; }
  void consume(const std::vector<ExportEvent>& events) override;
  void flush(const MetricsRegistry& registry,
             const ExporterStats& stats) override;

  [[nodiscard]] std::vector<ExportEvent> events() const;
  [[nodiscard]] std::uint64_t flush_count() const;

 private:
  std::size_t max_events_;
  mutable std::mutex mu_;
  std::vector<ExportEvent> events_;
  std::uint64_t flushes_ = 0;
};

struct ExporterConfig {
  /// How often the background thread drains the ring and flushes sinks.
  int flush_interval_ms = 500;
  /// Ring capacity (rounded up to a power of two).
  std::size_t ring_capacity = 1 << 14;
  /// Max events moved per drain call (bounds per-cycle work).
  std::size_t drain_batch = 4096;
  /// Attach the process-wide emit hook (obs::count/observe/... feed the
  /// ring) while running. Tests that drive the ring directly turn this off.
  bool attach_global_hook = true;
};

/// Background exporter thread: drains the ring every flush interval, feeds
/// sinks, and publishes its own accounting into the registry
/// (`obs_exporter_*` counters/gauges). start()/stop() are idempotent.
class Exporter {
 public:
  explicit Exporter(MetricsRegistry& registry, ExporterConfig config = {});
  ~Exporter();

  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  /// Sinks must be added before start().
  void add_sink(std::unique_ptr<ExportSink> sink);

  void start();
  /// Graceful shutdown: detach hook, drain remaining events, final flush,
  /// join. Safe to call repeatedly / without start().
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] EventRing& ring() { return ring_; }
  [[nodiscard]] ExporterStats stats() const;
  [[nodiscard]] const ExporterConfig& config() const { return config_; }

  /// Run one drain+flush cycle synchronously on the calling thread
  /// (serialized with the background thread). Mainly for tests.
  void flush_now();

 private:
  void thread_main();
  void cycle(bool drain_to_empty);

  MetricsRegistry& registry_;
  ExporterConfig config_;
  EventRing ring_;
  std::vector<std::unique_ptr<ExportSink>> sinks_;

  // Serializes cycle() between thread and flush_now(); mutable so stats()
  // can read the cycle-owned totals.
  mutable std::mutex cycle_mu_;
  std::vector<ExportEvent> batch_;  // guarded by cycle_mu_

  std::mutex state_mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::atomic<bool> running_{false};
  std::thread thread_;

  std::uint64_t exported_ = 0;          // guarded by cycle_mu_
  std::uint64_t flushes_ = 0;           // guarded by cycle_mu_
  std::uint64_t published_dropped_ = 0;  // guarded by cycle_mu_
  std::uint64_t published_exported_ = 0; // guarded by cycle_mu_
  std::chrono::steady_clock::time_point started_at_{};
};

namespace detail {
/// Global emit hook: non-null while an Exporter with attach_global_hook is
/// running. The obs.hpp helpers feed it after updating the registry.
extern std::atomic<EventRing*> g_export_ring;

/// Steady-clock ns against a process-local epoch (monotonic; cheap).
std::uint64_t export_clock_ns();
}  // namespace detail

/// Push one event to the attached exporter ring, if any. Never blocks;
/// drops (with accounting) when the ring is full. Safe to call from any
/// thread that the Exporter outlives.
inline void export_event(ExportEvent::Kind kind, const char* name,
                         double value) {
  EventRing* ring = detail::g_export_ring.load(std::memory_order_acquire);
  if (ring == nullptr) return;
  ExportEvent event;
  event.kind = kind;
  event.set_name(name);
  event.value = value;
  event.ts_ns = detail::export_clock_ns();
  ring->try_push(event);
}

}  // namespace amperebleed::obs
