#pragma once
// Streaming drift detection for the online fingerprinting service: is the
// model still seeing the data it was enrolled on?
//
// At enrollment time a ReferenceProfile is captured from the training
// ml::Dataset — one fixed-bin StreamingSketch plus a deterministic value
// subsample per feature dimension, and the class priors. At serving time a
// DriftMonitor keeps a sliding window of live feature vectors and prediction
// outputs and, on a fixed observation cadence, scores the window against the
// reference:
//
//   * PSI (population stability index) per dimension over the reference's
//     bin layout, aggregated as the mean across dimensions (the mean
//     averages out the small-window bias that makes per-dim PSI noisy);
//   * two-sample Kolmogorov-Smirnov per dimension (stats::ks_test) between
//     the window values and the reference subsample, Bonferroni-corrected
//     across dimensions;
//   * a chi-square class-mix test (stats::chi_square_gof) of the window's
//     predicted-class counts against the enrollment priors.
//
// Scores drive a deterministic Ok -> Warning -> Drifted state machine with
// pinned thresholds: escalation needs `confirm` consecutive breaching
// evaluations, de-escalation needs `clear` consecutive clean ones. Every
// decision is a pure function of the observation sequence — feeding the
// monitor in input order (classify_many does) makes reports bit-identical
// at any thread-pool size.
//
// Everything here is pure observation: monitors never touch classifier
// state, RNG streams or experiment outputs.

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "amperebleed/ml/dataset.hpp"
#include "amperebleed/util/json.hpp"

namespace amperebleed::obs {

/// Fixed-bin histogram over [lo, hi] plus moment accumulators. Deterministic
/// and mergeable: bin layout is pinned at construction, merge() adds the
/// counts/moments of a sketch with the identical layout. Values outside
/// [lo, hi] land in the edge bins, so the layout captured at enrollment
/// keeps working when live data walks out of range (that is the signal).
class StreamingSketch {
 public:
  static constexpr std::size_t kDefaultBins = 8;

  StreamingSketch() = default;
  StreamingSketch(double lo, double hi, std::size_t bins = kDefaultBins);

  void observe(double v);
  /// Add another sketch's counts and moments. Throws std::invalid_argument
  /// unless the bin layout (lo, hi, bin count) matches exactly.
  void merge(const StreamingSketch& other);
  /// Zero the counts and moments, keeping the bin layout.
  void clear();

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] std::uint64_t total() const { return n_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] double mean() const;      // 0 when empty
  [[nodiscard]] double variance() const;  // population variance, 0 when n < 2
  [[nodiscard]] double min() const;       // +inf when empty
  [[nodiscard]] double max() const;       // -inf when empty

  /// Per-bin fractions with additive smoothing: (c_i + epsilon) /
  /// (n + bins * epsilon). Defined (uniform) even for an empty sketch.
  [[nodiscard]] std::vector<double> fractions(double epsilon = 0.5) const;

  [[nodiscard]] util::Json to_json() const;
  static StreamingSketch from_json(const util::Json& doc);

  /// Exact internal state for the binary persistence codec (persist::).
  /// Unlike to_json (whose %.12g number formatting is lossy), raw() /
  /// from_raw round-trip the moment accumulators bit-for-bit, so a sketch
  /// restored from a snapshot is operator== to the original.
  struct Raw {
    double lo = 0.0;
    double hi = 1.0;
    std::vector<std::uint64_t> counts;
    std::uint64_t n = 0;
    double sum = 0.0;
    double sum_sq = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  [[nodiscard]] Raw raw() const;
  static StreamingSketch from_raw(Raw raw);

  friend bool operator==(const StreamingSketch&,
                         const StreamingSketch&) = default;

 private:
  double lo_ = 0.0;
  double hi_ = 1.0;
  std::vector<std::uint64_t> counts_;
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;  // tracked while n_ > 0
  double max_ = 0.0;
};

/// PSI between two sketches with identical bin layouts, using smoothed
/// fractions (so empty bins never divide by zero). The conventional scale:
/// < 0.1 stable, 0.1-0.25 moderate shift, > 0.25 significant — but window
/// size biases small-sample PSI upward, so DriftConfig pins thresholds on
/// the cross-dimension mean instead of any single value.
/// Throws std::invalid_argument on layout mismatch.
double population_stability_index(const StreamingSketch& reference,
                                  const StreamingSketch& current);

/// Everything the drift monitor needs to remember about enrollment:
/// per-dimension sketches + deterministic value subsamples (row-stride
/// sampling, so the subsample is a pure function of the dataset), and the
/// class priors. Serializable, so an enrollment-time profile can ship in a
/// run record or sidecar and be re-hydrated by a serving process.
struct ReferenceProfile {
  /// Cap on retained raw values per dimension (feeds the KS test).
  static constexpr std::size_t kMaxSubsample = 128;

  std::vector<StreamingSketch> feature_sketches;       // one per dimension
  std::vector<std::vector<double>> feature_samples;    // one per dimension
  std::vector<std::uint64_t> class_counts;             // enrollment priors
  std::uint64_t rows = 0;

  [[nodiscard]] bool empty() const { return feature_sketches.empty(); }
  [[nodiscard]] std::size_t dims() const { return feature_sketches.size(); }

  /// Capture a profile from a training dataset. Bin ranges span each
  /// dimension's [min, max] padded by 5% so quantization-edge values do not
  /// alias into the overflow bins on clean data.
  static ReferenceProfile from_dataset(
      const ml::Dataset& data, std::size_t bins = StreamingSketch::kDefaultBins);

  [[nodiscard]] util::Json to_json() const;
  static ReferenceProfile from_json(const util::Json& doc);

  friend bool operator==(const ReferenceProfile&,
                         const ReferenceProfile&) = default;
};

enum class DriftState { Ok, Warning, Drifted };
inline constexpr std::size_t kDriftStateCount = 3;
std::string_view drift_state_name(DriftState s);

struct DriftConfig {
  /// Master switch: when false, OnlineFingerprinter never builds a monitor
  /// and classification stays exactly the pre-drift code path.
  bool enabled = false;
  /// Monitor name in /quality and metrics.
  std::string name = "online_fingerprinter";
  /// Sliding-window capacity, in observations (classify calls).
  std::size_t window = 32;
  /// Evaluate every `stride` observations once the window is full.
  std::size_t stride = 8;
  /// Consecutive breaching evaluations required to escalate the state.
  std::size_t confirm = 2;
  /// Consecutive clean evaluations required to fall back to Ok.
  std::size_t clear = 4;
  /// Thresholds on the mean PSI across feature dimensions.
  double psi_warning = 0.50;
  double psi_drifted = 1.00;
  /// Per-dimension KS p-value floors; Bonferroni-divided by dims() before
  /// comparison against the minimum p across dimensions.
  double ks_alpha_warning = 1e-4;
  double ks_alpha_drifted = 1e-7;
  /// Chi-square class-mix p-value floors.
  double chi2_alpha_warning = 1e-4;
  double chi2_alpha_drifted = 1e-7;
  /// Bin count used when capturing the reference profile.
  std::size_t sketch_bins = StreamingSketch::kDefaultBins;
};

/// One evaluation's scores, plus the severity they imply in isolation.
struct DriftScores {
  double psi_mean = 0.0;
  double psi_max = 0.0;
  std::size_t psi_argmax = 0;  // dimension with the largest PSI
  double ks_min_p = 1.0;
  double ks_max_d = 0.0;
  std::size_t ks_argmin = 0;  // dimension with the smallest KS p
  double class_chi2 = 0.0;
  double class_p = 1.0;
  double confidence_mean = 0.0;  // window mean winner confidence
  DriftState severity = DriftState::Ok;
};

struct DriftReport {
  std::string name;
  DriftState state = DriftState::Ok;
  std::uint64_t observations = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t warnings = 0;  // transitions into Warning
  std::uint64_t drifts = 0;    // transitions into Drifted
  /// Observation count at the first escalation (-1: never happened). The
  /// bench reports detection latency as this minus the injection point.
  std::int64_t first_warning_obs = -1;
  std::int64_t first_drifted_obs = -1;
  DriftScores last;  // scores of the most recent evaluation

  [[nodiscard]] util::Json to_json() const;
};

/// Sliding-window drift monitor. Thread-safe: observe()/report() take an
/// internal mutex, so a serving thread can snapshot /quality while the
/// classifier feeds observations. Construction registers the monitor with
/// the process QualityHub (see quality.hpp); destruction deregisters it.
class DriftMonitor {
 public:
  DriftMonitor(ReferenceProfile reference, DriftConfig config);
  ~DriftMonitor();

  DriftMonitor(const DriftMonitor&) = delete;
  DriftMonitor& operator=(const DriftMonitor&) = delete;

  /// Feed one classified observation: the feature vector the forest saw,
  /// the winning class index, and its probability. Evaluates the window on
  /// the configured cadence; call in input order for bit-reproducibility.
  void observe(std::span<const double> features, int predicted_class,
               double confidence);

  [[nodiscard]] DriftState state() const;
  [[nodiscard]] DriftReport report() const;
  [[nodiscard]] const ReferenceProfile& reference() const { return ref_; }
  [[nodiscard]] const DriftConfig& config() const { return cfg_; }

  /// Drop the window and all counters, returning to Ok with zero
  /// observations (the reference profile is kept). Used between bench legs.
  void reset_window();

 private:
  /// Score the current window and advance the state machine. Caller holds
  /// mu_; only runs on full windows at the stride cadence.
  void evaluate_locked();
  void publish_metrics_locked(const DriftScores& scores) const;

  const ReferenceProfile ref_;
  const DriftConfig cfg_;

  mutable std::mutex mu_;
  std::vector<std::vector<double>> rows_;  // ring buffer, capacity window
  std::vector<int> classes_;               // parallel to rows_
  std::vector<double> confidences_;        // parallel to rows_
  std::size_t ring_pos_ = 0;
  bool ring_full_ = false;

  DriftState state_ = DriftState::Ok;
  std::size_t breach_streak_ = 0;  // consecutive evals at severity >= Warning
  std::size_t drift_streak_ = 0;   // consecutive evals at severity == Drifted
  std::size_t clean_streak_ = 0;   // consecutive evals at severity == Ok
  std::uint64_t observations_ = 0;
  std::uint64_t evaluations_ = 0;
  std::uint64_t warnings_ = 0;
  std::uint64_t drifts_ = 0;
  std::int64_t first_warning_obs_ = -1;
  std::int64_t first_drifted_obs_ = -1;
  DriftScores last_;
};

}  // namespace amperebleed::obs
