#include "amperebleed/obs/quality.hpp"

#include <algorithm>

#include "amperebleed/obs/drift.hpp"
#include "amperebleed/obs/obs.hpp"
#include "amperebleed/util/strings.hpp"

namespace amperebleed::obs {

util::Json ChannelQuality::to_json() const {
  auto doc = util::Json::object();
  doc.set("channel", util::Json::string(channel));
  doc.set("traces", util::Json::integer(static_cast<std::int64_t>(traces)));
  doc.set("samples", util::Json::integer(static_cast<std::int64_t>(samples)));
  doc.set("gaps", util::Json::integer(static_cast<std::int64_t>(gaps)));
  doc.set("clipped", util::Json::integer(static_cast<std::int64_t>(clipped)));
  doc.set("frozen_events",
          util::Json::integer(static_cast<std::int64_t>(frozen_events)));
  doc.set("frozen_now", util::Json::boolean(frozen_now));
  doc.set("gap_fraction", util::Json::number(gap_fraction()));
  doc.set("clip_rate", util::Json::number(clip_rate()));
  doc.set("last_gap_fraction", util::Json::number(last_gap_fraction));
  doc.set("last_clip_rate", util::Json::number(last_clip_rate));
  doc.set("health", util::Json::integer(health));
  doc.set("warnings", util::Json::integer(static_cast<std::int64_t>(warnings)));
  return doc;
}

void DataQualityMonitor::note_trace(std::string_view channel,
                                    std::span<const double> values,
                                    std::span<const std::uint8_t> validity,
                                    int health) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = channels_.find(channel);
  if (it == channels_.end()) {
    it = channels_.emplace(std::string(channel), ChannelQuality{}).first;
    it->second.channel = std::string(channel);
  }
  ChannelQuality& q = it->second;

  // Per-trace pass: gaps, clipping, and freeze runs. Freeze detection is
  // deliberately trace-local (see DataQualityConfig::frozen_window): the
  // tallies are then pure sums over traces, independent of the order
  // parallel acquisition workers report them.
  std::uint64_t gaps = 0;
  std::uint64_t clipped = 0;
  std::size_t run = 0;
  double run_value = 0.0;
  bool varied = false;
  bool long_run = false;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const bool valid = validity.empty() || validity[i] != 0;
    if (!valid) {
      ++gaps;
      continue;
    }
    const double v = values[i];
    if (v <= cfg_.saturation_lo || v >= cfg_.saturation_hi) ++clipped;
    if (run > 0 && v == run_value) {
      ++run;
    } else {
      if (run > 0 && v != run_value) varied = true;
      run = 1;
      run_value = v;
    }
    if (run >= cfg_.frozen_window) long_run = true;
  }
  const bool frozen_run = long_run && varied;

  ++q.traces;
  q.samples += values.size();
  q.gaps += gaps;
  q.clipped += clipped;
  q.health = health;
  q.last_gap_fraction =
      values.empty() ? 0.0
                     : static_cast<double>(gaps) /
                           static_cast<double>(values.size());
  const std::uint64_t valid_count = values.size() - gaps;
  q.last_clip_rate = valid_count == 0
                         ? 0.0
                         : static_cast<double>(clipped) /
                               static_cast<double>(valid_count);
  q.frozen_now = frozen_run;
  if (frozen_run) ++q.frozen_events;
  const bool warning = q.last_gap_fraction >= cfg_.gap_warning ||
                       q.last_clip_rate >= cfg_.clip_warning || frozen_run;
  if (warning) ++q.warnings;

  if (metrics_enabled()) {
    MetricsRegistry& reg = metrics();
    const std::string prefix =
        util::format("quality.channel.%s.", q.channel.c_str());
    reg.gauge(prefix + "gap_fraction").set(q.last_gap_fraction);
    reg.gauge(prefix + "clip_rate").set(q.last_clip_rate);
    reg.gauge(prefix + "frozen").set(frozen_run ? 1.0 : 0.0);
    reg.gauge(prefix + "health").set(static_cast<double>(health));
    reg.counter("quality.traces_observed").inc();
    if (warning) reg.counter("quality.trace_warnings").inc();
  }
}

void DataQualityMonitor::note_gap_fill(std::size_t filled) {
  std::lock_guard<std::mutex> lock(mu_);
  gap_filled_ += filled;
}

std::vector<ChannelQuality> DataQualityMonitor::channels() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ChannelQuality> out;
  out.reserve(channels_.size());
  for (const auto& [name, q] : channels_) out.push_back(q);
  return out;
}

std::uint64_t DataQualityMonitor::gap_filled_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gap_filled_;
}

void DataQualityMonitor::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  channels_.clear();
  gap_filled_ = 0;
}

util::Json DataQualityMonitor::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto doc = util::Json::object();
  auto channels = util::Json::array();
  std::uint64_t traces = 0;
  std::uint64_t warnings = 0;
  for (const auto& [name, q] : channels_) {
    channels.push_back(q.to_json());
    traces += q.traces;
    warnings += q.warnings;
  }
  doc.set("channels", std::move(channels));
  doc.set("traces", util::Json::integer(static_cast<std::int64_t>(traces)));
  doc.set("trace_warnings",
          util::Json::integer(static_cast<std::int64_t>(warnings)));
  doc.set("gap_filled_total",
          util::Json::integer(static_cast<std::int64_t>(gap_filled_)));
  return doc;
}

void QualityHub::attach(const DriftMonitor* monitor) {
  std::lock_guard<std::mutex> lock(mu_);
  monitors_.push_back(monitor);
}

void QualityHub::detach(const DriftMonitor* monitor) {
  std::lock_guard<std::mutex> lock(mu_);
  monitors_.erase(std::remove(monitors_.begin(), monitors_.end(), monitor),
                  monitors_.end());
}

void QualityHub::reset() { data_quality_.reset(); }

util::Json QualityHub::to_json() const {
  auto doc = util::Json::object();
  doc.set("enabled", util::Json::boolean(quality_enabled()));
  doc.set("data_quality", data_quality_.to_json());
  auto drift = util::Json::array();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const DriftMonitor* m : monitors_) {
      drift.push_back(m->report().to_json());
    }
  }
  doc.set("drift", std::move(drift));
  return doc;
}

QualityHub& quality_hub() {
  static QualityHub* hub = new QualityHub();
  return *hub;
}

}  // namespace amperebleed::obs
