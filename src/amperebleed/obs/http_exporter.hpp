#pragma once
// Tiny single-threaded HTTP/1.1 server exposing live telemetry while a
// bench runs, the same exposition model Prometheus-style stacks scrape
// inference servers with:
//
//   GET /metrics     text/plain  — Prometheus text exposition of the registry
//   GET /healthz     application/json — status + per-channel health counts
//   GET /runrecord   application/json — the current RunRecord (when wired)
//   GET /flamegraph  text/plain  — collapsed-stack profile (when wired)
//   GET /slo         application/json — SLO compliance + burn rates (wired)
//   GET /quality     application/json — drift + data-quality snapshot (wired)
//
// HEAD on any route answers with the same status line and headers a GET
// would produce (Content-Length included) and no body.
//
// /healthz folds the sampler's ChannelHealth gauges into per-state counts
// and degrades to 503 when every known channel is quarantined — the scrape
// contract a load balancer health check expects.
//
// One accept thread, one request at a time, loopback bind by default. Scrape
// handling never touches the instrumentation hot path — it reads the
// thread-safe registry the same way write_snapshot() does. Serving is
// bounded: request lines over 8 KiB are rejected, sockets get short
// timeouts, so a stuck scraper cannot wedge shutdown.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "amperebleed/obs/metrics.hpp"
#include "amperebleed/util/json.hpp"

namespace amperebleed::obs {

class HttpExporter {
 public:
  struct Config {
    /// TCP port; 0 asks the kernel for an ephemeral port (see port()).
    int port = 0;
    /// Bind address; loopback by default — telemetry stays on-host unless
    /// explicitly opened up.
    std::string bind_address = "127.0.0.1";
  };

  explicit HttpExporter(MetricsRegistry& registry);
  HttpExporter(MetricsRegistry& registry, Config config);
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Provider for /runrecord (e.g. the bench's RunRecord::to_json). Without
  /// one the endpoint answers 503.
  void set_runrecord_provider(std::function<util::Json()> provider);

  /// Provider for /flamegraph: collapsed-stack text folded from completed
  /// spans (see obs::collapsed_stacks_text). Without one: 503.
  void set_flamegraph_provider(std::function<std::string()> provider);

  /// Provider for /slo: the SLO registry's JSON evaluation. Without one: 503.
  void set_slo_provider(std::function<util::Json()> provider);

  /// Provider for /quality: the QualityHub snapshot (drift monitors +
  /// per-channel data quality, see obs/quality.hpp). Without one: 503.
  void set_quality_provider(std::function<util::Json()> provider);

  /// Bind + listen + spawn the serve thread. Throws std::runtime_error when
  /// the port cannot be bound. Idempotent.
  void start();
  /// Stop serving and join. Idempotent; also runs from the destructor.
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }
  /// The bound port (resolves Config::port == 0); valid after start().
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(int client_fd);
  /// Route + method handling; strips the body (keeping Content-Length) for
  /// HEAD so probes see exactly the headers a GET would produce.
  [[nodiscard]] std::string build_response(const std::string& method,
                                           const std::string& path);
  /// The full GET response for a path (status line + headers + body).
  [[nodiscard]] std::string build_get_response(const std::string& path);

  MetricsRegistry& registry_;
  Config config_;
  std::function<util::Json()> runrecord_provider_;
  std::function<std::string()> flamegraph_provider_;
  std::function<util::Json()> slo_provider_;
  std::function<util::Json()> quality_provider_;
  std::mutex provider_mu_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
  std::chrono::steady_clock::time_point started_at_{};
};

}  // namespace amperebleed::obs
