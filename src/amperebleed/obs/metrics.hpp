#pragma once
// Thread-safe metrics registry for the attack pipeline: counters, gauges and
// histograms (fixed buckets + P-square streaming quantiles), with JSON and
// CSV snapshot exporters. Everything here is pure observation — recording a
// metric never touches simulation state, RNG streams or experiment outputs,
// so instrumented code stays bit-identical with observability on or off.
//
// References held from counter()/gauge()/histogram() stay valid until
// reset() — instruments are never deleted individually.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "amperebleed/util/json.hpp"

namespace amperebleed::obs {

/// Monotonically increasing event count. Lock-free.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value-wins instantaneous measurement. Lock-free.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Jain & Chlamtac's P-square algorithm: a constant-memory streaming
/// estimate of one quantile. Exact while fewer than 5 observations have
/// arrived; afterwards maintains 5 markers with parabolic interpolation.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void observe(double v);
  [[nodiscard]] double estimate() const;
  [[nodiscard]] double quantile() const { return q_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Current marker heights — exposed so tests can assert the P-square
  /// monotonic-marker invariant. Only the first min(count, 5) entries are
  /// meaningful; once count >= 5 the array is non-decreasing.
  [[nodiscard]] std::array<double, 5> marker_heights() const;

 private:
  double q_;
  std::uint64_t count_ = 0;
  double heights_[5] = {0, 0, 0, 0, 0};
  double positions_[5] = {1, 2, 3, 4, 5};
  double desired_[5] = {1, 1, 1, 1, 1};
  double increments_[5] = {0, 0, 0, 0, 0};
};

struct HistogramConfig {
  /// Ascending upper bounds of the fixed buckets; an implicit +inf overflow
  /// bucket is always appended.
  std::vector<double> bucket_bounds;
  /// Quantiles tracked by streaming P-square estimators.
  std::vector<double> quantiles = {0.5, 0.9, 0.99};
};

/// `count` buckets with bounds start, start*factor, start*factor^2, ...
HistogramConfig exponential_buckets(double start, double factor,
                                    std::size_t count);
/// Default bucket layout for wall-clock latencies in nanoseconds
/// (100 ns .. ~100 ms, factor 4).
HistogramConfig latency_buckets_ns();

/// Distribution of observed values: fixed-bucket counts plus streaming
/// quantile estimates, min/max/sum. Thread-safe (one mutex per histogram).
class Histogram {
 public:
  explicit Histogram(HistogramConfig config = latency_buckets_ns());

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double min() const;  // +inf when empty
  [[nodiscard]] double max() const;  // -inf when empty
  [[nodiscard]] double mean() const;  // 0 when empty
  /// Streaming estimate for the configured quantile nearest to `q`.
  [[nodiscard]] double quantile(double q) const;
  /// Per-bucket counts; the last entry is the +inf overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] const std::vector<double>& bucket_bounds() const {
    return config_.bucket_bounds;
  }
  [[nodiscard]] const std::vector<double>& tracked_quantiles() const {
    return config_.quantiles;
  }
  void reset();

 private:
  HistogramConfig config_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> buckets_;  // bounds.size() + 1
  std::vector<P2Quantile> estimators_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named instruments, created on first use. Lookup is mutex-protected;
/// the returned references are stable until reset().
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `config` applies only on first creation of `name`.
  Histogram& histogram(const std::string& name,
                       const HistogramConfig& config = latency_buckets_ns());

  /// Value of a counter, or 0 if it does not exist (does not create).
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  [[nodiscard]] bool has_counter(const std::string& name) const;
  /// Histogram by name, or nullptr if it does not exist (does not create).
  /// The pointer stays valid until reset().
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;
  /// Gauge value, or `fallback` if it does not exist (does not create).
  [[nodiscard]] double gauge_value(const std::string& name,
                                   double fallback = 0.0) const;
  /// Names of all gauges whose name starts with `prefix` (lexicographic).
  [[nodiscard]] std::vector<std::string> gauge_names_with_prefix(
      const std::string& prefix) const;

  [[nodiscard]] std::size_t instrument_count() const;

  /// Point-in-time snapshot of every instrument as a JSON document:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  [[nodiscard]] util::Json to_json() const;
  /// Flat CSV: kind,name,field,value — one row per exported scalar.
  [[nodiscard]] std::string to_csv() const;

  /// Write to_json() (pretty-printed) or to_csv() if `path` ends in ".csv".
  void write_snapshot(const std::string& path) const;

  /// Drop every instrument. Invalidates previously returned references.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace amperebleed::obs
