#pragma once
// Per-stage pipeline attribution + span-derived continuous profiling.
//
// The fingerprinting request path is staged exactly like the paper's
// Table III pipeline: acquire (sensor polling) → preprocess (gap filling) →
// features (dataset assembly) → classify (forest fit / predict). StageSpan
// instruments one unit of stage work: it opens a causal trace span named
// `pipeline.<stage>` (when tracing is on) and folds the wall duration into
// both the global PipelineTimeline and a `pipeline.stage.<stage>_ns`
// histogram (when metrics are on). PipelineTimeline keeps per-stage latency
// buckets with an exemplar span_id per bucket — the trace span that last
// landed there — so a slow bucket links straight to the causal trace.
//
// The profiler half turns a SpanTracer's completed wall spans into
// collapsed-stack lines ("root;ml.rf.fit;ml.tree_fit 450"), the input format
// of flame-graph renderers. Folding is by SELF time (duration minus the sum
// of direct children), clamped at zero: with a single-threaded pool every
// subtree then sums exactly to its root. Overlapping children from parallel
// pool tasks can push a parent's self time to the zero clamp — wall time is
// not additive across threads, which is exactly what the flame graph should
// show.

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "amperebleed/obs/span.hpp"
#include "amperebleed/util/json.hpp"

namespace amperebleed::obs {

enum class Stage { Acquire = 0, Preprocess = 1, Features = 2, Classify = 3 };
inline constexpr std::size_t kStageCount = 4;

/// Lowercase stage name ("acquire", "preprocess", "features", "classify").
const char* stage_name(Stage stage);

/// Fixed-bucket per-stage latency distribution with one exemplar span per
/// bucket. Thread-safe; pure observation (never read by experiment code).
class PipelineTimeline {
 public:
  struct Bucket {
    double upper_ns = 0.0;  // +inf on the overflow bucket
    std::uint64_t count = 0;
    std::uint64_t exemplar_span_id = 0;  // 0 = no exemplar recorded yet
    double exemplar_ns = 0.0;
  };
  struct StageStats {
    std::uint64_t count = 0;
    double total_ns = 0.0;
    double min_ns = 0.0;  // 0 when empty
    double max_ns = 0.0;
    std::vector<Bucket> buckets;
  };

  PipelineTimeline();

  /// Fold one completed stage unit. `exemplar_span_id` may be 0 (tracing
  /// off); the bucket then keeps its previous exemplar.
  void record(Stage stage, double wall_ns, std::uint64_t exemplar_span_id);

  [[nodiscard]] StageStats stage_stats(Stage stage) const;
  /// {"acquire": {"count":..,"total_ns":..,"buckets":[{le,count,
  ///  exemplar_span_id},..]}, ...} — stages with zero observations included.
  [[nodiscard]] util::Json to_json() const;
  void reset();

 private:
  mutable std::mutex mu_;
  std::array<StageStats, kStageCount> stages_;
};

/// Process-wide timeline, recorded into by StageSpan when metrics are on.
PipelineTimeline& timeline();

/// RAII instrumentation for one unit of pipeline-stage work. Inert when the
/// whole obs layer is off; otherwise traces a `pipeline.<stage>` span (the
/// timeline exemplar) and records the duration at scope exit.
class StageSpan {
 public:
  explicit StageSpan(Stage stage);
  ~StageSpan() { finish(); }
  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

  /// The underlying trace span (inert when tracing is off) — attach channel
  /// / model_id / fold attributes here.
  [[nodiscard]] ScopedSpan& span() { return span_; }

  void finish();

 private:
  Stage stage_ = Stage::Acquire;
  bool measuring_ = false;
  std::int64_t t0_ns_ = 0;
  ScopedSpan span_;
};

// ---------------------------------------------------------------------------
// Collapsed-stack profiler

/// Fold a tracer's completed wall spans into collapsed-stack lines:
/// "name;child;grandchild <self-microseconds>\n", sorted by stack for
/// deterministic diffs. Root-less spans (parent not in the buffer) start
/// their own stack. Flow events and virtual-time spans are ignored.
std::string collapsed_stacks_text(const SpanTracer& tracer);

/// collapsed_stacks_text() to a file; throws std::runtime_error on I/O
/// failure.
void write_collapsed_stacks(const SpanTracer& tracer, const std::string& path);

}  // namespace amperebleed::obs
