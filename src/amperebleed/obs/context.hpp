#pragma once
// Causal span context: the (trace_id, span_id, parent_id) triple that links
// spans into a tree across threads. Every live ScopedSpan installs its own
// context into a thread-local slot; spans created afterwards on the same
// thread parent to it. util::ThreadPool captures the submitting thread's
// context when a parallel region is published and re-installs it inside each
// worker task via TaskScope, so forest-fit trees, k-fold folds and batched
// inference blocks nest under the span that logically spawned them — no
// matter which host thread ran the work.
//
// Ids come from process-wide atomics: unique and monotonic, but NOT
// deterministic across pool sizes (allocation order depends on scheduling).
// Consumers that diff traces must therefore compare the canonical tree
// *shape* with ids normalized (tools/trace_shape.py does exactly that).
//
// This header is dependency-free on purpose: util/thread_pool.hpp includes
// it without dragging the whole obs layer into every util consumer.

#include <cstdint>

namespace amperebleed::obs {

struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;    // the span this context belongs to
  std::uint64_t parent_id = 0;  // 0 = root (no parent)

  [[nodiscard]] bool valid() const { return span_id != 0; }
};

/// Logical identity of the pool task the calling thread is executing:
/// which parallel region, and which index within it. Inactive outside
/// ThreadPool tasks.
struct TaskSlot {
  std::uint64_t region_id = 0;
  std::uint64_t task_index = 0;
  bool active = false;
};

/// Process-unique ids, never 0. Allocation order is scheduling-dependent.
std::uint64_t next_span_id();
std::uint64_t next_region_id();
std::uint64_t new_trace_id();

/// The calling thread's current span context (invalid outside any span).
[[nodiscard]] const SpanContext& current_context();
/// The calling thread's current pool-task identity (inactive outside tasks).
[[nodiscard]] const TaskSlot& current_task_slot();

namespace detail {
/// Install `ctx` as the thread's current context; returns the previous one.
SpanContext exchange_context(const SpanContext& ctx);
/// Install `slot` as the thread's current task slot; returns the previous.
TaskSlot exchange_task_slot(const TaskSlot& slot);
}  // namespace detail

/// RAII scope for executing one pool task under the submitting region's
/// captured context. Installs the parent SpanContext (so spans created by
/// the task body parent correctly) plus the region/task identity (so those
/// spans carry region_id/task_index attributes), and restores both on exit —
/// including exceptional exit, which is how fail-fast cancellation unwinds.
class TaskScope {
 public:
  TaskScope(const SpanContext& parent, std::uint64_t region_id,
            std::uint64_t task_index);
  ~TaskScope();
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

 private:
  SpanContext prev_ctx_;
  TaskSlot prev_slot_;
};

}  // namespace amperebleed::obs
