#include "amperebleed/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "amperebleed/util/strings.hpp"

namespace amperebleed::obs {

// ---------------------------------------------------------------------------
// P2Quantile

P2Quantile::P2Quantile(double q) : q_(q) {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("P2Quantile: q not in [0,1]");
  }
  desired_[0] = 1;
  desired_[1] = 1 + 2 * q;
  desired_[2] = 1 + 4 * q;
  desired_[3] = 3 + 2 * q;
  desired_[4] = 5;
  increments_[0] = 0;
  increments_[1] = q / 2;
  increments_[2] = q;
  increments_[3] = (1 + q) / 2;
  increments_[4] = 1;
}

void P2Quantile::observe(double v) {
  if (count_ < 5) {
    heights_[count_] = v;
    ++count_;
    if (count_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }

  // Locate the cell containing v and update the extremes.
  std::size_t k;
  if (v < heights_[0]) {
    heights_[0] = v;
    k = 0;
  } else if (v >= heights_[4]) {
    heights_[4] = v;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && v >= heights_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];
  ++count_;

  // Adjust the three interior markers towards their desired positions.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1 && above > 1) || (d <= -1 && below > 1)) {
      const double s = d >= 0 ? 1.0 : -1.0;
      // Piecewise-parabolic (P^2) estimate of the new marker height.
      const double hp = heights_[i + 1];
      const double hm = heights_[i - 1];
      const double h = heights_[i];
      double candidate =
          h + s / (above + below) *
                  ((below + s) * (hp - h) / above + (above - s) * (h - hm) / below);
      if (candidate <= hm || candidate >= hp) {
        // Fall back to linear interpolation towards the neighbour.
        candidate = s > 0 ? h + (hp - h) / above : h - (hm - h) / -below;
      }
      heights_[i] = candidate;
      positions_[i] += s;
    }
  }
}

std::array<double, 5> P2Quantile::marker_heights() const {
  std::array<double, 5> out{};
  std::copy(heights_, heights_ + 5, out.begin());
  return out;
}

double P2Quantile::estimate() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile (nearest-rank on the sorted prefix).
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const double rank = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, static_cast<std::size_t>(count_ - 1));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  return heights_[2];
}

// ---------------------------------------------------------------------------
// Histogram

HistogramConfig exponential_buckets(double start, double factor,
                                    std::size_t count) {
  if (start <= 0.0 || factor <= 1.0) {
    throw std::invalid_argument("exponential_buckets: need start>0, factor>1");
  }
  HistogramConfig config;
  config.bucket_bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    config.bucket_bounds.push_back(bound);
    bound *= factor;
  }
  return config;
}

HistogramConfig latency_buckets_ns() {
  return exponential_buckets(100.0, 4.0, 10);  // 100 ns .. ~26 ms, then +inf
}

Histogram::Histogram(HistogramConfig config) : config_(std::move(config)) {
  if (!std::is_sorted(config_.bucket_bounds.begin(),
                      config_.bucket_bounds.end())) {
    throw std::invalid_argument("Histogram: bucket bounds not ascending");
  }
  buckets_.assign(config_.bucket_bounds.size() + 1, 0);
  estimators_.reserve(config_.quantiles.size());
  for (double q : config_.quantiles) estimators_.emplace_back(q);
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::upper_bound(config_.bucket_bounds.begin(),
                                   config_.bucket_bounds.end(), v);
  buckets_[static_cast<std::size_t>(
      std::distance(config_.bucket_bounds.begin(), it))] += 1;
  for (auto& e : estimators_) e.observe(v);
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (estimators_.empty()) return 0.0;
  const P2Quantile* best = &estimators_.front();
  for (const auto& e : estimators_) {
    if (std::abs(e.quantile() - q) < std::abs(best->quantile() - q)) best = &e;
  }
  return best->estimate();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  estimators_.clear();
  for (double q : config_.quantiles) estimators_.emplace_back(q);
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

// ---------------------------------------------------------------------------
// MetricsRegistry

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const HistogramConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(config);
  return *slot;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

bool MetricsRegistry::has_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.count(name) != 0;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

double MetricsRegistry::gauge_value(const std::string& name,
                                    double fallback) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? fallback : it->second->value();
}

std::vector<std::string> MetricsRegistry::gauge_names_with_prefix(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (auto it = gauges_.lower_bound(prefix); it != gauges_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    names.push_back(it->first);
  }
  return names;
}

std::size_t MetricsRegistry::instrument_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

util::Json MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto root = util::Json::object();

  auto counters = util::Json::object();
  for (const auto& [name, c] : counters_) {
    counters.set(name,
                 util::Json::integer(static_cast<std::int64_t>(c->value())));
  }
  root.set("counters", std::move(counters));

  auto gauges = util::Json::object();
  for (const auto& [name, g] : gauges_) {
    gauges.set(name, util::Json::number(g->value()));
  }
  root.set("gauges", std::move(gauges));

  auto histograms = util::Json::object();
  for (const auto& [name, h] : histograms_) {
    auto entry = util::Json::object();
    const auto n = h->count();
    entry.set("count", util::Json::integer(static_cast<std::int64_t>(n)));
    entry.set("sum", util::Json::number(h->sum()));
    entry.set("mean", util::Json::number(h->mean()));
    if (n > 0) {
      entry.set("min", util::Json::number(h->min()));
      entry.set("max", util::Json::number(h->max()));
    }
    for (double q : h->tracked_quantiles()) {
      entry.set(util::format("p%g", q * 100.0),
                util::Json::number(h->quantile(q)));
    }
    auto buckets = util::Json::array();
    const auto counts = h->bucket_counts();
    const auto& bounds = h->bucket_bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      auto b = util::Json::object();
      if (i < bounds.size()) {
        b.set("le", util::Json::number(bounds[i]));
      } else {
        b.set("le", util::Json::string("inf"));
      }
      b.set("count",
            util::Json::integer(static_cast<std::int64_t>(counts[i])));
      buckets.push_back(std::move(b));
    }
    entry.set("buckets", std::move(buckets));
    histograms.set(name, std::move(entry));
  }
  root.set("histograms", std::move(histograms));
  return root;
}

std::string MetricsRegistry::to_csv() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "kind,name,field,value\n";
  for (const auto& [name, c] : counters_) {
    out += util::format("counter,%s,value,%llu\n", name.c_str(),
                        static_cast<unsigned long long>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    out += util::format("gauge,%s,value,%.12g\n", name.c_str(), g->value());
  }
  for (const auto& [name, h] : histograms_) {
    out += util::format("histogram,%s,count,%llu\n", name.c_str(),
                        static_cast<unsigned long long>(h->count()));
    out += util::format("histogram,%s,sum,%.12g\n", name.c_str(), h->sum());
    out += util::format("histogram,%s,mean,%.12g\n", name.c_str(), h->mean());
    for (double q : h->tracked_quantiles()) {
      out += util::format("histogram,%s,p%g,%.12g\n", name.c_str(), q * 100.0,
                          h->quantile(q));
    }
  }
  return out;
}

void MetricsRegistry::write_snapshot(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("MetricsRegistry: cannot open '" + path + "'");
  }
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  out << (csv ? to_csv() : to_json().dump(2) + "\n");
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace amperebleed::obs
