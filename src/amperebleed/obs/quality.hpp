#pragma once
// Acquisition-side data-quality monitoring and the process-wide QualityHub
// behind the /quality endpoint.
//
// DataQualityMonitor watches the traces the resilient core::Sampler hands
// back, per channel: gap fraction (invalid samples the fault model left
// behind), saturation/clip rate (values pinned at the converter rails), and
// variance collapse — a "frozen sensor" whose register repeats the same
// reading long after it has been seen to vary. Each is correlated with the
// sampler's ChannelHealth ordinal so one JSON object answers "which channel,
// how degraded, and does the sampler agree?".
//
// QualityHub aggregates the data-quality monitor with every live
// DriftMonitor (drift.hpp) into one snapshot. Like the rest of the obs
// stack it is observation only, off by default (ObsConfig::quality), and
// deterministic: note_trace() folds values in trace order, so snapshots are
// bit-identical across thread-pool sizes as long as traces are reported in
// a stable order per channel.

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "amperebleed/util/json.hpp"

namespace amperebleed::obs {

class DriftMonitor;

struct DataQualityConfig {
  /// Consecutive identical valid samples within one trace that flag a
  /// frozen sensor. Detection is per-trace — a trace is frozen when it
  /// holds such a run AND carries at least two distinct valid values
  /// (a fully constant trace is indistinguishable from a constant-by-design
  /// channel without cross-trace state, and cross-trace state would make
  /// the tally depend on the order parallel workers report traces). One
  /// sampling period at the bench's 35 ms cadence is ~29 samples/s, so 12
  /// repeats is ~0.4 s of flatline.
  std::size_t frozen_window = 12;
  /// Values at or beyond these rails count as clipped. Defaults cover the
  /// int16 millivolt/milliamp registers the virtual hwmon exposes.
  double saturation_lo = -32768.0;
  double saturation_hi = 32767.0;
  /// Per-trace gap fraction at or above this raises the channel warning.
  double gap_warning = 0.05;
  /// Per-trace clip rate at or above this raises the channel warning.
  double clip_warning = 0.01;
};

/// Running per-channel tallies. `health` mirrors the most recent
/// core::ChannelHealth ordinal the sampler reported (0 = Healthy).
struct ChannelQuality {
  std::string channel;
  std::uint64_t traces = 0;
  std::uint64_t samples = 0;
  std::uint64_t gaps = 0;           // invalid samples
  std::uint64_t clipped = 0;        // valid samples at the rails
  std::uint64_t frozen_events = 0;  // traces containing a frozen run
  bool frozen_now = false;          // frozen run in the most recent trace
  double last_gap_fraction = 0.0;
  double last_clip_rate = 0.0;
  int health = 0;
  std::uint64_t warnings = 0;  // traces breaching a gap/clip threshold

  [[nodiscard]] double gap_fraction() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(gaps) /
                              static_cast<double>(samples);
  }
  [[nodiscard]] double clip_rate() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(clipped) /
                              static_cast<double>(samples);
  }

  [[nodiscard]] util::Json to_json() const;
};

/// Per-channel data-quality tally. Thread-safe; one mutex, uncontended in
/// practice because the sampler reports traces serially per collection.
class DataQualityMonitor {
 public:
  explicit DataQualityMonitor(DataQualityConfig config = {})
      : cfg_(config) {}

  /// Fold one collected trace. `values`/`validity` are the trace's sample
  /// and validity-mask spans (validity empty means all-valid); `health` is
  /// the sampler's ChannelHealth ordinal for the channel right now.
  void note_trace(std::string_view channel, std::span<const double> values,
                  std::span<const std::uint8_t> validity, int health);

  /// Count gap-filled samples attributed by preprocess::fill_gaps.
  void note_gap_fill(std::size_t filled);

  [[nodiscard]] std::vector<ChannelQuality> channels() const;
  [[nodiscard]] std::uint64_t gap_filled_total() const;
  [[nodiscard]] const DataQualityConfig& config() const { return cfg_; }

  void reset();

  [[nodiscard]] util::Json to_json() const;

 private:
  DataQualityConfig cfg_;
  mutable std::mutex mu_;
  std::map<std::string, ChannelQuality, std::less<>> channels_;
  std::uint64_t gap_filled_ = 0;
};

/// Process-wide aggregation point: the data-quality monitor plus every live
/// DriftMonitor. DriftMonitor's constructor/destructor attach/detach here,
/// so to_json() always reflects exactly the monitors currently alive.
class QualityHub {
 public:
  DataQualityMonitor& data_quality() { return data_quality_; }

  void attach(const DriftMonitor* monitor);
  void detach(const DriftMonitor* monitor);

  /// Drop all recorded quality data (drift monitors stay attached; their
  /// windows are owned by their fingerprinters, not reset here).
  void reset();

  /// {"enabled": bool, "data_quality": {...}, "drift": [reports...]}
  [[nodiscard]] util::Json to_json() const;

 private:
  DataQualityMonitor data_quality_;
  mutable std::mutex mu_;
  std::vector<const DriftMonitor*> monitors_;  // attach order
};

/// The global hub (constructed on first use, never destroyed before exit).
QualityHub& quality_hub();

}  // namespace amperebleed::obs
