#pragma once
// Prometheus text exposition (format version 0.0.4) rendering of a
// MetricsRegistry snapshot, served by obs::HttpExporter at /metrics and
// usable standalone (e.g. to dump a scrape-compatible file).
//
// Mapping:
//   Counter   -> `# TYPE <name> counter`  + one sample
//   Gauge     -> `# TYPE <name> gauge`    + one sample
//   Histogram -> `# TYPE <name> histogram` with cumulative `_bucket{le=...}`
//                samples (including the `+Inf` bucket), `_sum` and `_count`,
//                plus a companion `<name>_quantiles` summary carrying the
//                streaming P-square quantile estimates.
//
// Instrument names use dots ("sampler.poll_latency_ns"); Prometheus names
// must match [a-zA-Z_:][a-zA-Z0-9_:]*, so every invalid rune becomes '_'.

#include <string>
#include <string_view>

#include "amperebleed/obs/metrics.hpp"

namespace amperebleed::obs {

/// Sanitize an instrument name into a valid Prometheus metric name.
std::string prometheus_metric_name(std::string_view raw);

/// Escape a label value per the exposition format: backslash, double quote
/// and newline become \\ , \" and \n.
std::string prometheus_escape_label_value(std::string_view raw);

/// Render the whole registry. Deterministic: instruments appear in registry
/// (lexicographic) order, so scrapes diff cleanly.
std::string to_prometheus_text(const MetricsRegistry& registry);

}  // namespace amperebleed::obs
