#include "amperebleed/obs/run_record.hpp"

#include <ctime>
#include <fstream>
#include <stdexcept>

namespace amperebleed::obs {

RunRecord::RunRecord(std::string bench_name)
    : name_(std::move(bench_name)), start_(std::chrono::steady_clock::now()) {}

void RunRecord::set_number(const std::string& key, double value) {
  for (auto& [k, v] : numbers_) {
    if (k == key) {
      v = util::Json::number(value);
      return;
    }
  }
  numbers_.emplace_back(key, util::Json::number(value));
}

void RunRecord::set_integer(const std::string& key, std::int64_t value) {
  for (auto& [k, v] : numbers_) {
    if (k == key) {
      v = util::Json::integer(value);
      return;
    }
  }
  numbers_.emplace_back(key, util::Json::integer(value));
}

void RunRecord::set_text(const std::string& key, std::string value) {
  for (auto& [k, v] : text_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  text_.emplace_back(key, std::move(value));
}

double RunRecord::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

util::Json RunRecord::to_json() const {
  auto root = util::Json::object();
  root.set("bench", util::Json::string(name_));
  root.set("wall_seconds", util::Json::number(elapsed_seconds()));
  root.set("unix_time",
           util::Json::integer(static_cast<std::int64_t>(std::time(nullptr))));

  auto numbers = util::Json::object();
  for (const auto& [k, v] : numbers_) numbers.set(k, v);
  root.set("numbers", std::move(numbers));

  auto text = util::Json::object();
  for (const auto& [k, v] : text_) text.set(k, util::Json::string(v));
  root.set("text", std::move(text));
  return root;
}

std::string RunRecord::default_path() const {
  return "BENCH_" + name_ + ".json";
}

void RunRecord::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("RunRecord: cannot open '" + path + "'");
  }
  out << to_json().dump(2) << "\n";
}

}  // namespace amperebleed::obs
