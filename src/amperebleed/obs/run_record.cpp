#include "amperebleed/obs/run_record.hpp"

#include <unistd.h>

#include <cstdlib>
#include <ctime>
#include <fstream>
#include <stdexcept>

#include "amperebleed/util/simd.hpp"

namespace amperebleed::obs {

const RunEnvironment& RunEnvironment::current() {
  static const RunEnvironment env = [] {
    RunEnvironment e;

    const char* sha = std::getenv("AMPEREBLEED_GIT_SHA");
    if (sha != nullptr && *sha != '\0') {
      e.git_sha = sha;
    } else {
#ifdef AMPEREBLEED_GIT_SHA
      e.git_sha = AMPEREBLEED_GIT_SHA;
#else
      e.git_sha = "unknown";
#endif
    }

    char host[256] = {};
    if (::gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
      e.hostname = host;
    } else {
      e.hostname = "unknown";
    }

#ifdef AMPEREBLEED_BUILD_TYPE
    e.build_type = AMPEREBLEED_BUILD_TYPE;
#elif defined(NDEBUG)
    e.build_type = "Release";
#else
    e.build_type = "Debug";
#endif
    if (e.build_type.empty()) e.build_type = "unknown";
    return e;
  }();
  return env;
}

RunRecord::RunRecord(std::string bench_name)
    : name_(std::move(bench_name)), start_(std::chrono::steady_clock::now()) {}

void RunRecord::set_number(const std::string& key, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [k, v] : numbers_) {
    if (k == key) {
      v = util::Json::number(value);
      return;
    }
  }
  numbers_.emplace_back(key, util::Json::number(value));
}

void RunRecord::set_integer(const std::string& key, std::int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [k, v] : numbers_) {
    if (k == key) {
      v = util::Json::integer(value);
      return;
    }
  }
  numbers_.emplace_back(key, util::Json::integer(value));
}

void RunRecord::set_text(const std::string& key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [k, v] : text_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  text_.emplace_back(key, std::move(value));
}

void RunRecord::add_sample(const std::string& key, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [k, values] : samples_) {
    if (k == key) {
      values.push_back(value);
      return;
    }
  }
  samples_.emplace_back(key, std::vector<double>{value});
}

double RunRecord::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

util::Json RunRecord::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto root = util::Json::object();
  root.set("bench", util::Json::string(name_));
  root.set("wall_seconds", util::Json::number(elapsed_seconds()));
  root.set("unix_time",
           util::Json::integer(static_cast<std::int64_t>(std::time(nullptr))));

  const RunEnvironment& environment = RunEnvironment::current();
  auto env = util::Json::object();
  env.set("git_sha", util::Json::string(environment.git_sha));
  env.set("hostname", util::Json::string(environment.hostname));
  env.set("build_type", util::Json::string(environment.build_type));
  // Read live (not cached in RunEnvironment): the tier may be overridden by
  // --simd after static init, and cross-tier numbers must never compare as
  // same-environment (bench_compare refuses on mismatch).
  env.set("simd_tier",
          util::Json::string(std::string(util::simd::active_tier_name())));
  root.set("env", std::move(env));

  auto numbers = util::Json::object();
  for (const auto& [k, v] : numbers_) numbers.set(k, v);
  root.set("numbers", std::move(numbers));

  auto text = util::Json::object();
  for (const auto& [k, v] : text_) text.set(k, util::Json::string(v));
  root.set("text", std::move(text));

  if (!samples_.empty()) {
    auto samples = util::Json::object();
    for (const auto& [k, values] : samples_) {
      auto arr = util::Json::array();
      for (double v : values) arr.push_back(util::Json::number(v));
      samples.set(k, std::move(arr));
    }
    root.set("samples", std::move(samples));
  }
  return root;
}

std::string RunRecord::default_path() const {
  return "BENCH_" + name_ + ".json";
}

void RunRecord::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("RunRecord: cannot open '" + path + "'");
  }
  out << to_json().dump(2) << "\n";
}

}  // namespace amperebleed::obs
