#include "amperebleed/obs/audit.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace amperebleed::obs {

std::string_view access_outcome_name(AccessOutcome o) {
  switch (o) {
    case AccessOutcome::Ok:
      return "ok";
    case AccessOutcome::Denied:
      return "denied";
    case AccessOutcome::Error:
      return "error";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// PrincipalScope

namespace {
thread_local std::string t_current_principal;
}  // namespace

PrincipalScope::PrincipalScope(std::string name)
    : previous_(std::move(t_current_principal)) {
  t_current_principal = std::move(name);
}

PrincipalScope::~PrincipalScope() {
  t_current_principal = std::move(previous_);
}

const std::string& PrincipalScope::current() { return t_current_principal; }

// ---------------------------------------------------------------------------
// AccessAuditLog

AccessAuditLog::AccessAuditLog(std::size_t max_events)
    : max_events_(max_events) {}

void AccessAuditLog::set_clock(std::function<sim::TimeNs()> now_fn) {
  std::lock_guard<std::mutex> lock(mu_);
  now_fn_ = std::move(now_fn);
}

void AccessAuditLog::clear_clock() {
  std::lock_guard<std::mutex> lock(mu_);
  now_fn_ = nullptr;
}

std::uint32_t AccessAuditLog::intern(
    std::vector<std::string>& names, std::map<std::string, std::uint32_t>& ids,
    std::string_view name) {
  const auto it = ids.find(std::string(name));
  if (it != ids.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names.size());
  names.emplace_back(name);
  ids.emplace(std::string(name), id);
  return id;
}

void AccessAuditLog::record(std::string_view path, bool privileged,
                            AccessOutcome outcome,
                            std::string_view principal) {
  std::string_view who = principal;
  if (who.empty()) {
    const std::string& scoped = PrincipalScope::current();
    who = scoped.empty() ? (privileged ? std::string_view("root")
                                       : std::string_view("user"))
                         : std::string_view(scoped);
  }

  std::lock_guard<std::mutex> lock(mu_);
  Event e;
  e.t = now_fn_ ? now_fn_() : sim::TimeNs{-1};
  e.path_id = intern(path_names_, path_ids_, path);
  e.principal_id = intern(principal_names_, principal_ids_, who);
  e.outcome = outcome;
  e.privileged = privileged;

  ++total_;
  if (outcome == AccessOutcome::Denied) ++denials_;
  auto& cell = by_key_[{e.principal_id, e.path_id}];
  cell[static_cast<std::size_t>(outcome)] += 1;

  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(e);
}

std::uint64_t AccessAuditLog::total_accesses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t AccessAuditLog::total_denials() const {
  std::lock_guard<std::mutex> lock(mu_);
  return denials_;
}

std::uint64_t AccessAuditLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<AccessAuditLog::KeyStats> AccessAuditLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<KeyStats> out;
  out.reserve(by_key_.size());
  for (const auto& [key, counts] : by_key_) {
    KeyStats s;
    s.principal = principal_names_[key.first];
    s.path = path_names_[key.second];
    s.ok = counts[0];
    s.denied = counts[1];
    s.error = counts[2];
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const KeyStats& a, const KeyStats& b) {
    return a.principal != b.principal ? a.principal < b.principal
                                      : a.path < b.path;
  });
  return out;
}

std::vector<AccessAuditLog::Event> AccessAuditLog::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string AccessAuditLog::path_name(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id < path_names_.size() ? path_names_[id] : std::string();
}

std::string AccessAuditLog::principal_name(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id < principal_names_.size() ? principal_names_[id] : std::string();
}

util::Json AccessAuditLog::to_json() const {
  const auto all = stats();  // takes the lock itself
  std::uint64_t total = 0;
  std::uint64_t denials = 0;

  auto by_key = util::Json::array();
  for (const auto& s : all) {
    total += s.total();
    denials += s.denied;
    auto j = util::Json::object();
    j.set("principal", util::Json::string(s.principal));
    j.set("path", util::Json::string(s.path));
    j.set("ok", util::Json::integer(static_cast<std::int64_t>(s.ok)));
    j.set("denied", util::Json::integer(static_cast<std::int64_t>(s.denied)));
    j.set("error", util::Json::integer(static_cast<std::int64_t>(s.error)));
    by_key.push_back(std::move(j));
  }

  auto totals = util::Json::object();
  totals.set("accesses", util::Json::integer(static_cast<std::int64_t>(total)));
  totals.set("denials", util::Json::integer(static_cast<std::int64_t>(denials)));
  totals.set("dropped_events",
             util::Json::integer(static_cast<std::int64_t>(dropped())));

  auto root = util::Json::object();
  root.set("totals", std::move(totals));
  root.set("by_principal_path", std::move(by_key));
  root.set("recorded_events",
           util::Json::integer(static_cast<std::int64_t>(events().size())));
  return root;
}

void AccessAuditLog::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("AccessAuditLog: cannot open '" + path + "'");
  }
  out << to_json().dump(2) << "\n";
}

void AccessAuditLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  path_names_.clear();
  path_ids_.clear();
  principal_names_.clear();
  principal_ids_.clear();
  events_.clear();
  by_key_.clear();
  dropped_ = 0;
  total_ = 0;
  denials_ = 0;
}

// ---------------------------------------------------------------------------
// Rate-anomaly detector

const PrincipalReport* DetectionReport::find(std::string_view name) const {
  for (const auto& p : principals) {
    if (p.principal == name) return &p;
  }
  return nullptr;
}

namespace {

struct KeySeries {
  // window index -> access count for one (principal, path).
  std::map<std::int64_t, std::uint64_t> windows;
};

struct PrincipalSeries {
  std::map<std::uint32_t, KeySeries> by_path;
  std::set<std::int64_t> active_windows;
  std::set<std::int64_t> flagged_windows;  // windows inside qualifying runs
  std::uint64_t accesses = 0;
  std::uint64_t denials = 0;
  std::int64_t first_ns = -1;
  std::int64_t last_ns = -1;
};

/// Shared window/run analysis used by both the report and the evaluation.
std::map<std::uint32_t, PrincipalSeries> build_series(
    const std::vector<AccessAuditLog::Event>& events,
    const RateDetectorConfig& config) {
  if (config.window.ns <= 0) {
    throw std::invalid_argument("RateDetectorConfig: window must be > 0");
  }
  std::map<std::uint32_t, PrincipalSeries> series;
  for (const auto& e : events) {
    if (e.t.ns < 0) continue;  // untimestamped — cannot be windowed
    auto& p = series[e.principal_id];
    const std::int64_t w = e.t.ns / config.window.ns;
    p.by_path[e.path_id].windows[w] += 1;
    p.active_windows.insert(w);
    ++p.accesses;
    if (e.outcome == AccessOutcome::Denied) ++p.denials;
    if (p.first_ns < 0 || e.t.ns < p.first_ns) p.first_ns = e.t.ns;
    p.last_ns = std::max(p.last_ns, e.t.ns);
  }

  const double window_s = config.window.seconds();
  const auto min_hits = static_cast<std::uint64_t>(
      config.threshold_reads_per_s * window_s + 0.5);
  for (auto& [pid, p] : series) {
    (void)pid;
    for (auto& [path_id, ks] : p.by_path) {
      (void)path_id;
      // Scan consecutive hot runs.
      std::int64_t run_start = 0;
      std::size_t run_len = 0;
      std::int64_t prev_w = std::numeric_limits<std::int64_t>::min();
      const auto commit = [&]() {
        if (run_len >= config.consecutive_windows) {
          for (std::int64_t w = run_start;
               w < run_start + static_cast<std::int64_t>(run_len); ++w) {
            p.flagged_windows.insert(w);
          }
        }
      };
      for (const auto& [w, count] : ks.windows) {
        const bool hot = count >= std::max<std::uint64_t>(min_hits, 1);
        if (hot && w == prev_w + 1 && run_len > 0) {
          ++run_len;
        } else if (hot) {
          commit();
          run_start = w;
          run_len = 1;
        } else {
          commit();
          run_len = 0;
        }
        prev_w = w;
      }
      commit();
    }
  }
  return series;
}

}  // namespace

DetectionReport detect_rate_anomalies(const AccessAuditLog& log,
                                      const RateDetectorConfig& config) {
  const auto events = log.events();
  const auto series = build_series(events, config);
  const double window_s = config.window.seconds();

  DetectionReport report;
  report.config = config;
  for (const auto& [pid, p] : series) {
    PrincipalReport r;
    r.principal = log.principal_name(pid);
    r.accesses = p.accesses;
    r.denials = p.denials;
    r.active_windows = p.active_windows.size();

    double peak = 0.0;
    std::size_t hot = 0;
    const auto min_hits = static_cast<std::uint64_t>(
        config.threshold_reads_per_s * window_s + 0.5);
    for (const auto& [path_id, ks] : p.by_path) {
      (void)path_id;
      for (const auto& [w, count] : ks.windows) {
        (void)w;
        peak = std::max(peak, static_cast<double>(count) / window_s);
        if (count >= std::max<std::uint64_t>(min_hits, 1)) ++hot;
      }
    }
    r.peak_path_rate_hz = peak;
    r.hot_windows = hot;
    if (p.last_ns >= p.first_ns && p.first_ns >= 0) {
      const double extent_s =
          static_cast<double>(p.last_ns - p.first_ns) * 1e-9 + window_s;
      r.mean_rate_hz = static_cast<double>(p.accesses) / extent_s;
    }
    r.flagged = !p.flagged_windows.empty();
    if (r.flagged) {
      const std::int64_t first_run_start = *p.flagged_windows.begin();
      r.detection_time = sim::TimeNs{
          (first_run_start +
           static_cast<std::int64_t>(config.consecutive_windows)) *
          config.window.ns};
    }
    report.principals.push_back(std::move(r));
  }
  std::sort(report.principals.begin(), report.principals.end(),
            [](const PrincipalReport& a, const PrincipalReport& b) {
              return a.principal < b.principal;
            });
  return report;
}

DetectionEval evaluate_detector(
    const AccessAuditLog& log, const RateDetectorConfig& config,
    const std::set<std::string>& attacker_principals) {
  const auto events = log.events();
  const auto series = build_series(events, config);

  DetectionEval eval;
  for (const auto& [pid, p] : series) {
    const bool is_attacker =
        attacker_principals.count(log.principal_name(pid)) != 0;
    for (std::int64_t w : p.active_windows) {
      const bool predicted = p.flagged_windows.count(w) != 0;
      if (is_attacker && predicted) ++eval.tp;
      if (is_attacker && !predicted) ++eval.fn;
      if (!is_attacker && predicted) ++eval.fp;
      if (!is_attacker && !predicted) ++eval.tn;
    }
  }
  return eval;
}

}  // namespace amperebleed::obs
