#include "amperebleed/obs/span.hpp"

#include <atomic>
#include <fstream>
#include <stdexcept>

#include "amperebleed/obs/exporter.hpp"

namespace amperebleed::obs {

namespace {

constexpr std::int64_t kWallPid = 1;
constexpr std::int64_t kVirtualPid = 2;

}  // namespace

std::uint64_t current_thread_tid() {
  static std::atomic<std::uint64_t> next{1};
  thread_local std::uint64_t tid = next.fetch_add(1);
  return tid;
}

SpanTracer::SpanTracer(std::size_t max_events)
    : max_events_(max_events), epoch_(std::chrono::steady_clock::now()) {}

void SpanTracer::add_event(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void SpanTracer::add_virtual_span(
    std::string name, std::string category, sim::TimeNs start,
    sim::TimeNs duration, std::vector<std::pair<std::string, double>> args) {
  export_event(ExportEvent::Kind::SpanEnd, name.c_str(),
               static_cast<double>(duration.ns) * 1e-3);
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.clock = SpanClock::Virtual;
  e.ts_us = static_cast<double>(start.ns) * 1e-3;
  e.dur_us = static_cast<double>(duration.ns) * 1e-3;
  e.tid = current_thread_tid();
  e.other_clock_ns = wall_now_ns();
  e.args = std::move(args);
  add_event(std::move(e));
}

void SpanTracer::add_flow_event(char phase, std::uint64_t flow_id,
                                std::string name, std::string category) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.clock = SpanClock::Wall;
  e.phase = phase;
  e.flow_id = flow_id;
  e.ts_us = wall_now_us();
  e.tid = current_thread_tid();
  add_event(std::move(e));
}

double SpanTracer::wall_now_us() const {
  return static_cast<double>(wall_now_ns()) * 1e-3;
}

std::int64_t SpanTracer::wall_now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::size_t SpanTracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t SpanTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<TraceEvent> SpanTracer::events_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

util::Json SpanTracer::to_chrome_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto events = util::Json::array();

  // Metadata: name the two clock-domain "processes".
  const auto process_name = [](std::int64_t pid, const char* name) {
    auto m = util::Json::object();
    m.set("name", util::Json::string("process_name"));
    m.set("ph", util::Json::string("M"));
    m.set("pid", util::Json::integer(pid));
    m.set("tid", util::Json::integer(0));
    auto args = util::Json::object();
    args.set("name", util::Json::string(name));
    m.set("args", std::move(args));
    return m;
  };
  events.push_back(process_name(kWallPid, "wall-clock"));
  events.push_back(process_name(kVirtualPid, "virtual-time"));

  for (const auto& e : events_) {
    auto j = util::Json::object();
    j.set("name", util::Json::string(e.name));
    if (!e.category.empty()) {
      j.set("cat", util::Json::string(e.category));
    }
    j.set("ph", util::Json::string(std::string(1, e.phase)));
    j.set("pid", util::Json::integer(
                     e.clock == SpanClock::Wall ? kWallPid : kVirtualPid));
    j.set("tid", util::Json::integer(static_cast<std::int64_t>(e.tid)));
    j.set("ts", util::Json::number(e.ts_us));
    if (e.phase == 's' || e.phase == 'f') {
      // Flow events bind under their id; "bp":"e" makes the finish attach to
      // the enclosing slice instead of requiring an exact ts match.
      j.set("id", util::Json::integer(static_cast<std::int64_t>(e.flow_id)));
      if (e.phase == 'f') j.set("bp", util::Json::string("e"));
      events.push_back(std::move(j));
      continue;
    }
    j.set("dur", util::Json::number(e.dur_us));
    auto args = util::Json::object();
    if (e.other_clock_ns >= 0) {
      args.set(e.clock == SpanClock::Wall ? "virtual_ns" : "wall_ns",
               util::Json::integer(e.other_clock_ns));
    }
    if (e.span_id != 0) {
      args.set("trace_id",
               util::Json::integer(static_cast<std::int64_t>(e.trace_id)));
      args.set("span_id",
               util::Json::integer(static_cast<std::int64_t>(e.span_id)));
      args.set("parent_id",
               util::Json::integer(static_cast<std::int64_t>(e.parent_id)));
    }
    for (const auto& [key, value] : e.args) {
      args.set(key, util::Json::number(value));
    }
    for (const auto& [key, value] : e.str_args) {
      args.set(key, util::Json::string(value));
    }
    if (args.size() > 0) j.set("args", std::move(args));
    events.push_back(std::move(j));
  }

  auto root = util::Json::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", util::Json::string("ms"));
  if (dropped_ > 0) {
    root.set("droppedEvents",
             util::Json::integer(static_cast<std::int64_t>(dropped_)));
  }
  return root;
}

void SpanTracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("SpanTracer: cannot open '" + path + "'");
  }
  out << to_chrome_json().dump(1) << "\n";
}

void SpanTracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

// ---------------------------------------------------------------------------
// ScopedSpan

ScopedSpan::ScopedSpan(SpanTracer* tracer, std::string name,
                       std::string category)
    : tracer_(tracer), name_(std::move(name)), category_(std::move(category)) {
  if (tracer_ == nullptr) return;
  start_us_ = tracer_->wall_now_us();
  const SpanContext& parent = current_context();
  ctx_.trace_id = parent.trace_id != 0 ? parent.trace_id : new_trace_id();
  ctx_.parent_id = parent.span_id;
  ctx_.span_id = next_span_id();
  prev_ctx_ = detail::exchange_context(ctx_);
  installed_ = true;
  const TaskSlot& slot = current_task_slot();
  if (slot.active) {
    args_.emplace_back("region_id", static_cast<double>(slot.region_id));
    args_.emplace_back("task_index", static_cast<double>(slot.task_index));
  }
}

ScopedSpan::ScopedSpan(ScopedSpan&& other) noexcept
    : tracer_(other.tracer_),
      name_(std::move(other.name_)),
      category_(std::move(other.category_)),
      start_us_(other.start_us_),
      virtual_ns_(other.virtual_ns_),
      ctx_(other.ctx_),
      prev_ctx_(other.prev_ctx_),
      installed_(other.installed_),
      args_(std::move(other.args_)),
      str_args_(std::move(other.str_args_)) {
  other.tracer_ = nullptr;
  other.installed_ = false;
}

ScopedSpan& ScopedSpan::operator=(ScopedSpan&& other) noexcept {
  if (this != &other) {
    finish();
    tracer_ = other.tracer_;
    name_ = std::move(other.name_);
    category_ = std::move(other.category_);
    start_us_ = other.start_us_;
    virtual_ns_ = other.virtual_ns_;
    ctx_ = other.ctx_;
    prev_ctx_ = other.prev_ctx_;
    installed_ = other.installed_;
    args_ = std::move(other.args_);
    str_args_ = std::move(other.str_args_);
    other.tracer_ = nullptr;
    other.installed_ = false;
  }
  return *this;
}

ScopedSpan::~ScopedSpan() { finish(); }

void ScopedSpan::set_arg(std::string key, double value) {
  if (tracer_ != nullptr) args_.emplace_back(std::move(key), value);
}

void ScopedSpan::set_attr(std::string key, std::string value) {
  if (tracer_ != nullptr) {
    str_args_.emplace_back(std::move(key), std::move(value));
  }
}

void ScopedSpan::finish() {
  if (tracer_ == nullptr) return;
  if (installed_) {
    // Spans nest LIFO on a thread; restoring the saved previous context
    // re-parents subsequent siblings correctly.
    detail::exchange_context(prev_ctx_);
    installed_ = false;
  }
  TraceEvent e;
  // Feed the live exporter (no-op unless an Exporter is attached) before
  // name_ is moved into the trace event.
  export_event(ExportEvent::Kind::SpanEnd, name_.c_str(),
               tracer_->wall_now_us() - start_us_);
  e.name = std::move(name_);
  e.category = std::move(category_);
  e.clock = SpanClock::Wall;
  e.ts_us = start_us_;
  e.dur_us = tracer_->wall_now_us() - start_us_;
  e.tid = current_thread_tid();
  e.trace_id = ctx_.trace_id;
  e.span_id = ctx_.span_id;
  e.parent_id = ctx_.parent_id;
  e.other_clock_ns = virtual_ns_;
  e.args = std::move(args_);
  e.str_args = std::move(str_args_);
  tracer_->add_event(std::move(e));
  tracer_ = nullptr;
}

}  // namespace amperebleed::obs
