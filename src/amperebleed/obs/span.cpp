#include "amperebleed/obs/span.hpp"

#include <atomic>
#include <fstream>
#include <stdexcept>

#include "amperebleed/obs/exporter.hpp"

namespace amperebleed::obs {

namespace {

constexpr std::int64_t kWallPid = 1;
constexpr std::int64_t kVirtualPid = 2;

}  // namespace

std::uint64_t current_thread_tid() {
  static std::atomic<std::uint64_t> next{1};
  thread_local std::uint64_t tid = next.fetch_add(1);
  return tid;
}

SpanTracer::SpanTracer(std::size_t max_events)
    : max_events_(max_events), epoch_(std::chrono::steady_clock::now()) {}

void SpanTracer::add_event(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void SpanTracer::add_virtual_span(
    std::string name, std::string category, sim::TimeNs start,
    sim::TimeNs duration, std::vector<std::pair<std::string, double>> args) {
  export_event(ExportEvent::Kind::SpanEnd, name.c_str(),
               static_cast<double>(duration.ns) * 1e-3);
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.clock = SpanClock::Virtual;
  e.ts_us = static_cast<double>(start.ns) * 1e-3;
  e.dur_us = static_cast<double>(duration.ns) * 1e-3;
  e.tid = current_thread_tid();
  e.other_clock_ns = wall_now_ns();
  e.args = std::move(args);
  add_event(std::move(e));
}

double SpanTracer::wall_now_us() const {
  return static_cast<double>(wall_now_ns()) * 1e-3;
}

std::int64_t SpanTracer::wall_now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::size_t SpanTracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t SpanTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

util::Json SpanTracer::to_chrome_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto events = util::Json::array();

  // Metadata: name the two clock-domain "processes".
  const auto process_name = [](std::int64_t pid, const char* name) {
    auto m = util::Json::object();
    m.set("name", util::Json::string("process_name"));
    m.set("ph", util::Json::string("M"));
    m.set("pid", util::Json::integer(pid));
    m.set("tid", util::Json::integer(0));
    auto args = util::Json::object();
    args.set("name", util::Json::string(name));
    m.set("args", std::move(args));
    return m;
  };
  events.push_back(process_name(kWallPid, "wall-clock"));
  events.push_back(process_name(kVirtualPid, "virtual-time"));

  for (const auto& e : events_) {
    auto j = util::Json::object();
    j.set("name", util::Json::string(e.name));
    if (!e.category.empty()) {
      j.set("cat", util::Json::string(e.category));
    }
    j.set("ph", util::Json::string("X"));
    j.set("pid", util::Json::integer(
                     e.clock == SpanClock::Wall ? kWallPid : kVirtualPid));
    j.set("tid", util::Json::integer(static_cast<std::int64_t>(e.tid)));
    j.set("ts", util::Json::number(e.ts_us));
    j.set("dur", util::Json::number(e.dur_us));
    auto args = util::Json::object();
    if (e.other_clock_ns >= 0) {
      args.set(e.clock == SpanClock::Wall ? "virtual_ns" : "wall_ns",
               util::Json::integer(e.other_clock_ns));
    }
    for (const auto& [key, value] : e.args) {
      args.set(key, util::Json::number(value));
    }
    if (args.size() > 0) j.set("args", std::move(args));
    events.push_back(std::move(j));
  }

  auto root = util::Json::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", util::Json::string("ms"));
  if (dropped_ > 0) {
    root.set("droppedEvents",
             util::Json::integer(static_cast<std::int64_t>(dropped_)));
  }
  return root;
}

void SpanTracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("SpanTracer: cannot open '" + path + "'");
  }
  out << to_chrome_json().dump(1) << "\n";
}

void SpanTracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

// ---------------------------------------------------------------------------
// ScopedSpan

ScopedSpan::ScopedSpan(SpanTracer* tracer, std::string name,
                       std::string category)
    : tracer_(tracer), name_(std::move(name)), category_(std::move(category)) {
  if (tracer_ != nullptr) start_us_ = tracer_->wall_now_us();
}

ScopedSpan::ScopedSpan(ScopedSpan&& other) noexcept
    : tracer_(other.tracer_),
      name_(std::move(other.name_)),
      category_(std::move(other.category_)),
      start_us_(other.start_us_),
      virtual_ns_(other.virtual_ns_),
      args_(std::move(other.args_)) {
  other.tracer_ = nullptr;
}

ScopedSpan& ScopedSpan::operator=(ScopedSpan&& other) noexcept {
  if (this != &other) {
    finish();
    tracer_ = other.tracer_;
    name_ = std::move(other.name_);
    category_ = std::move(other.category_);
    start_us_ = other.start_us_;
    virtual_ns_ = other.virtual_ns_;
    args_ = std::move(other.args_);
    other.tracer_ = nullptr;
  }
  return *this;
}

ScopedSpan::~ScopedSpan() { finish(); }

void ScopedSpan::set_arg(std::string key, double value) {
  if (tracer_ != nullptr) args_.emplace_back(std::move(key), value);
}

void ScopedSpan::finish() {
  if (tracer_ == nullptr) return;
  TraceEvent e;
  // Feed the live exporter (no-op unless an Exporter is attached) before
  // name_ is moved into the trace event.
  export_event(ExportEvent::Kind::SpanEnd, name_.c_str(),
               tracer_->wall_now_us() - start_us_);
  e.name = std::move(name_);
  e.category = std::move(category_);
  e.clock = SpanClock::Wall;
  e.ts_us = start_us_;
  e.dur_us = tracer_->wall_now_us() - start_us_;
  e.tid = current_thread_tid();
  e.other_clock_ns = virtual_ns_;
  e.args = std::move(args_);
  tracer_->add_event(std::move(e));
  tracer_ = nullptr;
}

}  // namespace amperebleed::obs
