#pragma once
// Perf-trajectory comparison of bench run records: loads BENCH_*.json files
// (or whole trajectory directories produced by bench/run_all.sh), matches
// records by bench name, and computes per-metric deltas with noise-aware
// verdicts. This is what turns the accumulated run records into a
// regression *gate*: tools/bench_compare wraps this into a CLI that exits
// non-zero on regression, and CI runs it against the committed
// bench/baseline/ snapshot.
//
// Verdict policy per metric:
//  * direction is inferred from the key (latency/time/error-ish keys are
//    lower-is-better, everything else higher-is-better),
//  * the fast path flags |relative delta| > threshold in the bad direction,
//  * when both records carry repetition samples for the key, a Mann-Whitney
//    U test must ALSO reject (p < alpha) before a delta counts — a noisy
//    wall-clock wiggle inside the null distribution stays "unchanged".
//
// Records embed provenance (env.hostname / env.build_type / env.git_sha);
// comparing across hosts or build types is refused unless forced, because
// such deltas measure the machine, not the code.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "amperebleed/util/json.hpp"

namespace amperebleed::obs {

struct BenchRecord {
  std::string bench;
  std::int64_t unix_time = 0;
  std::map<std::string, double> numbers;  // includes "wall_seconds"
  std::map<std::string, std::string> text;
  std::map<std::string, std::string> env;  // git_sha / hostname / build_type
  std::map<std::string, std::vector<double>> samples;
  std::string source_path;  // where it was loaded from (diagnostics)
};

/// Parse one run-record document. Throws std::runtime_error on documents
/// without a "bench" name.
BenchRecord parse_bench_record(const util::Json& doc,
                               std::string source_path = "");
/// Load + parse one BENCH_*.json file.
BenchRecord load_bench_record(const std::string& path);
/// All BENCH_*.json in a directory, sorted by bench name. Throws when the
/// directory cannot be read or holds no records.
std::vector<BenchRecord> load_trajectory_dir(const std::string& dir);
/// `path` may be a single record file or a trajectory directory.
std::vector<BenchRecord> load_records(const std::string& path);

enum class MetricDirection {
  HigherIsBetter,
  LowerIsBetter,
};

/// Heuristic direction from the metric key: keys smelling of time, latency,
/// errors or drops are lower-is-better; everything else higher-is-better.
MetricDirection metric_direction(std::string_view key);

enum class Verdict {
  Unchanged,    // within threshold, or not statistically significant
  Improvement,  // beyond threshold in the good direction
  Regression,   // beyond threshold in the bad direction
};

const char* verdict_name(Verdict verdict);

struct MetricComparison {
  std::string bench;
  std::string key;
  double baseline = 0.0;
  double current = 0.0;
  double abs_delta = 0.0;  // current - baseline
  double rel_delta = 0.0;  // abs_delta / |baseline| (0 when baseline == 0)
  MetricDirection direction = MetricDirection::HigherIsBetter;
  Verdict verdict = Verdict::Unchanged;
  bool used_mann_whitney = false;
  double p_value = 1.0;  // Mann-Whitney two-sided p (1 when unused)
  /// Informational rows (stage_/slo_ pipeline attribution) never gate:
  /// excluded from regressions()/improvements() regardless of verdict.
  bool informational = false;
};

struct CompareOptions {
  /// Relative-delta threshold for the fast-path verdict.
  double threshold = 0.10;
  /// Mann-Whitney significance level for sampled metrics.
  double alpha = 0.01;
  /// Proceed despite hostname/build_type mismatches.
  bool force = false;
  /// Only compare metrics whose key contains one of these substrings
  /// (empty: all).
  std::vector<std::string> include;
  /// Skip metrics whose key contains one of these substrings.
  std::vector<std::string> exclude;
  /// Surface per-stage pipeline attribution and SLO keys (stage_* / slo_*)
  /// as informational rows. Off by default — stage latencies are wall-clock
  /// observations, not gated perf metrics; even when shown they never count
  /// toward regressions().
  bool show_stages = false;
  /// Surface drift/data-quality keys (drift_* / quality_*) as informational
  /// rows, same policy as show_stages: quality telemetry describes the
  /// monitored stream, not the build under test, so it never gates.
  bool show_quality = false;
};

struct CompareReport {
  std::vector<MetricComparison> comparisons;
  std::vector<std::string> warnings;  // unmatched benches, skipped keys, ...
  /// Records disagree on hostname or build type — deltas measure the
  /// machine, not the code. The CLI refuses without --force.
  bool env_mismatch = false;

  [[nodiscard]] std::size_t regressions() const;
  [[nodiscard]] std::size_t improvements() const;

  [[nodiscard]] util::Json to_json() const;
  /// Human-readable table (regressions and improvements first).
  [[nodiscard]] std::string to_table(bool verbose = false) const;
};

/// Compare two snapshots (baseline vs current), matching records by bench
/// name. Benches present on only one side become warnings, not errors — a
/// new bench must not fail the gate.
CompareReport compare_records(const std::vector<BenchRecord>& baseline,
                              const std::vector<BenchRecord>& current,
                              const CompareOptions& options = {});

}  // namespace amperebleed::obs
