#include "amperebleed/obs/profile.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "amperebleed/obs/obs.hpp"

namespace amperebleed::obs {

namespace {

// Bucket bounds shared by every stage: 1 µs .. ~4 s, factor 8 (wall ns).
std::vector<double> stage_bucket_bounds() {
  std::vector<double> bounds;
  double b = 1e3;
  for (int i = 0; i < 8; ++i) {
    bounds.push_back(b);
    b *= 8.0;
  }
  return bounds;
}

const char* kStageNames[kStageCount] = {"acquire", "preprocess", "features",
                                        "classify"};

}  // namespace

const char* stage_name(Stage stage) {
  const auto i = static_cast<std::size_t>(stage);
  return i < kStageCount ? kStageNames[i] : "unknown";
}

PipelineTimeline::PipelineTimeline() { reset(); }

void PipelineTimeline::record(Stage stage, double wall_ns,
                              std::uint64_t exemplar_span_id) {
  const auto s = static_cast<std::size_t>(stage);
  if (s >= kStageCount) return;
  std::lock_guard<std::mutex> lock(mu_);
  StageStats& st = stages_[s];
  if (st.count == 0) {
    st.min_ns = wall_ns;
    st.max_ns = wall_ns;
  } else {
    st.min_ns = std::min(st.min_ns, wall_ns);
    st.max_ns = std::max(st.max_ns, wall_ns);
  }
  ++st.count;
  st.total_ns += wall_ns;
  for (Bucket& bucket : st.buckets) {
    if (wall_ns <= bucket.upper_ns) {
      ++bucket.count;
      if (exemplar_span_id != 0) {
        bucket.exemplar_span_id = exemplar_span_id;
        bucket.exemplar_ns = wall_ns;
      }
      break;
    }
  }
}

PipelineTimeline::StageStats PipelineTimeline::stage_stats(Stage stage) const {
  const auto s = static_cast<std::size_t>(stage);
  std::lock_guard<std::mutex> lock(mu_);
  return s < kStageCount ? stages_[s] : StageStats{};
}

util::Json PipelineTimeline::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto root = util::Json::object();
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const StageStats& st = stages_[s];
    auto entry = util::Json::object();
    entry.set("count",
              util::Json::integer(static_cast<std::int64_t>(st.count)));
    entry.set("total_ns", util::Json::number(st.total_ns));
    entry.set("min_ns", util::Json::number(st.min_ns));
    entry.set("max_ns", util::Json::number(st.max_ns));
    auto buckets = util::Json::array();
    for (const Bucket& bucket : st.buckets) {
      auto b = util::Json::object();
      if (std::isfinite(bucket.upper_ns)) {
        b.set("le", util::Json::number(bucket.upper_ns));
      } else {
        b.set("le", util::Json::string("+Inf"));
      }
      b.set("count",
            util::Json::integer(static_cast<std::int64_t>(bucket.count)));
      if (bucket.exemplar_span_id != 0) {
        b.set("exemplar_span_id",
              util::Json::integer(
                  static_cast<std::int64_t>(bucket.exemplar_span_id)));
        b.set("exemplar_ns", util::Json::number(bucket.exemplar_ns));
      }
      buckets.push_back(std::move(b));
    }
    entry.set("buckets", std::move(buckets));
    root.set(kStageNames[s], std::move(entry));
  }
  return root;
}

void PipelineTimeline::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  const auto bounds = stage_bucket_bounds();
  for (StageStats& st : stages_) {
    st = StageStats{};
    for (const double bound : bounds) {
      st.buckets.push_back(Bucket{bound, 0, 0, 0.0});
    }
    st.buckets.push_back(
        Bucket{std::numeric_limits<double>::infinity(), 0, 0, 0.0});
  }
}

PipelineTimeline& timeline() {
  static PipelineTimeline* t = new PipelineTimeline();
  return *t;
}

// ---------------------------------------------------------------------------
// StageSpan

StageSpan::StageSpan(Stage stage) : stage_(stage) {
  if (!metrics_enabled() && !tracing_enabled()) return;
  measuring_ = true;
  span_ = obs::span(std::string("pipeline.") + stage_name(stage), "pipeline");
  t0_ns_ = tracer().wall_now_ns();
}

void StageSpan::finish() {
  if (!measuring_) return;
  measuring_ = false;
  const double wall_ns =
      static_cast<double>(tracer().wall_now_ns() - t0_ns_);
  const std::uint64_t exemplar = span_.context().span_id;
  span_.finish();
  if (metrics_enabled()) {
    timeline().record(stage_, wall_ns, exemplar);
    observe((std::string("pipeline.stage.") + stage_name(stage_) + "_ns")
                .c_str(),
            wall_ns);
  }
}

// ---------------------------------------------------------------------------
// Collapsed-stack profiler

std::string collapsed_stacks_text(const SpanTracer& tracer) {
  const std::vector<TraceEvent> events = tracer.events_snapshot();

  // Index completed wall spans by span_id; accumulate direct-children time
  // so each span folds at SELF time.
  std::unordered_map<std::uint64_t, const TraceEvent*> by_id;
  by_id.reserve(events.size());
  for (const auto& e : events) {
    if (e.phase != 'X' || e.clock != SpanClock::Wall || e.span_id == 0) {
      continue;
    }
    by_id.emplace(e.span_id, &e);
  }
  std::unordered_map<std::uint64_t, double> children_us;
  for (const auto& [id, e] : by_id) {
    (void)id;
    if (e->parent_id != 0 && by_id.count(e->parent_id) != 0) {
      children_us[e->parent_id] += e->dur_us;
    }
  }

  std::map<std::string, double> folded;
  std::vector<const TraceEvent*> chain;
  for (const auto& [id, e] : by_id) {
    // Root-first stack; a missing parent (unfinished or dropped span) simply
    // starts the stack there. The depth cap guards malformed parent loops.
    chain.clear();
    const TraceEvent* cursor = e;
    while (cursor != nullptr && chain.size() < 128) {
      chain.push_back(cursor);
      const auto parent = by_id.find(cursor->parent_id);
      cursor = parent == by_id.end() ? nullptr : parent->second;
    }
    std::string stack;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (!stack.empty()) stack += ';';
      stack += (*it)->name;
    }
    const auto child_it = children_us.find(id);
    const double overlap = child_it == children_us.end() ? 0.0
                                                         : child_it->second;
    folded[stack] += std::max(0.0, e->dur_us - overlap);
  }

  std::string out;
  for (const auto& [stack, self_us] : folded) {
    const auto rounded = static_cast<long long>(std::llround(self_us));
    out += stack + " " + std::to_string(rounded) + "\n";
  }
  return out;
}

void write_collapsed_stacks(const SpanTracer& tracer,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_collapsed_stacks: cannot open '" + path +
                             "'");
  }
  out << collapsed_stacks_text(tracer);
}

}  // namespace amperebleed::obs
