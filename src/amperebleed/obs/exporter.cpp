#include "amperebleed/obs/exporter.hpp"

#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "amperebleed/util/fs.hpp"

namespace amperebleed::obs {

namespace detail {
std::atomic<EventRing*> g_export_ring{nullptr};

std::uint64_t export_clock_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}
}  // namespace detail

const char* export_event_kind_name(ExportEvent::Kind kind) {
  switch (kind) {
    case ExportEvent::Kind::CounterAdd:
      return "counter";
    case ExportEvent::Kind::GaugeSet:
      return "gauge";
    case ExportEvent::Kind::HistogramObserve:
      return "histogram";
    case ExportEvent::Kind::SpanEnd:
      return "span";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// EventRing

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

EventRing::EventRing(std::size_t capacity)
    : mask_(round_up_pow2(capacity < 2 ? 2 : capacity) - 1),
      slots_(mask_ + 1) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].seq.store(i, std::memory_order_relaxed);
  }
}

bool EventRing::try_push(const ExportEvent& event) {
  std::size_t pos = head_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & mask_];
    const std::size_t seq = slot.seq.load(std::memory_order_acquire);
    const auto diff = static_cast<std::intptr_t>(seq) -
                      static_cast<std::intptr_t>(pos);
    if (diff == 0) {
      if (head_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        slot.event = event;
        slot.seq.store(pos + 1, std::memory_order_release);
        pushed_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // CAS failed: pos was reloaded; retry.
    } else if (diff < 0) {
      // Slot still holds an unconsumed event one lap behind: ring is full.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    } else {
      // Another producer claimed this position; chase the head.
      pos = head_.load(std::memory_order_relaxed);
    }
  }
}

std::size_t EventRing::drain(std::vector<ExportEvent>& out, std::size_t max) {
  std::size_t n = 0;
  while (n < max) {
    Slot& slot = slots_[tail_ & mask_];
    if (slot.seq.load(std::memory_order_acquire) != tail_ + 1) break;
    out.push_back(slot.event);
    slot.seq.store(tail_ + mask_ + 1, std::memory_order_release);
    ++tail_;
    ++n;
  }
  return n;
}

std::size_t EventRing::approx_size() const {
  const std::size_t head = head_.load(std::memory_order_relaxed);
  return head >= tail_ ? head - tail_ : 0;
}

// ---------------------------------------------------------------------------
// Sinks

namespace {
util::Json event_to_json(const ExportEvent& event) {
  auto e = util::Json::object();
  e.set("kind", util::Json::string(export_event_kind_name(event.kind)));
  e.set("name", util::Json::string(event.name));
  e.set("value", util::Json::number(event.value));
  e.set("ts_ns",
        util::Json::integer(static_cast<std::int64_t>(event.ts_ns)));
  return e;
}
}  // namespace

SnapshotSink::SnapshotSink(std::string path, std::size_t keep_recent)
    : path_(std::move(path)), keep_recent_(keep_recent) {
  if (path_.empty()) {
    throw std::invalid_argument("SnapshotSink: empty path");
  }
}

void SnapshotSink::consume(const std::vector<ExportEvent>& events) {
  for (const auto& event : events) {
    recent_.push_back(event);
    if (recent_.size() > keep_recent_) recent_.pop_front();
  }
}

void SnapshotSink::flush(const MetricsRegistry& registry,
                         const ExporterStats& stats) {
  auto root = util::Json::object();
  auto exporter = util::Json::object();
  exporter.set("events_exported",
               util::Json::integer(
                   static_cast<std::int64_t>(stats.events_exported)));
  exporter.set("events_dropped",
               util::Json::integer(
                   static_cast<std::int64_t>(stats.events_dropped)));
  exporter.set("flushes",
               util::Json::integer(static_cast<std::int64_t>(stats.flushes)));
  root.set("exporter", std::move(exporter));
  root.set("metrics", registry.to_json());
  auto recent = util::Json::array();
  for (const auto& event : recent_) recent.push_back(event_to_json(event));
  root.set("recent_events", std::move(recent));

  // Write-then-fsync-then-rename (util::atomic_write_file) so a concurrent
  // reader never sees a torn snapshot, even across a crash.
  util::atomic_write_file(path_, root.dump(2) + "\n");
  ++writes_;
}

void CollectorSink::consume(const std::vector<ExportEvent>& events) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& event : events) {
    if (events_.size() >= max_events_) break;
    events_.push_back(event);
  }
}

void CollectorSink::flush(const MetricsRegistry& registry,
                          const ExporterStats& stats) {
  (void)registry;
  (void)stats;
  std::lock_guard<std::mutex> lock(mu_);
  ++flushes_;
}

std::vector<ExportEvent> CollectorSink::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::uint64_t CollectorSink::flush_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flushes_;
}

// ---------------------------------------------------------------------------
// Exporter

Exporter::Exporter(MetricsRegistry& registry, ExporterConfig config)
    : registry_(registry),
      config_(config),
      ring_(config.ring_capacity) {
  if (config_.flush_interval_ms <= 0) config_.flush_interval_ms = 1;
  if (config_.drain_batch == 0) config_.drain_batch = 1;
}

Exporter::~Exporter() { stop(); }

void Exporter::add_sink(std::unique_ptr<ExportSink> sink) {
  if (running()) {
    throw std::logic_error("Exporter: add_sink while running");
  }
  if (sink == nullptr) {
    throw std::invalid_argument("Exporter: null sink");
  }
  sinks_.push_back(std::move(sink));
}

void Exporter::start() {
  std::lock_guard<std::mutex> state(state_mu_);
  if (running_.load(std::memory_order_acquire)) return;
  stop_requested_ = false;
  started_at_ = std::chrono::steady_clock::now();
  running_.store(true, std::memory_order_release);
  if (config_.attach_global_hook) {
    detail::g_export_ring.store(&ring_, std::memory_order_release);
  }
  thread_ = std::thread([this] { thread_main(); });
}

void Exporter::stop() {
  {
    std::lock_guard<std::mutex> state(state_mu_);
    if (!running_.load(std::memory_order_acquire)) return;
    // Detach the hook first so producers stop feeding the ring, then let
    // the thread run its final drain-to-empty cycle.
    if (config_.attach_global_hook &&
        detail::g_export_ring.load(std::memory_order_acquire) == &ring_) {
      detail::g_export_ring.store(nullptr, std::memory_order_release);
    }
    stop_requested_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

ExporterStats Exporter::stats() const {
  ExporterStats stats;
  {
    std::lock_guard<std::mutex> lock(cycle_mu_);
    stats.events_exported = exported_;
    stats.flushes = flushes_;
  }
  stats.events_dropped = ring_.dropped();
  return stats;
}

void Exporter::flush_now() { cycle(/*drain_to_empty=*/true); }

void Exporter::thread_main() {
  for (;;) {
    bool stopping;
    {
      std::unique_lock<std::mutex> state(state_mu_);
      cv_.wait_for(state,
                   std::chrono::milliseconds(config_.flush_interval_ms),
                   [this] { return stop_requested_; });
      stopping = stop_requested_;
    }
    cycle(/*drain_to_empty=*/stopping);
    if (stopping) return;
  }
}

void Exporter::cycle(bool drain_to_empty) {
  std::lock_guard<std::mutex> lock(cycle_mu_);
  // Drain the ring in batches. A normal cycle caps its work at a few
  // batches (live producers cannot livelock the exporter); the shutdown
  // cycle keeps going until the — by then detached — producers' backlog is
  // exhausted, so stop() never loses buffered events.
  const std::size_t max_batches =
      drain_to_empty ? std::numeric_limits<std::size_t>::max()
                     : 1 + ring_.capacity() / config_.drain_batch;
  for (std::size_t b = 0; b < max_batches; ++b) {
    batch_.clear();
    const std::size_t n = ring_.drain(batch_, config_.drain_batch);
    if (n > 0) {
      for (auto& sink : sinks_) sink->consume(batch_);
      exported_ += n;
    }
    if (n < config_.drain_batch) break;
  }

  // Publish exporter accounting as ordinary metrics so every sink (and the
  // HTTP /metrics endpoint) sees them.
  const std::uint64_t dropped = ring_.dropped();
  if (dropped > published_dropped_) {
    registry_.counter("obs_exporter_dropped_total")
        .inc(dropped - published_dropped_);
    published_dropped_ = dropped;
  }
  if (exported_ > published_exported_) {
    registry_.counter("obs_exporter_events_total")
        .inc(exported_ - published_exported_);
    published_exported_ = exported_;
  }
  registry_.gauge("obs_exporter_ring_fill")
      .set(static_cast<double>(ring_.approx_size()));
  registry_.gauge("obs_exporter_uptime_seconds")
      .set(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started_at_)
               .count());

  ExporterStats stats;
  stats.events_exported = exported_;
  stats.events_dropped = dropped;
  stats.flushes = flushes_ + 1;
  for (auto& sink : sinks_) sink->flush(registry_, stats);
  ++flushes_;
  registry_.counter("obs_exporter_flushes_total").inc();
}

}  // namespace amperebleed::obs
