#include "amperebleed/obs/slo.hpp"

#include <algorithm>

namespace amperebleed::obs {

util::Json SloStatus::to_json() const {
  auto j = util::Json::object();
  j.set("name", util::Json::string(name));
  j.set("now_s", util::Json::number(now_s));
  j.set("good", util::Json::integer(static_cast<std::int64_t>(good)));
  j.set("total", util::Json::integer(static_cast<std::int64_t>(total)));
  j.set("compliance", util::Json::number(compliance));
  j.set("fast_burn", util::Json::number(fast_burn));
  j.set("slow_burn", util::Json::number(slow_burn));
  j.set("fast_alert", util::Json::boolean(fast_alert));
  j.set("slow_alert", util::Json::boolean(slow_alert));
  j.set("breached", util::Json::boolean(breached));
  return j;
}

void histogram_good_total(const Histogram& histogram, double threshold,
                          std::uint64_t& good, std::uint64_t& total) {
  const auto counts = histogram.bucket_counts();
  const auto& bounds = histogram.bucket_bounds();
  good = 0;
  // Bucket-resolution semantics: a bucket counts as good only when its whole
  // range is under the threshold (upper bound <= threshold). The +inf
  // overflow bucket is never good.
  for (std::size_t i = 0; i < bounds.size() && i < counts.size(); ++i) {
    if (bounds[i] <= threshold) good += counts[i];
  }
  total = histogram.count();
}

// ---------------------------------------------------------------------------
// Slo

Slo::Slo(SloObjective objective) : objective_(std::move(objective)) {
  // Origin anchor: the first evaluation's windows reach back to t=0.
  history_.push_back(Snapshot{});
}

double Slo::windowed_burn(const Snapshot& now, double window_s) const {
  // Oldest snapshot still inside the window (the window clamps to history:
  // with less history than the window, the whole history is the window).
  const Snapshot* anchor = &history_.front();
  for (const Snapshot& s : history_) {
    if (s.t >= now.t - window_s) break;
    anchor = &s;
  }
  const std::uint64_t total = now.total - anchor->total;
  if (total == 0) return 0.0;
  const std::uint64_t good = now.good - anchor->good;
  const double bad_fraction =
      static_cast<double>(total - good) / static_cast<double>(total);
  const double budget = 1.0 - objective_.target;
  return budget <= 0.0 ? (bad_fraction > 0.0 ? 1e308 : 0.0)
                       : bad_fraction / budget;
}

SloStatus Slo::evaluate(const MetricsRegistry& registry, double now_s) {
  Snapshot now;
  now.t = now_s;
  if (const Histogram* h = registry.find_histogram(objective_.histogram)) {
    histogram_good_total(*h, objective_.threshold, now.good, now.total);
  }

  SloStatus status;
  status.name = objective_.name;
  status.now_s = now_s;
  status.good = now.good;
  status.total = now.total;
  status.compliance =
      now.total == 0 ? 1.0
                     : static_cast<double>(now.good) /
                           static_cast<double>(now.total);
  status.fast_burn = windowed_burn(now, objective_.fast_window_s);
  status.slow_burn = windowed_burn(now, objective_.slow_window_s);
  status.fast_alert = status.fast_burn > objective_.fast_burn_alert;
  status.slow_alert = status.slow_burn > objective_.slow_burn_alert;
  status.breached = status.fast_alert && status.slow_alert;

  history_.push_back(now);
  // Prune history the slow window can no longer reach, keeping one anchor
  // older than the window edge.
  while (history_.size() > 2 &&
         history_[1].t < now.t - objective_.slow_window_s) {
    history_.pop_front();
  }
  return status;
}

void Slo::reset_history() {
  history_.clear();
  history_.push_back(Snapshot{});
}

// ---------------------------------------------------------------------------
// SloRegistry

void SloRegistry::add(SloObjective objective) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slo& slo : slos_) {
    if (slo.objective().name == objective.name) {
      slo = Slo(std::move(objective));
      return;
    }
  }
  slos_.emplace_back(std::move(objective));
}

bool SloRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::any_of(slos_.begin(), slos_.end(), [&](const Slo& slo) {
    return slo.objective().name == name;
  });
}

std::size_t SloRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slos_.size();
}

void SloRegistry::advance(double seconds) {
  if (seconds <= 0.0) return;
  std::lock_guard<std::mutex> lock(mu_);
  now_s_ += seconds;
}

double SloRegistry::now_s() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_s_;
}

std::vector<SloStatus> SloRegistry::evaluate_all(
    const MetricsRegistry& registry) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SloStatus> statuses;
  statuses.reserve(slos_.size());
  for (Slo& slo : slos_) {
    statuses.push_back(slo.evaluate(registry, now_s_));
  }
  return statuses;
}

util::Json SloRegistry::to_json(const MetricsRegistry& registry) {
  const auto statuses = evaluate_all(registry);
  auto root = util::Json::object();
  double now = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    now = now_s_;
  }
  root.set("now_s", util::Json::number(now));
  auto list = util::Json::array();
  for (const auto& status : statuses) list.push_back(status.to_json());
  root.set("objectives", std::move(list));
  return root;
}

void SloRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  slos_.clear();
  now_s_ = 0.0;
}

SloRegistry& slos() {
  static SloRegistry* registry = new SloRegistry();
  return *registry;
}

}  // namespace amperebleed::obs
