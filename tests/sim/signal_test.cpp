#include "amperebleed/sim/signal.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace amperebleed::sim {
namespace {

TEST(PiecewiseConstant, EmptySignalIsInitialValueEverywhere) {
  PiecewiseConstant s(2.5);
  EXPECT_DOUBLE_EQ(s.value_at(TimeNs{0}), 2.5);
  EXPECT_DOUBLE_EQ(s.value_at(seconds(100)), 2.5);
  EXPECT_DOUBLE_EQ(s.integrate(TimeNs{0}, seconds(2)), 5.0);
}

TEST(PiecewiseConstant, ValueAtRespectsRightOpenSemantics) {
  PiecewiseConstant s(0.0);
  s.append(milliseconds(10), 1.0);
  EXPECT_DOUBLE_EQ(s.value_at(milliseconds(10) - nanoseconds(1)), 0.0);
  EXPECT_DOUBLE_EQ(s.value_at(milliseconds(10)), 1.0);
  EXPECT_DOUBLE_EQ(s.value_at(milliseconds(11)), 1.0);
}

TEST(PiecewiseConstant, AppendRequiresIncreasingTime) {
  PiecewiseConstant s(0.0);
  s.append(milliseconds(1), 1.0);
  EXPECT_THROW(s.append(milliseconds(1), 2.0), std::invalid_argument);
  EXPECT_THROW(s.append(microseconds(500), 2.0), std::invalid_argument);
}

TEST(PiecewiseConstant, CoalescesEqualValuesEvenAtSameInstant) {
  PiecewiseConstant s(1.0);
  s.append(milliseconds(1), 1.0);  // no-op: same value as tail
  EXPECT_EQ(s.segment_count(), 0u);
  s.append(milliseconds(1), 2.0);
  s.append(milliseconds(1), 2.0);  // no-op again, same time is fine
  EXPECT_EQ(s.segment_count(), 1u);
}

TEST(PiecewiseConstant, IntegrateAcrossSegments) {
  PiecewiseConstant s(1.0);
  s.append(seconds(1), 3.0);
  s.append(seconds(2), 0.0);
  // [0,1):1, [1,2):3, [2,4):0 -> 1 + 3 + 0 = 4
  EXPECT_DOUBLE_EQ(s.integrate(TimeNs{0}, seconds(4)), 4.0);
}

TEST(PiecewiseConstant, IntegratePartialWindows) {
  PiecewiseConstant s(2.0);
  s.append(seconds(1), 4.0);
  EXPECT_DOUBLE_EQ(s.integrate(milliseconds(500), milliseconds(1500)), 3.0);
}

TEST(PiecewiseConstant, IntegrateEmptyWindowIsZero) {
  PiecewiseConstant s(5.0);
  EXPECT_DOUBLE_EQ(s.integrate(seconds(1), seconds(1)), 0.0);
}

TEST(PiecewiseConstant, IntegrateRejectsReversedWindow) {
  PiecewiseConstant s(1.0);
  EXPECT_THROW(static_cast<void>(s.integrate(seconds(2), seconds(1))),
               std::invalid_argument);
}

TEST(PiecewiseConstant, MeanOverWindow) {
  PiecewiseConstant s(0.0);
  s.append(seconds(1), 10.0);
  EXPECT_DOUBLE_EQ(s.mean(TimeNs{0}, seconds(2)), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(seconds(1), seconds(2)), 10.0);
}

TEST(PiecewiseConstant, MinMaxOverWindow) {
  PiecewiseConstant s(1.0);
  s.append(seconds(1), 5.0);
  s.append(seconds(2), -2.0);
  EXPECT_DOUBLE_EQ(s.min_over(TimeNs{0}, seconds(3)), -2.0);
  EXPECT_DOUBLE_EQ(s.max_over(TimeNs{0}, seconds(3)), 5.0);
  // Window before any change sees only the initial value.
  EXPECT_DOUBLE_EQ(s.max_over(TimeNs{0}, milliseconds(500)), 1.0);
}

TEST(PiecewiseConstant, SumOfSignals) {
  PiecewiseConstant a(1.0);
  a.append(seconds(1), 2.0);
  PiecewiseConstant b(10.0);
  b.append(seconds(2), 20.0);
  const PiecewiseConstant c = a + b;
  EXPECT_DOUBLE_EQ(c.value_at(TimeNs{0}), 11.0);
  EXPECT_DOUBLE_EQ(c.value_at(seconds(1)), 12.0);
  EXPECT_DOUBLE_EQ(c.value_at(seconds(2)), 22.0);
}

TEST(PiecewiseConstant, SumHandlesSimultaneousChanges) {
  PiecewiseConstant a(0.0);
  a.append(seconds(1), 1.0);
  PiecewiseConstant b(0.0);
  b.append(seconds(1), 2.0);
  const PiecewiseConstant c = a + b;
  EXPECT_DOUBLE_EQ(c.value_at(seconds(1)), 3.0);
  EXPECT_DOUBLE_EQ(c.value_at(seconds(1) - nanoseconds(1)), 0.0);
  EXPECT_EQ(c.segment_count(), 1u);
}

TEST(PiecewiseConstant, ScaleMultipliesEverything) {
  PiecewiseConstant s(1.0);
  s.append(seconds(1), 3.0);
  s.scale(2.0);
  EXPECT_DOUBLE_EQ(s.value_at(TimeNs{0}), 2.0);
  EXPECT_DOUBLE_EQ(s.value_at(seconds(1)), 6.0);
}

TEST(PiecewiseConstant, IntegralMatchesSumOfParts) {
  // Property: integrate(a,c) == integrate(a,b) + integrate(b,c).
  PiecewiseConstant s(0.5);
  s.append(milliseconds(100), 1.5);
  s.append(milliseconds(250), 0.25);
  s.append(milliseconds(900), 4.0);
  const TimeNs a{0};
  const TimeNs b = milliseconds(400);
  const TimeNs c = seconds(2);
  EXPECT_NEAR(s.integrate(a, c), s.integrate(a, b) + s.integrate(b, c), 1e-12);
}

class SignalWindowProperty : public ::testing::TestWithParam<int> {};

TEST_P(SignalWindowProperty, MeanIsBetweenMinAndMax) {
  PiecewiseConstant s(1.0);
  s.append(milliseconds(10), 3.0);
  s.append(milliseconds(20), -1.0);
  s.append(milliseconds(30), 7.0);
  const int offset_ms = GetParam();
  const TimeNs t0 = milliseconds(offset_ms);
  const TimeNs t1 = milliseconds(offset_ms + 15);
  const double m = s.mean(t0, t1);
  EXPECT_GE(m, s.min_over(t0, t1) - 1e-12);
  EXPECT_LE(m, s.max_over(t0, t1) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Windows, SignalWindowProperty,
                         ::testing::Values(0, 5, 10, 15, 22, 28, 40));

}  // namespace
}  // namespace amperebleed::sim
