#include "amperebleed/sim/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace amperebleed::sim {
namespace {

TEST(WhiteNoise, MomentsMatchConfig) {
  WhiteNoise noise(2.0, 42);
  const int n = 100'000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = noise.sample();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum_sq / n), 2.0, 0.05);
}

TEST(WhiteNoise, DeterministicForSeed) {
  WhiteNoise a(1.0, 7);
  WhiteNoise b(1.0, 7);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a.sample(), b.sample());
}

TEST(OrnsteinUhlenbeck, StartsAtMean) {
  OrnsteinUhlenbeck ou(5.0, 1.0, 0.5, 1);
  EXPECT_DOUBLE_EQ(ou.value(), 5.0);
}

TEST(OrnsteinUhlenbeck, RejectsBadParameters) {
  EXPECT_THROW(OrnsteinUhlenbeck(0.0, 0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(OrnsteinUhlenbeck(0.0, -1.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(OrnsteinUhlenbeck(0.0, 1.0, -1.0, 1), std::invalid_argument);
}

TEST(OrnsteinUhlenbeck, ZeroDtIsIdentity) {
  OrnsteinUhlenbeck ou(0.0, 1.0, 1.0, 3);
  ou.step(seconds(1));
  const double v = ou.value();
  EXPECT_DOUBLE_EQ(ou.step(TimeNs{0}), v);
}

TEST(OrnsteinUhlenbeck, NegativeDtRejected) {
  OrnsteinUhlenbeck ou(0.0, 1.0, 1.0, 3);
  EXPECT_THROW(ou.step(TimeNs{-1}), std::invalid_argument);
}

TEST(OrnsteinUhlenbeck, StationaryStddevFormula) {
  OrnsteinUhlenbeck ou(0.0, 2.0, 4.0, 5);
  EXPECT_DOUBLE_EQ(ou.stationary_stddev(), 4.0 / std::sqrt(4.0));
}

TEST(OrnsteinUhlenbeck, LongRunStatisticsMatchStationary) {
  OrnsteinUhlenbeck ou(10.0, 5.0, 2.0, 11);
  // Skip burn-in, then sample well-separated points.
  ou.step(seconds(10));
  const int n = 20'000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = ou.step(milliseconds(500));  // >> 1/theta decorrelated
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), ou.stationary_stddev(), 0.05);
}

TEST(OrnsteinUhlenbeck, StatisticsIndependentOfStepSize) {
  // The exact discretization means many small steps ~ one big step in law.
  // Compare long-run variance under two very different step sizes.
  const auto run_var = [](TimeNs dt, int steps_between, std::uint64_t seed) {
    OrnsteinUhlenbeck ou(0.0, 5.0, 2.0, seed);
    ou.step(seconds(10));
    double sum_sq = 0.0;
    const int n = 5'000;
    for (int i = 0; i < n; ++i) {
      double x = 0.0;
      for (int k = 0; k < steps_between; ++k) x = ou.step(dt);
      sum_sq += x * x;
    }
    return sum_sq / n;
  };
  const double var_coarse = run_var(milliseconds(500), 1, 21);
  const double var_fine = run_var(milliseconds(50), 10, 22);
  EXPECT_NEAR(var_coarse, var_fine, 0.1 * var_coarse + 0.02);
}

TEST(OrnsteinUhlenbeck, ResetOverridesState) {
  OrnsteinUhlenbeck ou(0.0, 1.0, 1.0, 9);
  ou.step(seconds(1));
  ou.reset(42.0);
  EXPECT_DOUBLE_EQ(ou.value(), 42.0);
}

}  // namespace
}  // namespace amperebleed::sim
