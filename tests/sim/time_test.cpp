#include "amperebleed/sim/time.hpp"

#include <gtest/gtest.h>

namespace amperebleed::sim {
namespace {

TEST(TimeNs, UnitConstructors) {
  EXPECT_EQ(nanoseconds(5).ns, 5);
  EXPECT_EQ(microseconds(5).ns, 5'000);
  EXPECT_EQ(milliseconds(5).ns, 5'000'000);
  EXPECT_EQ(seconds(5).ns, 5'000'000'000LL);
}

TEST(TimeNs, Conversions) {
  const TimeNs t = milliseconds(35);
  EXPECT_DOUBLE_EQ(t.seconds(), 0.035);
  EXPECT_DOUBLE_EQ(t.millis(), 35.0);
  EXPECT_DOUBLE_EQ(t.micros(), 35'000.0);
}

TEST(TimeNs, Arithmetic) {
  EXPECT_EQ((milliseconds(1) + microseconds(500)).ns, 1'500'000);
  EXPECT_EQ((milliseconds(2) - milliseconds(1)).ns, 1'000'000);
  TimeNs t = seconds(1);
  t += milliseconds(1);
  EXPECT_EQ(t.ns, 1'001'000'000LL);
}

TEST(TimeNs, Comparisons) {
  EXPECT_LT(milliseconds(1), milliseconds(2));
  EXPECT_LE(milliseconds(2), milliseconds(2));
  EXPECT_GT(seconds(1), milliseconds(999));
  EXPECT_EQ(seconds(1), milliseconds(1000));
  EXPECT_NE(seconds(1), milliseconds(1001));
}

TEST(TimeNs, FromSecondsRounds) {
  EXPECT_EQ(from_seconds(1.5).ns, 1'500'000'000LL);
  EXPECT_EQ(from_seconds(0.0000000014).ns, 1);  // 1.4 ns -> 1
  EXPECT_EQ(from_seconds(0.0000000016).ns, 2);  // 1.6 ns -> 2
  EXPECT_EQ(from_seconds(-1.0).ns, -1'000'000'000LL);
}

}  // namespace
}  // namespace amperebleed::sim
