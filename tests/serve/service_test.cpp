#include "amperebleed/serve/service.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "amperebleed/util/fs.hpp"
#include "amperebleed/util/rng.hpp"
#include "amperebleed/util/thread_pool.hpp"

namespace amperebleed::serve {
namespace {

// Synthetic "model signature" traces, same shape as the online tests: class
// c sits at mean level 100*c with a class-specific ripple.
core::Trace synthetic_trace(int cls, std::uint64_t seed,
                            std::size_t len = 40) {
  util::Rng rng(seed);
  core::Trace t({}, sim::TimeNs{0}, sim::milliseconds(35));
  for (std::size_t i = 0; i < len; ++i) {
    const double ripple = (i % (2 + static_cast<std::size_t>(cls))) * 5.0;
    t.push(100.0 * cls + ripple + rng.gaussian(0.0, 2.0));
  }
  return t;
}

Request enroll_request(const std::string& tenant, int cls,
                       std::uint64_t seed) {
  Request r;
  r.kind = RequestKind::Enroll;
  r.tenant = tenant;
  r.label = "net-" + std::to_string(cls);
  r.trace = synthetic_trace(cls, seed);
  return r;
}

Request classify_request(const std::string& tenant, int cls,
                         std::uint64_t seed) {
  Request r;
  r.kind = RequestKind::Classify;
  r.tenant = tenant;
  r.trace = synthetic_trace(cls, seed);
  return r;
}

Request control_request(RequestKind kind, const std::string& tenant) {
  Request r;
  r.kind = kind;
  r.tenant = tenant;
  return r;
}

ServiceConfig small_config() {
  ServiceConfig config;
  config.fingerprinter.forest.n_trees = 20;
  return config;
}

/// Enroll + train `tenant` with classes 0..classes-1 through the queue.
void bring_up(ClassificationService& service, const std::string& tenant,
              int classes = 2, std::size_t reps = 6) {
  for (int cls = 0; cls < classes; ++cls) {
    for (std::size_t rep = 0; rep < reps; ++rep) {
      (void)service.submit(
          enroll_request(tenant, cls, 100 * static_cast<std::uint64_t>(cls) +
                                          rep));
    }
  }
  (void)service.submit(control_request(RequestKind::Train, tenant));
  for (const auto& response : service.drain()) {
    ASSERT_TRUE(response.ok())
        << kind_name(response.kind) << ": " << response.error;
  }
}

TEST(ClassificationService, EnrollTrainClassifyRoundTrip) {
  ClassificationService service(small_config());
  bring_up(service, "acme");

  const auto submit =
      service.submit(classify_request("acme", 1, 0xfeed));
  ASSERT_TRUE(submit.accepted);
  const auto responses = service.tick();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].id, submit.id);
  EXPECT_EQ(responses[0].status, ServeStatus::Ok);
  EXPECT_TRUE(responses[0].verdict.known);
  EXPECT_EQ(responses[0].verdict.model_name, "net-1");
  // Virtual latency: admitted this tick, completed one tick later.
  EXPECT_EQ(responses[0].latency().ns, service.config().tick.ns);

  const TenantSession* tenant = service.tenant("acme");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->state(), TenantSession::State::Serving);
  EXPECT_EQ(tenant->classified(), 1u);
}

TEST(ClassificationService, ClassifyUnknownTenant) {
  ClassificationService service(small_config());
  (void)service.submit(classify_request("ghost", 0, 1));
  const auto responses = service.drain();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ServeStatus::UnknownTenant);
  EXPECT_NE(responses[0].error.find("ghost"), std::string::npos);
}

TEST(ClassificationService, ClassifyUntrainedTenant) {
  ClassificationService service(small_config());
  (void)service.submit(enroll_request("acme", 0, 1));
  (void)service.submit(classify_request("acme", 0, 2));
  const auto responses = service.drain();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].status, ServeStatus::Ok);
  EXPECT_EQ(responses[1].status, ServeStatus::NotTrained);
}

TEST(ClassificationService, EnrollAfterRetire) {
  ClassificationService service(small_config());
  bring_up(service, "acme");
  (void)service.submit(control_request(RequestKind::Retire, "acme"));
  (void)service.submit(enroll_request("acme", 0, 7));
  (void)service.submit(classify_request("acme", 0, 8));
  (void)service.submit(control_request(RequestKind::Retire, "acme"));
  const auto responses = service.drain();
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(responses[0].status, ServeStatus::Ok);  // retire
  EXPECT_EQ(responses[1].status, ServeStatus::TenantRetired);
  EXPECT_EQ(responses[2].status, ServeStatus::TenantRetired);
  EXPECT_EQ(responses[3].status, ServeStatus::TenantRetired);  // twice
  // The namespace stays reserved after retirement.
  ASSERT_NE(service.tenant("acme"), nullptr);
  EXPECT_EQ(service.tenant("acme")->state(), TenantSession::State::Retired);
}

TEST(ClassificationService, TrainLifecycleErrors) {
  ClassificationService service(small_config());
  // Train an unknown tenant; then train with a single class.
  (void)service.submit(control_request(RequestKind::Train, "ghost"));
  (void)service.submit(enroll_request("acme", 0, 1));
  (void)service.submit(control_request(RequestKind::Train, "acme"));
  const auto responses = service.drain();
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].status, ServeStatus::UnknownTenant);
  EXPECT_EQ(responses[1].status, ServeStatus::Ok);
  EXPECT_EQ(responses[2].status, ServeStatus::InvalidRequest);  // one class
  // Double-train after a successful bring-up answers AlreadyTrained.
  bring_up(service, "acme2");
  (void)service.submit(control_request(RequestKind::Train, "acme2"));
  const auto again = service.drain();
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].status, ServeStatus::AlreadyTrained);
}

TEST(ClassificationService, ZeroLengthTraceRejected) {
  ClassificationService service(small_config());
  bring_up(service, "acme");
  // Empty trace on classify, missing trace on classify, empty on enroll.
  Request empty_classify;
  empty_classify.kind = RequestKind::Classify;
  empty_classify.tenant = "acme";
  empty_classify.trace = core::Trace({}, sim::TimeNs{0},
                                     sim::milliseconds(35));
  Request missing_classify;
  missing_classify.kind = RequestKind::Classify;
  missing_classify.tenant = "acme";
  Request empty_enroll;
  empty_enroll.kind = RequestKind::Enroll;
  empty_enroll.tenant = "fresh";
  empty_enroll.label = "net-0";
  (void)service.submit(std::move(empty_classify));
  (void)service.submit(std::move(missing_classify));
  (void)service.submit(std::move(empty_enroll));
  const auto responses = service.drain();
  ASSERT_EQ(responses.size(), 3u);
  for (const auto& response : responses) {
    EXPECT_EQ(response.status, ServeStatus::InvalidRequest)
        << status_name(response.status);
  }
  // The empty enroll never opened a namespace.
  EXPECT_EQ(service.tenant("fresh"), nullptr);
}

TEST(ClassificationService, QueueFullRejection) {
  ServiceConfig config = small_config();
  config.queue.capacity = 8;
  config.queue.high_water = 4;
  ClassificationService service(config);
  std::uint64_t accepted = 0;
  std::uint64_t overloaded = 0;
  for (int i = 0; i < 10; ++i) {
    const auto result = service.submit(classify_request("acme", 0, 1));
    if (result.accepted) {
      ++accepted;
    } else {
      EXPECT_EQ(result.status, ServeStatus::Overloaded);
      ++overloaded;
    }
  }
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(overloaded, 6u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 10u);
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.rejected, 6u);
  // Rejected requests never produce responses.
  EXPECT_EQ(service.drain().size(), 4u);
  // Draining reopened admission.
  EXPECT_TRUE(service.submit(classify_request("acme", 0, 2)).accepted);
}

TEST(ClassificationService, CoalescesRunsAndControlFences) {
  ClassificationService service(small_config());
  bring_up(service, "a");
  bring_up(service, "b");
  // Interleaved classify requests for both tenants, then a control fence,
  // then one more classify: 2 sweeps, the first covering 4 rows.
  (void)service.submit(classify_request("a", 0, 11));
  (void)service.submit(classify_request("b", 1, 12));
  (void)service.submit(classify_request("a", 1, 13));
  (void)service.submit(classify_request("b", 0, 14));
  (void)service.submit(control_request(RequestKind::Retire, "b"));
  (void)service.submit(classify_request("a", 0, 15));
  const auto responses = service.tick();
  ASSERT_EQ(responses.size(), 6u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(responses[i].status, ServeStatus::Ok) << i;
    EXPECT_TRUE(responses[i].verdict.known) << i;
  }
  EXPECT_EQ(responses[4].status, ServeStatus::Ok);
  EXPECT_EQ(responses[5].status, ServeStatus::Ok);
  const auto stats = service.stats();
  EXPECT_EQ(stats.sweeps, 2u);
  EXPECT_EQ(stats.coalesced_rows, 5u);
  EXPECT_EQ(service.tenant("a")->classified(), 3u);
  EXPECT_EQ(service.tenant("b")->classified(), 2u);
}

TEST(ClassificationService, MaxBatchBoundsEachTick) {
  ServiceConfig config = small_config();
  config.max_batch = 3;
  ClassificationService service(config);
  for (int i = 0; i < 7; ++i) {
    (void)service.submit(classify_request("ghost", 0, 1));
  }
  EXPECT_EQ(service.tick().size(), 3u);
  EXPECT_EQ(service.tick().size(), 3u);
  EXPECT_EQ(service.tick().size(), 1u);
  EXPECT_EQ(service.now().ns, 3 * config.tick.ns);
}

TEST(ClassificationService, ResponsesBitIdenticalAcrossPoolSizes) {
  struct PoolSizeGuard {
    std::size_t before = util::ThreadPool::global().size();
    ~PoolSizeGuard() { util::ThreadPool::set_global_threads(before); }
  } guard;

  const auto run = [] {
    ClassificationService service(small_config());
    bring_up(service, "a", 3);
    bring_up(service, "b", 2);
    std::vector<Response> all;
    util::Rng rng(0xd1ce);
    for (int burst = 0; burst < 4; ++burst) {
      for (int i = 0; i < 8; ++i) {
        const int cls = static_cast<int>(rng.uniform_below(2));
        (void)service.submit(classify_request(
            rng.uniform_below(2) == 0 ? "a" : "b", cls, 900 + i));
      }
      auto responses = service.tick();
      all.insert(all.end(), responses.begin(), responses.end());
    }
    return all;
  };

  util::ThreadPool::set_global_threads(1);
  const auto serial = run();
  util::ThreadPool::set_global_threads(4);
  const auto parallel = run();
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].id, parallel[i].id) << i;
    EXPECT_EQ(serial[i].status, parallel[i].status) << i;
    EXPECT_EQ(serial[i].verdict.known, parallel[i].verdict.known) << i;
    EXPECT_EQ(serial[i].verdict.model_name, parallel[i].verdict.model_name)
        << i;
    EXPECT_EQ(serial[i].verdict.confidence, parallel[i].verdict.confidence)
        << i;  // exact float equality: bit-identical by contract
    EXPECT_EQ(serial[i].latency().ns, parallel[i].latency().ns) << i;
  }
}

TEST(ClassificationService, SnapshotJsonShape) {
  ClassificationService service(small_config());
  bring_up(service, "acme");
  (void)service.submit(classify_request("acme", 0, 21));
  (void)service.drain();
  const util::Json snapshot = service.to_json();
  const std::string dump = snapshot.dump(0);
  EXPECT_NE(dump.find("\"virtual_now_s\""), std::string::npos);
  EXPECT_NE(dump.find("\"tenants\""), std::string::npos);
  EXPECT_NE(dump.find("\"acme\""), std::string::npos);
  EXPECT_NE(dump.find("\"serving\""), std::string::npos);
  EXPECT_NE(dump.find("\"p99_vus\""), std::string::npos);
}

TEST(ClassificationService, DurableModeSurvivesRestart) {
  const std::string dir = ::testing::TempDir() + "service_durable";
  if (util::path_exists(dir)) {
    for (const std::string& name : util::list_dir(dir)) {
      util::remove_file(dir + "/" + name);
    }
  }
  ServiceConfig config = small_config();
  config.durability.dir = dir;

  Response before;
  {
    ClassificationService service(config);
    EXPECT_TRUE(service.storage().enabled);
    EXPECT_FALSE(service.degraded());
    bring_up(service, "acme");
    EXPECT_EQ(service.storage().last_seq, 13u);  // 12 enrolls + 1 train
    (void)service.submit(classify_request("acme", 1, 0xfeed));
    auto responses = service.drain();
    ASSERT_EQ(responses.size(), 1u);
    before = std::move(responses[0]);
    ASSERT_TRUE(before.ok());
    // The durable state shows up in the JSON snapshot.
    EXPECT_NE(service.to_json().dump(0).find("\"storage\""),
              std::string::npos);
  }

  // Reconstruction on the same directory IS recovery — and the recovered
  // tenant classifies the same trace bit-identically.
  ClassificationService recovered(config);
  EXPECT_TRUE(recovered.storage().recovered);
  EXPECT_EQ(recovered.storage().recovered_tenants, 1u);
  EXPECT_EQ(recovered.storage().last_seq, 13u);
  ASSERT_NE(recovered.tenant("acme"), nullptr);
  EXPECT_EQ(recovered.tenant("acme")->state(), TenantSession::State::Serving);
  (void)recovered.submit(classify_request("acme", 1, 0xfeed));
  const auto responses = recovered.drain();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ServeStatus::Ok);
  EXPECT_EQ(responses[0].verdict.model_name, before.verdict.model_name);
  EXPECT_EQ(responses[0].verdict.confidence, before.verdict.confidence);
  EXPECT_EQ(responses[0].verdict.margin, before.verdict.margin);
}

TEST(ServeTypes, NamesAreStable) {
  EXPECT_EQ(kind_name(RequestKind::Enroll), "enroll");
  EXPECT_EQ(kind_name(RequestKind::Retire), "retire");
  EXPECT_EQ(status_name(ServeStatus::Ok), "ok");
  EXPECT_EQ(status_name(ServeStatus::Overloaded), "overloaded");
  EXPECT_EQ(status_name(ServeStatus::TenantRetired), "tenant-retired");
  EXPECT_EQ(status_name(ServeStatus::InvalidRequest), "invalid-request");
  EXPECT_EQ(status_name(ServeStatus::StorageUnavailable),
            "storage-unavailable");
  // by_status arrays are sized against this; keep them in lockstep.
  EXPECT_EQ(kServeStatusCount,
            static_cast<std::size_t>(ServeStatus::StorageUnavailable) + 1);
}

}  // namespace
}  // namespace amperebleed::serve
