#include "amperebleed/serve/queue.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace amperebleed::serve {
namespace {

Pending make_pending(std::uint64_t id) {
  Pending p;
  p.id = id;
  p.request.kind = RequestKind::Classify;
  p.request.tenant = "t";
  return p;
}

TEST(RequestQueue, FifoOrderAcrossDrains) {
  RequestQueue queue({.capacity = 16, .high_water = 16});
  for (std::uint64_t id = 1; id <= 5; ++id) {
    EXPECT_TRUE(queue.try_push(make_pending(id)));
  }
  EXPECT_EQ(queue.depth(), 5u);
  const auto first = queue.drain(2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].id, 1u);
  EXPECT_EQ(first[1].id, 2u);
  const auto rest = queue.drain(0);  // 0 = everything
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0].id, 3u);
  EXPECT_EQ(rest[2].id, 5u);
  EXPECT_TRUE(queue.empty());
}

TEST(RequestQueue, HighWaterMarkShedsLoad) {
  RequestQueue queue({.capacity = 8, .high_water = 3});
  EXPECT_TRUE(queue.try_push(make_pending(1)));
  EXPECT_TRUE(queue.try_push(make_pending(2)));
  EXPECT_TRUE(queue.try_push(make_pending(3)));
  // At the high-water mark: admission control turns the door away.
  EXPECT_FALSE(queue.try_push(make_pending(4)));
  EXPECT_FALSE(queue.try_push(make_pending(5)));
  EXPECT_EQ(queue.accepted(), 3u);
  EXPECT_EQ(queue.rejected(), 2u);
  EXPECT_EQ(queue.max_depth(), 3u);
  // Draining reopens it.
  (void)queue.drain(1);
  EXPECT_TRUE(queue.try_push(make_pending(6)));
  EXPECT_EQ(queue.accepted(), 4u);
}

TEST(RequestQueue, ConfigClampsDegenerateValues) {
  // high_water above capacity clamps to capacity; zero capacity clamps to 1.
  RequestQueue queue({.capacity = 0, .high_water = 100});
  EXPECT_TRUE(queue.try_push(make_pending(1)));
  EXPECT_FALSE(queue.try_push(make_pending(2)));
  EXPECT_EQ(queue.rejected(), 1u);
}

TEST(RequestQueue, CountersExactUnderConcurrentSubmitters) {
  RequestQueue queue({.capacity = 4096, .high_water = 4096});
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 500;
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&queue, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        (void)queue.try_push(
            make_pending(static_cast<std::uint64_t>(t) * kPerThread + i));
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  EXPECT_EQ(queue.accepted() + queue.rejected(), kThreads * kPerThread);
  EXPECT_EQ(queue.drain(0).size(), queue.accepted());
}

}  // namespace
}  // namespace amperebleed::serve
