#include "amperebleed/dpu/dpu.hpp"

#include <gtest/gtest.h>

#include "amperebleed/dnn/zoo.hpp"

namespace amperebleed::dpu {
namespace {

dnn::Model tiny_model() {
  dnn::ModelBuilder b("tiny", dnn::Family::ResNet, {32, 32, 3});
  b.conv(16, 3, 1).pool(2, 2).conv(32, 3, 1).global_pool().fc(10);
  return std::move(b).build();
}

TEST(DpuAccelerator, Validation) {
  DpuConfig bad;
  bad.clock_mhz = 0.0;
  EXPECT_THROW(DpuAccelerator{bad}, std::invalid_argument);
  DpuConfig no_bw;
  no_bw.dram_bandwidth_bytes_per_s = 0.0;
  EXPECT_THROW(DpuAccelerator{no_bw}, std::invalid_argument);
}

TEST(DpuAccelerator, DescriptorIsEncryptedCommercialIp) {
  DpuAccelerator dpu;
  EXPECT_TRUE(dpu.descriptor().encrypted);
  EXPECT_GT(dpu.descriptor().usage.dsp_slices, 0u);
}

TEST(LayerTiming, DurationCoversComputeAndOverhead) {
  DpuAccelerator dpu;
  const auto conv = dnn::make_conv("c", {56, 56, 128}, 128, 3, 1);
  const auto t = dpu.layer_timing(conv);
  EXPECT_GT(t.duration, dpu.config().layer_overhead);
  EXPECT_GT(t.fpga_current_amps, 0.0);
  EXPECT_GT(t.dram_current_amps, 0.0);
  EXPECT_GT(t.mac_utilization, 0.0);
  EXPECT_LE(t.mac_utilization, 1.0);
}

TEST(LayerTiming, MemoryBoundLayerHasLowUtilization) {
  DpuAccelerator dpu;
  // Big FC layer: huge weight traffic, relatively few MACs per byte.
  const auto fc = dnn::make_fc("fc", {1, 1, 25088}, 4096);
  const auto t = dpu.layer_timing(fc);
  const double memory_s =
      static_cast<double>(fc.dram_bytes()) /
      dpu.config().dram_bandwidth_bytes_per_s;
  EXPECT_GE(t.duration.seconds(), memory_s);
  EXPECT_LT(t.mac_utilization, 0.3);
}

TEST(LayerTiming, DepthwiseLessEfficientThanConv) {
  DpuAccelerator dpu;
  const auto conv = dnn::make_conv("c", {56, 56, 64}, 64, 3, 1);
  const auto dw = dnn::make_depthwise("d", {56, 56, 64}, 3, 1);
  // Same output plane; depthwise does 1/64 the MACs but takes more than
  // 1/64 of the compute-bound time due to its efficiency penalty.
  const double conv_per_mac =
      dpu.layer_timing(conv).duration.seconds() /
      static_cast<double>(conv.macs());
  const double dw_per_mac = dpu.layer_timing(dw).duration.seconds() /
                            static_cast<double>(dw.macs());
  EXPECT_GT(dw_per_mac, conv_per_mac);
}

TEST(DpuAccelerator, InferenceLatencySumsLayers) {
  DpuAccelerator dpu;
  const auto model = tiny_model();
  sim::TimeNs total{0};
  for (const auto& l : model.layers) total += dpu.layer_timing(l).duration;
  EXPECT_EQ(dpu.inference_latency(model), total);
  EXPECT_GT(dpu.inference_period(model), dpu.inference_latency(model));
}

TEST(DpuAccelerator, RunCountsInferences) {
  DpuAccelerator dpu;
  const auto model = tiny_model();
  const sim::TimeNs window = sim::seconds(1);
  const auto result = dpu.run(model, sim::TimeNs{0}, window, 1);
  EXPECT_GT(result.inference_count, 0u);
  // Period jitter is a few percent; count should be near window/period.
  const double expected = window.seconds() /
                          dpu.inference_period(model).seconds();
  EXPECT_NEAR(static_cast<double>(result.inference_count), expected,
              0.2 * expected + 2.0);
}

TEST(DpuAccelerator, RunLoadsAllFourRails) {
  DpuAccelerator dpu;
  const auto model = tiny_model();
  const auto result = dpu.run(model, sim::TimeNs{0}, sim::milliseconds(500), 2);
  for (power::Rail rail : power::kAllRails) {
    const auto& sig = result.activity.on(rail);
    EXPECT_GT(sig.max_over(sim::TimeNs{0}, sim::milliseconds(500)),
              sig.min_over(sim::TimeNs{0}, sim::milliseconds(500)))
        << power::rail_name(rail) << " should show activity";
  }
}

TEST(DpuAccelerator, FpgaRailIdlesBetweenInferences) {
  DpuAccelerator dpu;
  const auto model = tiny_model();
  const auto result = dpu.run(model, sim::TimeNs{0}, sim::milliseconds(200), 3);
  const auto& fpga = result.activity.on(power::Rail::FpgaLogic);
  // During CPU preprocessing the fabric sits at idle current.
  EXPECT_DOUBLE_EQ(fpga.value_at(sim::TimeNs{0}),
                   dpu.config().fpga_idle_current_amps);
}

TEST(DpuAccelerator, DeterministicSchedulesPerSeed) {
  DpuAccelerator dpu;
  const auto model = tiny_model();
  const auto a = dpu.run(model, sim::TimeNs{0}, sim::milliseconds(300), 7);
  const auto b = dpu.run(model, sim::TimeNs{0}, sim::milliseconds(300), 7);
  const auto c = dpu.run(model, sim::TimeNs{0}, sim::milliseconds(300), 8);
  EXPECT_EQ(a.inference_count, b.inference_count);
  EXPECT_EQ(a.activity.on(power::Rail::FpdCpu).segment_count(),
            b.activity.on(power::Rail::FpdCpu).segment_count());
  // Different seed -> different jitter -> different boundaries.
  const auto& fa = a.activity.on(power::Rail::FpdCpu).segments();
  const auto& fc = c.activity.on(power::Rail::FpdCpu).segments();
  EXPECT_TRUE(fa.size() != fc.size() ||
              !std::equal(fa.begin(), fa.end(), fc.begin(),
                          [](const auto& x, const auto& y) {
                            return x.start == y.start && x.value == y.value;
                          }));
}

TEST(DpuAccelerator, DifferentModelsDifferentSchedules) {
  DpuAccelerator dpu;
  const auto mobilenet = dnn::build_model("MobileNet-V1");
  const auto vgg = dnn::build_model("VGG-19");
  EXPECT_GT(dpu.inference_latency(vgg).ns,
            2 * dpu.inference_latency(mobilenet).ns);
}

class DpuZooSweep : public ::testing::TestWithParam<int> {};

TEST_P(DpuZooSweep, EveryZooModelHasSaneTimingAndSchedule) {
  const auto zoo = dnn::build_zoo();
  const auto& model = zoo[static_cast<std::size_t>(GetParam())];
  DpuAccelerator dpu;

  // Latency plausible for an edge accelerator: 1 ms .. 1 s per inference.
  const sim::TimeNs latency = dpu.inference_latency(model);
  EXPECT_GT(latency, sim::milliseconds(1)) << model.name;
  EXPECT_LT(latency, sim::seconds(1)) << model.name;
  EXPECT_GT(dpu.inference_period(model), latency) << model.name;

  // A short run builds a consistent, loaded schedule.
  const auto run = dpu.run(model, sim::TimeNs{0}, sim::milliseconds(300), 5);
  EXPECT_GT(run.inference_count, 0u) << model.name;
  const auto& fpga = run.activity.on(power::Rail::FpgaLogic);
  EXPECT_GT(fpga.max_over(sim::TimeNs{0}, sim::milliseconds(300)),
            dpu.config().fpga_idle_current_amps)
      << model.name;
  // Peak fabric draw stays below the full-load ceiling.
  EXPECT_LE(fpga.max_over(sim::TimeNs{0}, sim::milliseconds(300)),
            dpu.config().fpga_idle_current_amps +
                dpu.config().fpga_full_load_current_amps + 1e-9)
      << model.name;
}

INSTANTIATE_TEST_SUITE_P(AllZooModels, DpuZooSweep, ::testing::Range(0, 39));

TEST(DpuAccelerator, RunValidation) {
  DpuAccelerator dpu;
  const auto model = tiny_model();
  EXPECT_THROW(dpu.run(model, sim::seconds(1), sim::TimeNs{0}, 1),
               std::invalid_argument);
  dnn::Model empty;
  EXPECT_THROW(dpu.run(empty, sim::TimeNs{0}, sim::seconds(1), 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace amperebleed::dpu
