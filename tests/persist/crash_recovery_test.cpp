// Crash-recovery harness (DESIGN.md §15): kill the service at EVERY storage
// kill-point, recover from the directory it left behind, and assert the
// recovered service's classify behaviour is BIT-identical to an
// uninterrupted run — at thread-pool sizes 1, 4 and 8. The schedule varies
// with AMPEREBLEED_FAULT_SEED, so the CI matrix sweeps three different
// workloads through every crash point.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "amperebleed/faults/faults.hpp"
#include "amperebleed/persist/state.hpp"
#include "amperebleed/serve/service.hpp"
#include "amperebleed/util/fs.hpp"
#include "amperebleed/util/rng.hpp"
#include "amperebleed/util/thread_pool.hpp"

namespace amperebleed::serve {
namespace {

core::Trace make_trace(int cls, std::uint64_t seed, std::size_t len = 24) {
  util::Rng rng(seed);
  core::Trace t({}, sim::TimeNs{0}, sim::milliseconds(35));
  for (std::size_t i = 0; i < len; ++i) {
    t.push(100.0 * cls + rng.gaussian(0.0, 2.0));
  }
  return t;
}

Request enroll_request(const std::string& tenant, int cls,
                       std::uint64_t seed) {
  Request r;
  r.kind = RequestKind::Enroll;
  r.tenant = tenant;
  r.label = "net-" + std::to_string(cls);
  r.trace = make_trace(cls, seed);
  return r;
}

Request control_request(RequestKind kind, const std::string& tenant) {
  Request r;
  r.kind = kind;
  r.tenant = tenant;
  return r;
}

Request classify_request(const std::string& tenant, int cls,
                         std::uint64_t seed) {
  Request r;
  r.kind = RequestKind::Classify;
  r.tenant = tenant;
  r.trace = make_trace(cls, seed);
  return r;
}

/// The deterministic workload: two tenants through full lifecycles, one
/// short-lived retiree, plus control requests that FAIL (an enroll without
/// a label, a train on a retired tenant) — those are journalled too, and
/// replay must reproduce their side effects (the namespace the invalid
/// enroll opened) exactly.
std::vector<Request> make_script(std::uint64_t seed) {
  std::vector<Request> script;
  for (int cls = 0; cls < 2; ++cls) {
    for (std::uint64_t rep = 0; rep < 2; ++rep) {
      script.push_back(enroll_request("alpha", cls, seed + 10 * cls + rep));
    }
  }
  script.push_back(control_request(RequestKind::Train, "alpha"));
  script.push_back(classify_request("alpha", 0, seed + 100));
  script.push_back(classify_request("alpha", 1, seed + 101));
  Request unlabeled;  // journalled, then fails with InvalidRequest —
  unlabeled.kind = RequestKind::Enroll;  // but still opens the namespace
  unlabeled.tenant = "limbo";
  unlabeled.trace = make_trace(0, seed + 200);
  script.push_back(unlabeled);
  for (int cls = 0; cls < 2; ++cls) {
    for (std::uint64_t rep = 0; rep < 2; ++rep) {
      script.push_back(enroll_request("beta", cls, seed + 20 * cls + rep + 1));
    }
  }
  script.push_back(control_request(RequestKind::Train, "beta"));
  script.push_back(classify_request("beta", 1, seed + 102));
  script.push_back(enroll_request("gamma", 0, seed + 300));
  script.push_back(control_request(RequestKind::Retire, "gamma"));
  script.push_back(control_request(RequestKind::Train, "gamma"));  // fails
  return script;
}

ServiceConfig durable_config(const std::string& dir,
                             std::uint64_t snapshot_every = 5) {
  ServiceConfig config;
  config.fingerprinter.forest.n_trees = 8;
  config.durability.dir = dir;
  config.durability.snapshot_every = snapshot_every;
  return config;
}

void run_script(ClassificationService& service,
                const std::vector<Request>& script) {
  for (const Request& request : script) {
    ASSERT_TRUE(service.submit(request).accepted);
    (void)service.drain();
  }
}

/// Deterministic fingerprint of all recovery-relevant state: tenant
/// lifecycle + enrollment tallies + full classify verdicts (every ranking
/// probability at %.17g, so any bit difference shows). Classified tallies
/// are deliberately excluded — classifies are not journalled.
std::string probe(const ClassificationService& service, std::uint64_t seed) {
  std::string out;
  char buf[64];
  for (const std::string& name : service.tenant_names()) {
    const TenantSession* tenant = service.tenant(name);
    out += name;
    out += '|';
    out += state_name(tenant->state());
    std::snprintf(buf, sizeof(buf), "|e=%llu|c=%zu\n",
                  static_cast<unsigned long long>(tenant->enrolled()),
                  tenant->fingerprinter().class_names().size());
    out += buf;
    if (tenant->state() != TenantSession::State::Serving) continue;
    for (int cls = 0; cls < 2; ++cls) {
      const auto verdict =
          tenant->fingerprinter().classify(make_trace(cls, seed + 900 + cls));
      out += "  " + verdict.model_name + (verdict.known ? "+" : "-");
      for (const auto& [label, proba] : verdict.ranking) {
        std::snprintf(buf, sizeof(buf), " %s=%.17g", label.c_str(), proba);
        out += buf;
      }
      out += '\n';
    }
  }
  return out;
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "crash_recovery_" + tag;
  if (util::path_exists(dir)) {
    for (const std::string& name : util::list_dir(dir)) {
      util::remove_file(dir + "/" + name);
    }
  }
  return dir;
}

/// Resume after recovery: re-submit only the control requests the journal
/// had not made durable (ordinal > recovered last_seq; control ordinals and
/// journal seqs coincide because every control request is journalled).
/// Classifies are skipped — they never change durable state.
void resume_script(ClassificationService& service,
                   const std::vector<Request>& script) {
  const std::uint64_t last = service.storage().last_seq;
  std::uint64_t ordinal = 0;
  for (const Request& request : script) {
    if (request.kind == RequestKind::Classify) continue;
    ++ordinal;
    if (ordinal <= last) continue;
    ASSERT_TRUE(service.submit(request).accepted);
    (void)service.drain();
  }
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { faults::storage_points_reset(); }
  void TearDown() override {
    faults::storage_points_reset();
    util::ThreadPool::set_global_threads(0);
  }
};

// The tentpole assertion: for every kill-point k in a clean run, a run
// killed at k and then recovered ends bit-identical to the clean run.
TEST_F(CrashRecoveryTest, KillPointSweepIsBitIdenticalAtEveryPoolSize) {
  const std::uint64_t seed = faults::FaultPlan::from_env().seed;
  const std::vector<Request> script = make_script(seed);

  std::string expected_across_pools;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    util::ThreadPool::set_global_threads(threads);

    // Uninterrupted durable run: the oracle and the kill-point census.
    const std::string clean_dir =
        fresh_dir("clean_t" + std::to_string(threads));
    faults::storage_points_reset();
    std::uint64_t crossings = 0;
    std::string expected;
    {
      ClassificationService service(durable_config(clean_dir));
      run_script(service, script);
      crossings = faults::storage_point_crossings();
      expected = probe(service, seed);
    }
    ASSERT_GT(crossings, 0u);
    ASSERT_FALSE(expected.empty());
    // The oracle itself is pool-size invariant.
    if (expected_across_pools.empty()) {
      expected_across_pools = expected;
    } else {
      ASSERT_EQ(expected, expected_across_pools)
          << "clean run diverged at " << threads << " threads";
    }

    for (std::uint64_t k = 1; k <= crossings; ++k) {
      const std::string dir = fresh_dir("t" + std::to_string(threads) + "_k" +
                                        std::to_string(k));
      faults::storage_points_reset();
      faults::storage_points_arm_crash(k);
      bool crashed = false;
      {
        auto service =
            std::make_unique<ClassificationService>(durable_config(dir));
        try {
          for (const Request& request : script) {
            if (!service->submit(request).accepted) break;
            (void)service->drain();
          }
        } catch (const faults::SimulatedCrash&) {
          crashed = true;
        }
        // Process death: the service object goes away with whatever torn
        // state the crash left on disk.
      }
      faults::storage_points_reset();
      ASSERT_TRUE(crashed) << "kill-point " << k << " never fired";

      ClassificationService recovered(durable_config(dir));
      resume_script(recovered, script);
      EXPECT_EQ(probe(recovered, seed), expected)
          << "recovery diverged after crash at kill-point " << k << " ("
          << threads << " threads)";
    }
  }
}

TEST_F(CrashRecoveryTest, UninterruptedRestartRecoversEverything) {
  const std::uint64_t seed = faults::FaultPlan::from_env().seed;
  const std::vector<Request> script = make_script(seed);
  const std::string dir = fresh_dir("restart");
  std::string expected;
  {
    ClassificationService service(durable_config(dir));
    run_script(service, script);
    expected = probe(service, seed);
  }
  ClassificationService recovered(durable_config(dir));
  EXPECT_TRUE(recovered.storage().recovered);
  EXPECT_EQ(recovered.tenant_names().size(), 4u);  // alpha beta limbo gamma
  EXPECT_EQ(probe(recovered, seed), expected);
  // No resume needed: every control op was durable before shutdown.
  EXPECT_EQ(recovered.storage().last_seq, 14u);
}

TEST_F(CrashRecoveryTest, RecoveryAccountsForEveryJournalRecord) {
  const std::uint64_t seed = faults::FaultPlan::from_env().seed;
  const std::vector<Request> script = make_script(seed);
  const std::string dir = fresh_dir("accounting");
  std::string expected;
  {
    // snapshot_every beyond the script: every record stays in the journal.
    ClassificationService service(durable_config(dir, 1000));
    run_script(service, script);
    expected = probe(service, seed);
  }
  // A torn tail appears (half-written record at power cut).
  {
    std::string image = util::read_file(dir + "/journal.bin");
    image += "torn half-record garbage";
    util::atomic_write_file(dir + "/journal.bin", image);
  }
  ClassificationService recovered(durable_config(dir, 1000));
  const StorageStats storage = recovered.storage();
  // 14 control requests in the script, all still in the journal, plus the
  // torn tail: every record is accounted for.
  EXPECT_EQ(storage.recovered_records, 14u);
  EXPECT_EQ(storage.skipped_records, 0u);
  EXPECT_EQ(storage.discarded_records, 1u);
  EXPECT_EQ(storage.snapshot_seq, 0u);
  EXPECT_EQ(probe(recovered, seed), expected);
}

TEST_F(CrashRecoveryTest, CorruptNewestSnapshotFallsBackAndDiscards) {
  const std::uint64_t seed = faults::FaultPlan::from_env().seed;
  const std::vector<Request> script = make_script(seed);
  const std::string dir = fresh_dir("badsnap");
  std::string expected;
  {
    ClassificationService service(durable_config(dir, 1000));
    run_script(service, script);
    ASSERT_TRUE(service.snapshot_now());
    expected = probe(service, seed);
  }
  // Flip a byte inside the snapshot: recovery must discard it and fall
  // back to the journal (still holding all records — snapshot_now reset it,
  // so here the fallback is "no snapshot, no tail" for the discarded one).
  // To keep the journal authoritative, corrupt the snapshot AND restore the
  // journal image from a pre-snapshot copy.
  const auto names = util::list_dir(dir);
  std::string snap_name;
  for (const std::string& name : names) {
    if (name.rfind("snapshot-", 0) == 0) snap_name = name;
  }
  ASSERT_FALSE(snap_name.empty());
  std::string snap = util::read_file(dir + "/" + snap_name);
  snap[snap.size() / 2] = static_cast<char>(snap[snap.size() / 2] ^ 0x01);
  util::atomic_write_file(dir + "/" + snap_name, snap);

  ClassificationService recovered(durable_config(dir, 1000));
  const StorageStats storage = recovered.storage();
  EXPECT_EQ(storage.snapshots_discarded, 1u);
  EXPECT_FALSE(storage.recovered);  // journal was reset by the snapshot
  EXPECT_TRUE(recovered.tenant_names().empty());
}

TEST_F(CrashRecoveryTest, PersistentJournalFailureDegradesToReadOnly) {
  const std::uint64_t seed = faults::FaultPlan::from_env().seed;
  const std::vector<Request> script = make_script(seed);
  const std::string dir = fresh_dir("degraded");
  auto service =
      std::make_unique<ClassificationService>(durable_config(dir, 1000));
  run_script(*service, script);
  const std::string before = probe(*service, seed);

  // Every journal write fails from here on (dead disk).
  faults::storage_points_arm_io_failure(1, 1'000'000);
  for (int attempt = 0; attempt < 3; ++attempt) {
    ASSERT_TRUE(
        service->submit(enroll_request("delta", 0, seed + 400)).accepted);
    const auto responses = service->drain();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].status, ServeStatus::StorageUnavailable);
  }
  EXPECT_TRUE(service->degraded());
  EXPECT_EQ(service->storage().journal_failures, 3u);
  // Degraded: control requests short-circuit (no journal crossing) ...
  ASSERT_TRUE(
      service->submit(control_request(RequestKind::Train, "delta")).accepted);
  EXPECT_EQ(service->drain()[0].status, ServeStatus::StorageUnavailable);
  // ... but classify keeps serving, bit-identically.
  ASSERT_TRUE(
      service->submit(classify_request("alpha", 0, seed + 500)).accepted);
  EXPECT_EQ(service->drain()[0].status, ServeStatus::Ok);
  EXPECT_EQ(probe(*service, seed), before);
  // The rejected enrolls were never applied: no "delta" namespace.
  EXPECT_EQ(service->tenant("delta"), nullptr);
  const auto stats = service->stats();
  EXPECT_EQ(stats.by_status[static_cast<std::size_t>(
                ServeStatus::StorageUnavailable)],
            4u);

  // Restart heals: recovery reloads the durable state from before the
  // failures (which were never applied, so nothing is lost).
  faults::storage_points_reset();
  service.reset();
  ClassificationService recovered(durable_config(dir, 1000));
  EXPECT_FALSE(recovered.degraded());
  EXPECT_EQ(probe(recovered, seed), before);
}

// The review-critical append-failure shape: the frame is FULLY written when
// the fsync fails, the op is answered storage-unavailable and never applied
// — the writer must truncate the orphan frame back out, or the next acked
// append lands past it and the recovery prefix scan (duplicate seq)
// discards the acked record while replaying the unapplied orphan.
TEST_F(CrashRecoveryTest, FailedAppendAfterFullWriteLeavesNoOrphan) {
  const std::uint64_t seed = faults::FaultPlan::from_env().seed;
  const std::vector<Request> script = make_script(seed);
  const std::string dir = fresh_dir("rollback");
  auto service =
      std::make_unique<ClassificationService>(durable_config(dir, 1000));
  run_script(*service, script);

  // Fail the next append at its pre-fsync decision (crossing 4 of 5).
  faults::storage_points_reset();
  faults::storage_points_arm_io_failure(4, 1);
  ASSERT_TRUE(
      service->submit(enroll_request("delta", 0, seed + 400)).accepted);
  EXPECT_EQ(service->drain()[0].status, ServeStatus::StorageUnavailable);
  faults::storage_points_reset();
  EXPECT_EQ(service->tenant("delta"), nullptr);

  // The retried enroll is acked and applied ...
  ASSERT_TRUE(
      service->submit(enroll_request("delta", 0, seed + 400)).accepted);
  EXPECT_EQ(service->drain()[0].status, ServeStatus::Ok);
  const std::string before = probe(*service, seed);

  // ... and survives a restart with nothing discarded.
  service.reset();
  ClassificationService recovered(durable_config(dir, 1000));
  EXPECT_EQ(recovered.storage().discarded_records, 0u);
  ASSERT_NE(recovered.tenant("delta"), nullptr);
  EXPECT_EQ(recovered.tenant("delta")->enrolled(), 1u);
  EXPECT_EQ(probe(recovered, seed), before);
}

// A snapshot tenant that fails semantic validation on restore must take its
// journal-tail records with it: replaying them (e.g. an Enroll) would
// recreate the namespace empty, silently diverging past the one discarded
// tenant. The dropped names and record count are surfaced, not just a tally.
TEST_F(CrashRecoveryTest, DiscardedSnapshotTenantIsNotRecreatedByReplay) {
  const std::uint64_t seed = faults::FaultPlan::from_env().seed;
  const std::vector<Request> script = make_script(seed);
  const std::string dir = fresh_dir("discarded");
  {
    // snapshot_every=12: the snapshot lands right after gamma's enroll
    // (seq 12), leaving gamma's Retire and failing Train in the tail.
    ClassificationService service(durable_config(dir, 12));
    run_script(service, script);
  }
  // Doctor the snapshot so gamma decodes fine (valid CRCs) but fails
  // OnlineFingerprinter::restore's semantic validation.
  std::string snap_name;
  for (const std::string& name : util::list_dir(dir)) {
    if (name.rfind("snapshot-", 0) == 0) snap_name = name;
  }
  ASSERT_FALSE(snap_name.empty());
  persist::ServiceSnapshot snap = persist::decode_snapshot(
      util::read_file(dir + "/" + snap_name), snap_name);
  bool doctored = false;
  for (persist::TenantState& t : snap.tenants) {
    if (t.name != "gamma") continue;
    // Leaves the enrollment labels pointing outside class_names — the one
    // inconsistency the codec's structural checks cannot see (labels and
    // class names live in different sections) but restore rejects.
    t.class_names.clear();
    doctored = true;
  }
  ASSERT_TRUE(doctored);
  util::atomic_write_file(dir + "/" + snap_name,
                          persist::encode_snapshot(snap));

  ClassificationService recovered(durable_config(dir, 12));
  const StorageStats storage = recovered.storage();
  EXPECT_EQ(storage.discarded_tenants, std::vector<std::string>{"gamma"});
  EXPECT_EQ(storage.replay_dropped_records, 2u);  // Retire + failing Train
  EXPECT_EQ(recovered.tenant("gamma"), nullptr);
  // The other tenants recover untouched.
  EXPECT_NE(recovered.tenant("alpha"), nullptr);
  EXPECT_NE(recovered.tenant("beta"), nullptr);
  EXPECT_NE(recovered.tenant("limbo"), nullptr);
}

// A garbage file whose digit run would wrap u64 must not be treated as a
// snapshot at all — before the overflow guard it could sort as "newest" and
// shadow the genuine snapshot.
TEST_F(CrashRecoveryTest, OverlongSnapshotNameCannotShadowTheRealOne) {
  const std::uint64_t seed = faults::FaultPlan::from_env().seed;
  const std::vector<Request> script = make_script(seed);
  const std::string dir = fresh_dir("overflow");
  std::string expected;
  {
    ClassificationService service(durable_config(dir, 1000));
    run_script(service, script);
    ASSERT_TRUE(service.snapshot_now());
    expected = probe(service, seed);
  }
  util::atomic_write_file(dir + "/snapshot-99999999999999999999999.bin",
                          "not a snapshot");
  ClassificationService recovered(durable_config(dir, 1000));
  EXPECT_EQ(recovered.storage().snapshots_discarded, 0u);
  EXPECT_EQ(probe(recovered, seed), expected);
}

TEST_F(CrashRecoveryTest, SnapshotFailureLeavesJournalAuthoritative) {
  const std::uint64_t seed = faults::FaultPlan::from_env().seed;
  const std::vector<Request> script = make_script(seed);
  const std::string dir = fresh_dir("snapfail");
  std::string expected;
  {
    ClassificationService service(durable_config(dir, 1000));
    run_script(service, script);
    expected = probe(service, seed);
    // The snapshot write dies, but the journal already has every record.
    faults::storage_points_arm_io_failure(1, 1);
    EXPECT_FALSE(service.snapshot_now());
    EXPECT_EQ(service.storage().snapshot_failures, 1u);
    faults::storage_points_reset();
  }
  ClassificationService recovered(durable_config(dir, 1000));
  EXPECT_EQ(recovered.storage().recovered_records, 14u);
  EXPECT_EQ(probe(recovered, seed), expected);
}

}  // namespace
}  // namespace amperebleed::serve
