// Corruption-sweep property tests (DESIGN.md §15): EVERY malformed byte
// image must surface as a typed DecodeError (decoders) or clean discard
// accounting (journal scan) — never UB, never a crash. CI runs this suite
// under ASan/UBSan, which is what turns "no exception escaped" into "no
// out-of-bounds read happened either".

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "amperebleed/ml/dataset.hpp"
#include "amperebleed/ml/random_forest.hpp"
#include "amperebleed/persist/journal.hpp"
#include "amperebleed/persist/state.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::persist {
namespace {

ml::Dataset small_dataset() {
  util::Rng rng(3);
  ml::Dataset data(6);
  for (std::size_t r = 0; r < 12; ++r) {
    const int cls = static_cast<int>(r % 2);
    std::vector<double> row(6);
    for (double& v : row) v = 50.0 * cls + rng.gaussian(0.0, 2.0);
    data.add(row, cls);
  }
  return data;
}

std::string small_forest_file() {
  ml::ForestConfig config;
  config.n_trees = 4;
  ml::RandomForest forest(config);
  forest.fit(small_dataset());
  return encode_forest_file(forest.arena());
}

std::string small_snapshot_file() {
  ServiceSnapshot snap;
  snap.last_seq = 9;
  TenantState tenant;
  tenant.name = "alpha";
  tenant.state = 0;
  tenant.enrolled = 12;
  tenant.feature_count = 6;
  tenant.class_names = {"a", "b"};
  tenant.data = small_dataset();
  snap.tenants.push_back(std::move(tenant));
  return encode_snapshot(snap);
}

// Truncate at EVERY byte boundary: each prefix must decode-fail cleanly.
template <typename DecodeFn>
void truncation_sweep(const std::string& bytes, DecodeFn decode) {
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)decode(bytes.substr(0, len)), DecodeError)
        << "truncation at byte " << len << " must be a DecodeError";
  }
}

// Flip ONE bit in every byte: CRC32 detects all single-bit flips in
// payloads, framing checks catch the rest — deterministically, so assert
// every position, not a sample.
template <typename DecodeFn>
void bitflip_sweep(const std::string& bytes, DecodeFn decode) {
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1u << (pos % 8)));
    EXPECT_THROW((void)decode(corrupt), DecodeError)
        << "bit flip at byte " << pos << " must be a DecodeError";
  }
}

TEST(CorruptionSweep, ForestFileTruncatedAtEveryByte) {
  truncation_sweep(small_forest_file(), [](std::string_view bytes) {
    return decode_forest_file(bytes, "forest.bin");
  });
}

TEST(CorruptionSweep, ForestFileFlippedAtEveryByte) {
  bitflip_sweep(small_forest_file(), [](std::string_view bytes) {
    return decode_forest_file(bytes, "forest.bin");
  });
}

TEST(CorruptionSweep, SnapshotTruncatedAtEveryByte) {
  truncation_sweep(small_snapshot_file(), [](std::string_view bytes) {
    return decode_snapshot(bytes, "snapshot.bin");
  });
}

TEST(CorruptionSweep, SnapshotFlippedAtEveryByte) {
  bitflip_sweep(small_snapshot_file(), [](std::string_view bytes) {
    return decode_snapshot(bytes, "snapshot.bin");
  });
}

TEST(CorruptionSweep, DatasetFileSweeps) {
  const std::string bytes = encode_dataset_file(small_dataset());
  truncation_sweep(bytes, [](std::string_view b) {
    return decode_dataset_file(b, "dataset.bin");
  });
  bitflip_sweep(bytes, [](std::string_view b) {
    return decode_dataset_file(b, "dataset.bin");
  });
}

// Reassemble a two-section file with its sections swapped: the strict
// section-order contract turns reordering into a typed error.
TEST(CorruptionSweep, SwappedSectionsAreRejected) {
  const std::string file = small_snapshot_file();
  // Parse the frames: header (8 bytes), then tag u32 | len u64 | crc u32.
  const std::string header(file.substr(0, 8));
  std::size_t pos = 8;
  std::vector<std::string> sections;
  while (pos < file.size()) {
    Decoder frame(std::string_view(file).substr(pos, 16), "frame");
    (void)frame.u32();
    const std::uint64_t len = frame.u64();
    sections.push_back(file.substr(pos, 16 + len));
    pos += 16 + len;
  }
  ASSERT_GE(sections.size(), 2u);
  std::string swapped = header + sections[1] + sections[0];
  for (std::size_t s = 2; s < sections.size(); ++s) swapped += sections[s];
  EXPECT_THROW((void)decode_snapshot(swapped, "snapshot.bin"), DecodeError);
}

// The journal scanner must NEVER throw on corrupted content — it returns
// the valid prefix plus discard accounting instead.
TEST(CorruptionSweep, JournalScanToleratesEveryTruncationAndFlip) {
  std::vector<JournalRecord> records;
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    JournalRecord record;
    record.seq = seq;
    record.op = JournalOp::Train;
    record.tenant = "tenant";
    records.push_back(std::move(record));
  }
  Encoder header;
  header.u32(kFileMagic);
  header.u16(kFormatVersion);
  header.u16(kKindJournal);
  std::string image = header.take();
  for (const JournalRecord& record : records) {
    const std::string payload = encode_record(record);
    Encoder frame;
    frame.u32(static_cast<std::uint32_t>(payload.size()));
    frame.u32(crc32(payload));
    frame.bytes(payload);
    image += frame.take();
  }

  for (std::size_t len = 0; len <= image.size(); ++len) {
    const JournalScan scan = scan_journal(image.substr(0, len), "journal");
    EXPECT_LE(scan.recovered_records, records.size());
    EXPECT_LE(scan.valid_bytes, len);
  }
  for (std::size_t pos = 0; pos < image.size(); ++pos) {
    std::string corrupt = image;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1u << (pos % 8)));
    const JournalScan scan = scan_journal(corrupt, "journal");
    // Every record is accounted for: recovered + discarded covers all
    // three (a flipped frame can split one record into several phantom
    // frames, so discarded may exceed the original count — but recovered
    // records are always genuine, in-sequence ones).
    EXPECT_LE(scan.recovered_records, records.size());
    if (scan.header_ok) {
      EXPECT_GE(scan.recovered_records + scan.discarded_records,
                records.size() > 0 ? 1u : 0u);
    }
  }
}

}  // namespace
}  // namespace amperebleed::persist
