#include "amperebleed/persist/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "amperebleed/faults/faults.hpp"
#include "amperebleed/persist/state.hpp"
#include "amperebleed/util/fs.hpp"

namespace amperebleed::persist {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override { faults::storage_points_reset(); }
  void TearDown() override {
    faults::storage_points_reset();
    std::remove(path_.c_str());
  }
  std::string path_ = ::testing::TempDir() + "journal_test.bin";
};

JournalRecord make_record(std::uint64_t seq, JournalOp op = JournalOp::Enroll,
                          bool with_trace = true) {
  JournalRecord record;
  record.seq = seq;
  record.op = op;
  record.tenant = "tenant-" + std::to_string(seq % 3);
  if (op == JournalOp::Enroll) record.label = "net-1";
  if (with_trace && op == JournalOp::Enroll) {
    core::Trace trace({power::Rail::Ddr, core::Quantity::Power},
                      sim::milliseconds(40), sim::milliseconds(35));
    trace.push(1250.5);
    trace.push_gap();
    trace.push(-0.0);
    record_set_trace(record, trace);
  }
  return record;
}

std::string image_of(const std::vector<JournalRecord>& records) {
  Encoder header;
  header.u32(kFileMagic);
  header.u16(kFormatVersion);
  header.u16(kKindJournal);
  std::string bytes = header.take();
  for (const JournalRecord& record : records) {
    const std::string payload = encode_record(record);
    Encoder frame;
    frame.u32(static_cast<std::uint32_t>(payload.size()));
    frame.u32(crc32(payload));
    frame.bytes(payload);
    bytes += frame.take();
  }
  return bytes;
}

TEST_F(JournalTest, RecordRoundTripsIncludingGappyTrace) {
  const JournalRecord original = make_record(7);
  const JournalRecord loaded =
      decode_record(encode_record(original), "test");
  EXPECT_EQ(loaded.seq, 7u);
  EXPECT_EQ(loaded.op, JournalOp::Enroll);
  EXPECT_EQ(loaded.tenant, original.tenant);
  EXPECT_EQ(loaded.label, "net-1");
  ASSERT_TRUE(loaded.has_trace);

  const core::Trace trace = trace_from_record(loaded);
  EXPECT_EQ(trace.channel().rail, power::Rail::Ddr);
  EXPECT_EQ(trace.channel().quantity, core::Quantity::Power);
  EXPECT_EQ(trace.start(), sim::milliseconds(40));
  EXPECT_EQ(trace.period(), sim::milliseconds(35));
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0], 1250.5);
  EXPECT_FALSE(trace.valid(1));  // the gap survived the round trip
  EXPECT_TRUE(trace.valid(2));
  EXPECT_EQ(trace.gap_count(), 1u);
}

TEST_F(JournalTest, DecodeRejectsBadOpRailQuantity) {
  JournalRecord record = make_record(1);
  std::string payload = encode_record(record);
  // op byte sits right after the u64 seq.
  payload[8] = 9;
  EXPECT_THROW((void)decode_record(payload, "test"), DecodeError);
}

TEST_F(JournalTest, ScanRecoversAllIntactRecords) {
  const auto image =
      image_of({make_record(5), make_record(6, JournalOp::Train, false),
                make_record(7, JournalOp::Retire, false)});
  const JournalScan scan = scan_journal(image, "test");
  EXPECT_TRUE(scan.header_ok);
  EXPECT_EQ(scan.recovered_records, 3u);
  EXPECT_EQ(scan.discarded_records, 0u);
  EXPECT_EQ(scan.valid_bytes, image.size());
  EXPECT_EQ(scan.records[0].seq, 5u);
  EXPECT_EQ(scan.records[2].op, JournalOp::Retire);
}

TEST_F(JournalTest, TornTailIsOneDiscardedRecord) {
  const auto image = image_of({make_record(1), make_record(2)});
  // Chop mid-way through the second record: the classic crash artifact.
  const std::string torn = image.substr(0, image.size() - 5);
  const JournalScan scan = scan_journal(torn, "test");
  EXPECT_EQ(scan.recovered_records, 1u);
  EXPECT_EQ(scan.discarded_records, 1u);
  EXPECT_EQ(scan.records[0].seq, 1u);
  EXPECT_GT(scan.discarded_bytes, 0u);
}

TEST_F(JournalTest, BitFlipEndsPrefixAndCountsOrphans) {
  const auto image =
      image_of({make_record(1), make_record(2), make_record(3)});
  std::string flipped = image;
  // Flip one payload bit inside record 2 (skip header + record 1).
  const std::size_t r1_end =
      scan_journal(image_of({make_record(1)}), "t").valid_bytes;
  flipped[r1_end + 12] = static_cast<char>(flipped[r1_end + 12] ^ 0x40);
  const JournalScan scan = scan_journal(flipped, "test");
  EXPECT_EQ(scan.recovered_records, 1u);
  // Record 2 (corrupt) and record 3 (orphaned past the break) both count.
  EXPECT_EQ(scan.discarded_records, 2u);
  EXPECT_EQ(scan.valid_bytes, r1_end);
}

TEST_F(JournalTest, SequenceGapEndsPrefix) {
  const auto image = image_of({make_record(1), make_record(3)});  // 2 missing
  const JournalScan scan = scan_journal(image, "test");
  EXPECT_EQ(scan.recovered_records, 1u);
  EXPECT_EQ(scan.discarded_records, 1u);
}

TEST_F(JournalTest, GarbageHeaderDiscardsWholeFile) {
  const JournalScan scan = scan_journal("not a journal at all", "test");
  EXPECT_FALSE(scan.header_ok);
  EXPECT_EQ(scan.recovered_records, 0u);
  EXPECT_EQ(scan.valid_bytes, 0u);
}

TEST_F(JournalTest, WriterAppendsAndScanReadsBack) {
  {
    JournalWriter writer(path_, 0);
    writer.append(make_record(1));
    writer.append(make_record(2, JournalOp::Train, false));
  }
  const JournalScan scan = scan_journal(util::read_file(path_), path_);
  EXPECT_EQ(scan.recovered_records, 2u);
  EXPECT_EQ(scan.discarded_records, 0u);
}

TEST_F(JournalTest, WriterTruncatesCorruptTailOnReopen) {
  {
    JournalWriter writer(path_, 0);
    writer.append(make_record(1));
  }
  // Simulate a crash that left garbage after the valid prefix.
  std::string image = util::read_file(path_);
  const std::uint64_t valid = image.size();
  image += "torn-garbage";
  util::atomic_write_file(path_, image);

  const JournalScan scan = scan_journal(util::read_file(path_), path_);
  EXPECT_EQ(scan.recovered_records, 1u);
  EXPECT_EQ(scan.discarded_records, 1u);
  {
    JournalWriter writer(path_, scan.valid_bytes);
    writer.append(make_record(2));
  }
  const JournalScan repaired = scan_journal(util::read_file(path_), path_);
  EXPECT_EQ(repaired.recovered_records, 2u);
  EXPECT_EQ(repaired.discarded_records, 0u);
  EXPECT_GT(repaired.valid_bytes, valid);
}

TEST_F(JournalTest, ResetTruncatesToBareHeader) {
  JournalWriter writer(path_, 0);
  writer.append(make_record(1));
  writer.reset();
  const std::string image = util::read_file(path_);
  EXPECT_EQ(image.size(), kJournalHeaderBytes);
  const JournalScan scan = scan_journal(image, path_);
  EXPECT_TRUE(scan.header_ok);
  EXPECT_EQ(scan.recovered_records, 0u);
}

TEST_F(JournalTest, ArmedCrashLeavesTornRecordThatRecoveryDiscards) {
  JournalWriter writer(path_, 0);
  writer.append(make_record(1));
  // Crash at the "journal.append.partial" crossing (the first crossing is
  // the pre-write io_ok decision): half a frame hits the disk, exactly what
  // a power cut mid-write leaves.
  faults::storage_points_arm_crash(2);
  bool crashed = false;
  try {
    writer.append(make_record(2));
  } catch (const faults::SimulatedCrash& crash) {
    crashed = true;
    EXPECT_EQ(crash.site(), "journal.append.partial");
  }
  ASSERT_TRUE(crashed);
  faults::storage_points_reset();

  const JournalScan scan = scan_journal(util::read_file(path_), path_);
  EXPECT_EQ(scan.recovered_records, 1u);  // record 2 never became durable
  EXPECT_EQ(scan.discarded_records, 1u);
}

TEST_F(JournalTest, ArmedIoFailureSurfacesAsIoErrorBeforeWriting) {
  JournalWriter writer(path_, 0);
  writer.append(make_record(1));
  const std::string before = util::read_file(path_);
  faults::storage_points_arm_io_failure(1, 1);
  EXPECT_THROW(writer.append(make_record(2)), IoError);
  faults::storage_points_reset();
  // The failed append touched nothing: the medium is byte-identical.
  EXPECT_EQ(util::read_file(path_), before);
  // The next append (failure window passed) succeeds.
  writer.append(make_record(2));
  EXPECT_EQ(scan_journal(util::read_file(path_), path_).recovered_records,
            2u);
}

TEST_F(JournalTest, FsyncFailureAfterFullWriteRollsBackTheFrame) {
  JournalWriter writer(path_, 0);
  writer.append(make_record(1));
  const std::string before = util::read_file(path_);
  // Crossings per append: io_ok, partial, written, fsync io_ok, synced.
  // Failing the 4th leaves a fully written frame that fsync never made
  // durable — the writer must truncate it back out before the IoError
  // surfaces, or the next acked append lands past orphan bytes the prefix
  // scan then discards.
  faults::storage_points_arm_io_failure(4, 1);
  EXPECT_THROW(writer.append(make_record(2)), IoError);
  faults::storage_points_reset();
  EXPECT_EQ(util::read_file(path_), before);
  // The retried append lands exactly where the rolled-back one was: the
  // scan sees consecutive seqs and discards nothing.
  writer.append(make_record(2));
  const JournalScan scan = scan_journal(util::read_file(path_), path_);
  EXPECT_EQ(scan.recovered_records, 2u);
  EXPECT_EQ(scan.discarded_records, 0u);
  EXPECT_EQ(scan.records[1].seq, 2u);
}

TEST_F(JournalTest, StoragePointSitesTallyCrossings) {
  JournalWriter writer(path_, 0);
  writer.append(make_record(1));
  const auto sites = faults::storage_point_sites();
  ASSERT_FALSE(sites.empty());
  // Two io_ok decisions (pre-write + pre-fsync) + 3 append phases =
  // 5 crossings for one append.
  EXPECT_EQ(faults::storage_point_crossings(), 5u);
}

}  // namespace
}  // namespace amperebleed::persist
