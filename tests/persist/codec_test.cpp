#include "amperebleed/persist/codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "amperebleed/core/online.hpp"
#include "amperebleed/ml/dataset.hpp"
#include "amperebleed/ml/random_forest.hpp"
#include "amperebleed/persist/state.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::persist {
namespace {

TEST(Crc32, MatchesKnownVector) {
  // The canonical CRC-32/IEEE check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
}

TEST(Crc32, SeedChainsIncrementally) {
  const std::string all = "abcdefgh";
  const std::uint32_t whole = crc32(all);
  // Chaining halves through `seed` must equal one pass over the whole.
  EXPECT_EQ(crc32(all.substr(4), crc32(all.substr(0, 4))), whole);
}

TEST(Codec, ScalarRoundTrip) {
  Encoder enc;
  enc.u8(0xAB);
  enc.u16(0xBEEF);
  enc.u32(0xDEADBEEFu);
  enc.u64(0x0123456789ABCDEFull);
  enc.i32(-12345);
  enc.i64(-9'000'000'000ll);
  enc.f64(-0.0);
  enc.f64(std::numeric_limits<double>::quiet_NaN());
  enc.str("tenant-a");
  Decoder dec(enc.buffer(), "test");
  EXPECT_EQ(dec.u8(), 0xAB);
  EXPECT_EQ(dec.u16(), 0xBEEF);
  EXPECT_EQ(dec.u32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(dec.i32(), -12345);
  EXPECT_EQ(dec.i64(), -9'000'000'000ll);
  const double neg_zero = dec.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // bit pattern, not value, round-trips
  EXPECT_TRUE(std::isnan(dec.f64()));
  EXPECT_EQ(dec.str(), "tenant-a");
  dec.expect_end();
}

TEST(Codec, VectorRoundTrip) {
  const std::vector<double> doubles = {1.5, -2.25, 1e-300};
  const std::vector<std::int32_t> ints = {-1, 0, 7};
  const std::vector<std::uint64_t> u64s = {0, 1ull << 63};
  const std::vector<std::uint8_t> bytes = {0, 1, 255};
  Encoder enc;
  enc.f64_vec(doubles);
  enc.i32_vec(ints);
  enc.u64_vec(u64s);
  enc.u8_vec(bytes);
  Decoder dec(enc.buffer(), "test");
  EXPECT_EQ(dec.f64_vec(), doubles);
  EXPECT_EQ(dec.i32_vec(), ints);
  EXPECT_EQ(dec.u64_vec(), u64s);
  EXPECT_EQ(dec.u8_vec(), bytes);
  dec.expect_end();
}

TEST(Codec, TruncatedReadThrowsWithContextAndOffset) {
  Encoder enc;
  enc.u32(7);
  Decoder dec(enc.buffer(), "forest.bin/BODY");
  (void)dec.u16();
  try {
    (void)dec.u32();  // only 2 bytes left
    FAIL() << "expected DecodeError";
  } catch (const DecodeError& e) {
    EXPECT_NE(std::string(e.what()).find("forest.bin/BODY"),
              std::string::npos);
  }
}

TEST(Codec, ImplausibleVectorLengthIsCaughtBeforeAllocation) {
  Encoder enc;
  enc.u64(1ull << 60);  // claims 2^60 doubles in an 8-byte buffer
  Decoder dec(enc.buffer(), "test");
  EXPECT_THROW((void)dec.f64_vec(), DecodeError);
}

TEST(Codec, TrailingBytesAreCorruption) {
  Encoder enc;
  enc.u8(1);
  enc.u8(2);
  Decoder dec(enc.buffer(), "test");
  (void)dec.u8();
  EXPECT_THROW(dec.expect_end(), DecodeError);
}

TEST(SectionFraming, RoundTripAndStrictOrder) {
  FileWriter writer(section_tag("ABPS"), 1, 2);
  writer.section(section_tag("META"), "meta-bytes");
  writer.section(section_tag("BODY"), "body-bytes");
  const std::string file = writer.take();

  FileReader reader(file, section_tag("ABPS"), 1, 2, "test");
  EXPECT_EQ(reader.section(section_tag("META")), "meta-bytes");
  EXPECT_EQ(reader.section(section_tag("BODY")), "body-bytes");
  reader.expect_end();

  // Asking for sections out of order = reordered file = corruption.
  FileReader swapped(file, section_tag("ABPS"), 1, 2, "test");
  EXPECT_THROW((void)swapped.section(section_tag("BODY")), DecodeError);
}

TEST(SectionFraming, WrongMagicVersionKindAllThrow) {
  FileWriter writer(section_tag("ABPS"), 1, 2);
  writer.section(section_tag("BODY"), "x");
  const std::string file = writer.take();
  EXPECT_THROW(FileReader(file, section_tag("NOPE"), 1, 2, "t"), DecodeError);
  EXPECT_THROW(FileReader(file, section_tag("ABPS"), 9, 2, "t"), DecodeError);
  EXPECT_THROW(FileReader(file, section_tag("ABPS"), 1, 9, "t"), DecodeError);
}

TEST(SectionFraming, PayloadBitFlipFailsCrc) {
  FileWriter writer(section_tag("ABPS"), 1, 2);
  writer.section(section_tag("BODY"), "sensitive payload");
  std::string file = writer.take();
  file[file.size() - 3] = static_cast<char>(file[file.size() - 3] ^ 0x10);
  FileReader reader(file, section_tag("ABPS"), 1, 2, "test");
  EXPECT_THROW((void)reader.section(section_tag("BODY")), DecodeError);
}

// ---------------------------------------------------------------------------
// Typed state codecs.

ml::Dataset make_dataset(std::size_t features = 12, std::size_t rows = 24,
                         int classes = 3, std::uint64_t seed = 7) {
  util::Rng rng(seed);
  ml::Dataset data(features);
  for (std::size_t r = 0; r < rows; ++r) {
    const int cls = static_cast<int>(r % static_cast<std::size_t>(classes));
    std::vector<double> row(features);
    for (std::size_t f = 0; f < features; ++f) {
      row[f] = 100.0 * cls + rng.gaussian(0.0, 3.0);
    }
    data.add(row, cls);
  }
  return data;
}

ml::RandomForest make_forest(const ml::Dataset& data,
                             bool quantize = false) {
  ml::ForestConfig config;
  config.n_trees = 8;
  config.seed = 0x5eed;
  config.quantize_thresholds = quantize;
  ml::RandomForest forest(config);
  forest.fit(data);
  return forest;
}

TEST(StateCodec, DatasetRoundTripIsExact) {
  const ml::Dataset data = make_dataset();
  const ml::Dataset loaded =
      decode_dataset_file(encode_dataset_file(data), "dataset.bin");
  ASSERT_EQ(loaded.size(), data.size());
  ASSERT_EQ(loaded.feature_count(), data.feature_count());
  EXPECT_EQ(loaded.labels(), data.labels());
  for (std::size_t r = 0; r < data.size(); ++r) {
    const auto a = data.row(r), b = loaded.row(r);
    for (std::size_t f = 0; f < data.feature_count(); ++f) {
      EXPECT_EQ(a[f], b[f]);  // bit-exact, not approximately equal
    }
  }
}

// Acceptance criterion: forest save -> load -> predict_proba_many is
// bit-identical to the in-memory arena.
TEST(StateCodec, ForestRoundTripPredictsBitIdentically) {
  const ml::Dataset data = make_dataset();
  const ml::RandomForest forest = make_forest(data);

  const std::string bytes = encode_forest_file(forest.arena());
  const ml::ForestArena arena = decode_forest_file(bytes, "forest.bin");
  const ml::RandomForest restored =
      ml::RandomForest::from_arena(forest.config(), arena);

  EXPECT_TRUE(restored.fitted());
  EXPECT_EQ(restored.tree_count(), forest.tree_count());
  EXPECT_EQ(restored.class_count(), forest.class_count());

  std::vector<std::vector<double>> rows;
  for (std::size_t r = 0; r < data.size(); ++r) {
    rows.emplace_back(data.row(r).begin(), data.row(r).end());
  }
  std::vector<std::span<const double>> spans(rows.begin(), rows.end());
  const auto expected = forest.predict_proba_many(spans);
  const auto actual = restored.predict_proba_many(spans);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t r = 0; r < expected.size(); ++r) {
    ASSERT_EQ(actual[r].size(), expected[r].size());
    for (std::size_t c = 0; c < expected[r].size(); ++c) {
      EXPECT_EQ(actual[r][c], expected[r][c])
          << "proba differs at row " << r << " class " << c;
    }
  }
}

TEST(StateCodec, QuantizedTableIsRebuiltOnRestore) {
  const ml::Dataset data = make_dataset();
  const ml::RandomForest forest = make_forest(data, /*quantize=*/true);
  ASSERT_TRUE(forest.arena().quantized.built());

  // The quantized table never travels; from_arena rebuilds it on demand.
  const ml::ForestArena arena =
      decode_forest_file(encode_forest_file(forest.arena()), "forest.bin");
  EXPECT_FALSE(arena.quantized.built());
  const ml::RandomForest restored =
      ml::RandomForest::from_arena(forest.config(), arena);
  EXPECT_TRUE(restored.arena().quantized.built());

  const auto row = data.row(0);
  EXPECT_EQ(restored.predict_proba(row), forest.predict_proba(row));
}

TEST(StateCodec, ReferenceWalkIsUnavailableOnRestoredForest) {
  const ml::Dataset data = make_dataset();
  const ml::RandomForest forest = make_forest(data);
  const ml::RandomForest restored = ml::RandomForest::from_arena(
      forest.config(),
      decode_forest_file(encode_forest_file(forest.arena()), "forest.bin"));
  EXPECT_THROW((void)restored.predict_proba_reference(data.row(0)),
               std::logic_error);
}

TEST(StateCodec, ProfileRoundTripComparesEqual) {
  const ml::Dataset data = make_dataset();
  const obs::ReferenceProfile profile =
      obs::ReferenceProfile::from_dataset(data, 16);
  const obs::ReferenceProfile loaded =
      decode_profile_file(encode_profile_file(profile), "profile.bin");
  EXPECT_TRUE(loaded == profile);
}

TEST(StateCodec, SnapshotRoundTripPreservesTenants) {
  const ml::Dataset data = make_dataset();
  const ml::RandomForest forest = make_forest(data);

  ServiceSnapshot snap;
  snap.last_seq = 42;
  TenantState enrolling;
  enrolling.name = "alpha";
  enrolling.state = 0;
  enrolling.enrolled = 3;
  enrolling.feature_count = data.feature_count();
  enrolling.class_names = {"net-0", "net-1"};
  enrolling.data = data;
  snap.tenants.push_back(enrolling);
  TenantState serving = enrolling;
  serving.name = "beta";
  serving.state = 1;
  serving.classified = 17;
  serving.trained = true;
  serving.arena = forest.arena();
  serving.has_profile = true;
  serving.profile = obs::ReferenceProfile::from_dataset(data, 16);
  snap.tenants.push_back(serving);

  const ServiceSnapshot loaded =
      decode_snapshot(encode_snapshot(snap), "snapshot.bin");
  EXPECT_EQ(loaded.last_seq, 42u);
  ASSERT_EQ(loaded.tenants.size(), 2u);
  EXPECT_EQ(loaded.tenants[0].name, "alpha");
  EXPECT_FALSE(loaded.tenants[0].trained);
  EXPECT_EQ(loaded.tenants[1].name, "beta");
  EXPECT_EQ(loaded.tenants[1].classified, 17u);
  EXPECT_TRUE(loaded.tenants[1].trained);
  EXPECT_EQ(loaded.tenants[1].arena.roots, forest.arena().roots);
  EXPECT_EQ(loaded.tenants[1].arena.threshold, forest.arena().threshold);
  EXPECT_TRUE(loaded.tenants[1].has_profile);
  EXPECT_TRUE(loaded.tenants[1].profile == serving.profile);
}

TEST(StateCodec, StructurallyInvalidArenaIsRejected) {
  const ml::Dataset data = make_dataset();
  ml::ForestArena arena = make_forest(data).arena();
  // CRC-valid nonsense: point a tree root past the node array. decode must
  // reject it rather than hand back an arena whose walk would be UB.
  arena.roots[0] = static_cast<std::int32_t>(arena.feature.size() + 100);
  EXPECT_THROW(
      (void)decode_forest_file(encode_forest_file(arena), "forest.bin"),
      DecodeError);
}

// Restored fingerprinters classify bit-identically to the originals.
TEST(StateCodec, FingerprinterRestoreClassifiesBitIdentically) {
  core::OnlineFingerprinterConfig config;
  config.forest.n_trees = 8;
  core::OnlineFingerprinter original(config);
  util::Rng rng(11);
  std::vector<core::Trace> probes;
  for (int cls = 0; cls < 3; ++cls) {
    for (int rep = 0; rep < 4; ++rep) {
      core::Trace t({}, sim::TimeNs{0}, sim::milliseconds(35));
      for (std::size_t i = 0; i < 20; ++i) {
        t.push(100.0 * cls + rng.gaussian(0.0, 2.0));
      }
      if (rep == 0) probes.push_back(t);
      original.enroll(t, "net-" + std::to_string(cls));
    }
  }
  original.train();

  core::OnlineFingerprinter::RestoredState state;
  state.feature_count = original.feature_count();
  state.class_names = original.class_names();
  state.data = decode_dataset_file(
      encode_dataset_file(original.enrollment_data()), "d");
  state.trained = true;
  state.arena = decode_forest_file(
      encode_forest_file(original.forest().arena()), "f");
  const core::OnlineFingerprinter restored =
      core::OnlineFingerprinter::restore(config, std::move(state));

  for (const core::Trace& probe : probes) {
    const auto a = original.classify(probe);
    const auto b = restored.classify(probe);
    EXPECT_EQ(a.model_name, b.model_name);
    EXPECT_EQ(a.known, b.known);
    EXPECT_EQ(a.confidence, b.confidence);  // bit-exact
    EXPECT_EQ(a.margin, b.margin);
    ASSERT_EQ(a.ranking.size(), b.ranking.size());
    for (std::size_t i = 0; i < a.ranking.size(); ++i) {
      EXPECT_EQ(a.ranking[i], b.ranking[i]);
    }
  }
}

}  // namespace
}  // namespace amperebleed::persist
