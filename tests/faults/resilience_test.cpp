#include "amperebleed/core/resilience.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "amperebleed/core/sampler.hpp"
#include "amperebleed/faults/faults.hpp"
#include "amperebleed/hwmon/vfs.hpp"
#include "amperebleed/power/activity.hpp"
#include "amperebleed/soc/soc.hpp"

namespace amperebleed::core {
namespace {

// ---------------------------------------------------------------------------
// RetryPolicy backoff math.

TEST(RetryPolicyBackoff, DeterministicAndJitterBounded) {
  const RetryPolicy rp;
  EXPECT_EQ(rp.backoff(0, 1).ns, 0);
  for (std::uint64_t stream : {1ull, 0xfeedull}) {
    for (std::size_t attempt = 1; attempt <= 8; ++attempt) {
      const auto a = rp.backoff(attempt, stream);
      const auto b = rp.backoff(attempt, stream);
      EXPECT_EQ(a.ns, b.ns) << "backoff must be a pure function";
      const double base =
          std::min(static_cast<double>(rp.initial_backoff.ns) *
                       std::pow(rp.multiplier, static_cast<double>(attempt - 1)),
                   static_cast<double>(rp.max_backoff.ns));
      EXPECT_GE(a.ns, static_cast<std::int64_t>(base * (1.0 - rp.jitter)) - 1);
      EXPECT_LE(a.ns, static_cast<std::int64_t>(base * (1.0 + rp.jitter)) + 1);
    }
  }
  // Different streams decorrelate the jitter.
  EXPECT_NE(rp.backoff(1, 1).ns, rp.backoff(1, 2).ns);
}

TEST(RetryPolicyBackoff, NoJitterIsExactClampedExponential) {
  RetryPolicy rp;
  rp.jitter = 0.0;
  EXPECT_EQ(rp.backoff(1, 9).ns, sim::microseconds(200).ns);
  EXPECT_EQ(rp.backoff(2, 9).ns, sim::microseconds(400).ns);
  EXPECT_EQ(rp.backoff(3, 9).ns, sim::microseconds(800).ns);
  EXPECT_EQ(rp.backoff(6, 9).ns, sim::microseconds(6400).ns);
  EXPECT_EQ(rp.backoff(7, 9).ns, rp.max_backoff.ns);   // clamped
  EXPECT_EQ(rp.backoff(20, 9).ns, rp.max_backoff.ns);  // stays clamped
}

TEST(ChannelHealthNames, AllNamed) {
  EXPECT_EQ(channel_health_name(ChannelHealth::Healthy), "healthy");
  EXPECT_EQ(channel_health_name(ChannelHealth::Degraded), "degraded");
  EXPECT_EQ(channel_health_name(ChannelHealth::Quarantined), "quarantined");
  EXPECT_EQ(channel_health_name(ChannelHealth::Probing), "probing");
}

TEST(FallbackChain, TableThreeAccuracyOrderMinusPrimary) {
  const Channel fpga_curr{power::Rail::FpgaLogic, Quantity::Current};
  const Channel fpga_pow{power::Rail::FpgaLogic, Quantity::Power};
  const Channel ddr_curr{power::Rail::Ddr, Quantity::Current};

  const auto from_curr = fallback_chain(fpga_curr);
  ASSERT_EQ(from_curr.size(), 2u);
  EXPECT_EQ(from_curr[0], fpga_pow);
  EXPECT_EQ(from_curr[1], ddr_curr);

  const auto from_ddr = fallback_chain(ddr_curr);
  ASSERT_EQ(from_ddr.size(), 2u);
  EXPECT_EQ(from_ddr[0], fpga_curr);
  EXPECT_EQ(from_ddr[1], fpga_pow);

  // A channel outside the preference list falls back to the full list.
  const auto from_volt =
      fallback_chain({power::Rail::FpgaLogic, Quantity::Voltage});
  EXPECT_EQ(from_volt.size(), 3u);
}

TEST(ResilienceConfig, StrictByDefault) {
  const ResilienceConfig config;
  EXPECT_FALSE(config.enabled);
  EXPECT_FALSE(config.fallback_enabled);
}

// ---------------------------------------------------------------------------
// Sampler under injected faults.

constexpr Channel kFpgaCurrent{power::Rail::FpgaLogic, Quantity::Current};

std::unique_ptr<soc::Soc> make_soc(std::uint64_t seed = 1) {
  auto soc = std::make_unique<soc::Soc>(soc::zcu102_config(seed));
  power::RailActivity load;
  load.on(power::Rail::FpgaLogic).append(sim::microseconds(1), 1.0);
  soc->add_activity(load);
  soc->finalize();
  return soc;
}

ResilienceConfig enabled_config() {
  ResilienceConfig config;
  config.enabled = true;
  return config;
}

TEST(ResilientSampler, RetriesRecoverTransientFaults) {
  auto soc = make_soc();
  faults::FaultInjector injector(faults::FaultPlan::transient_only(3, 0.25));
  injector.attach(soc->hwmon().fs());

  Sampler sampler(*soc);
  sampler.set_resilience(enabled_config());
  SamplerConfig config;
  config.sample_count = 50;
  const Trace t = sampler.collect(kFpgaCurrent, sim::milliseconds(40), config);
  EXPECT_EQ(t.size(), 50u);
  // A 25% transient rate against a 4-attempt budget loses almost nothing.
  EXPECT_LE(t.gap_count(), 3u);
  const auto stats = sampler.stats();
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.fallback_substitutions, 0u);
}

TEST(ResilientSampler, EnabledPolicyIsExactNoOpOnCleanBoard) {
  // Same board seed, no faults: strict and resilient collections must be
  // bit-identical, and the resilience bookkeeping must stay all-zero.
  SamplerConfig config;
  config.sample_count = 40;

  auto strict_soc = make_soc(77);
  Sampler strict(*strict_soc);
  const Trace a = strict.collect(kFpgaCurrent, sim::milliseconds(40), config);

  auto resilient_soc = make_soc(77);
  Sampler resilient(*resilient_soc);
  auto rc = enabled_config();
  rc.fallback_enabled = true;
  resilient.set_resilience(rc);
  const Trace b =
      resilient.collect(kFpgaCurrent, sim::milliseconds(40), config);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "sample " << i;  // bit-identical, not just close
  }
  EXPECT_TRUE(b.fully_valid());
  const auto stats = resilient.stats();
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.gap_samples, 0u);
  EXPECT_EQ(stats.fallback_substitutions, 0u);
  EXPECT_EQ(stats.failed_samples, 0u);
  EXPECT_EQ(resilient.health(kFpgaCurrent), ChannelHealth::Healthy);
}

TEST(ResilientSampler, ChannelGoneCarriesContextInStrictMode) {
  auto soc = make_soc();
  faults::FaultPlan plan;
  plan.rates[faults::FaultKind::Hotplug] = 1.0;
  faults::FaultInjector injector(plan);
  injector.attach(soc->hwmon().fs());

  Sampler sampler(*soc);
  soc->advance_to(sim::milliseconds(40));
  try {
    static_cast<void>(sampler.read_now(kFpgaCurrent));
    FAIL() << "expected ChannelGone";
  } catch (const ChannelGone& e) {
    EXPECT_EQ(e.channel(), kFpgaCurrent);
    EXPECT_NE(e.path().find("curr1_input"), std::string::npos);
    EXPECT_EQ(e.attempts(), 1u);  // strict mode never retries
    EXPECT_NE(std::string(e.what()).find("curr1_input"), std::string::npos);
  }
}

TEST(ResilientSampler, TransientErrorReportsExhaustedAttempts) {
  auto soc = make_soc();
  faults::FaultInjector injector(faults::FaultPlan::transient_only(1, 1.0));
  injector.attach(soc->hwmon().fs());

  Sampler sampler(*soc);
  auto rc = enabled_config();
  rc.retry.max_attempts = 3;
  sampler.set_resilience(rc);
  soc->advance_to(sim::milliseconds(40));
  try {
    static_cast<void>(sampler.read_now(kFpgaCurrent));
    FAIL() << "expected TransientError";
  } catch (const TransientError& e) {
    EXPECT_EQ(e.attempts(), 3u);
  }
  EXPECT_EQ(sampler.stats().retries, 2u);  // two backoffs between 3 attempts
}

TEST(ResilientSampler, GarbageTextSurfacesAsMalformedData) {
  auto soc = make_soc();
  faults::FaultPlan plan;
  plan.rates[faults::FaultKind::GarbageText] = 1.0;
  faults::FaultInjector injector(plan);
  injector.attach(soc->hwmon().fs());

  Sampler sampler(*soc);
  soc->advance_to(sim::milliseconds(40));
  EXPECT_THROW(static_cast<void>(sampler.read_now(kFpgaCurrent)),
               MalformedData);
}

TEST(ResilientSampler, HealthDegradesThenQuarantinesThenProbes) {
  auto soc = make_soc();
  // Fail every unprivileged read of the FPGA current attribute, forever.
  soc->hwmon().fs().set_read_fault_hook(
      [](std::string_view path, bool, hwmon::VfsResult clean) {
        if (path.find("curr1_input") != std::string_view::npos) {
          return hwmon::VfsResult{hwmon::VfsStatus::NotFound, {}};
        }
        return clean;
      });

  Sampler sampler(*soc);
  sampler.set_resilience(enabled_config());  // degrade 2 / quarantine 4 / probe 8
  SamplerConfig config;
  config.sample_count = 20;
  const Trace t = sampler.collect(kFpgaCurrent, sim::milliseconds(40), config);

  // Everything is a gap: 4 polled failures, then quarantine skips with two
  // recovery probes (instants 11 and 19) that both fail.
  EXPECT_EQ(t.size(), 20u);
  EXPECT_EQ(t.gap_count(), 20u);
  EXPECT_EQ(sampler.health(kFpgaCurrent), ChannelHealth::Quarantined);
  const auto stats = sampler.stats();
  EXPECT_EQ(stats.failed_samples, 4u);
  EXPECT_EQ(stats.probes, 2u);
  EXPECT_EQ(stats.gap_samples, 20u);
}

TEST(ResilientSampler, RecoveryProbeReopensAHealedChannel) {
  auto soc = make_soc();
  soc::Soc* soc_raw = soc.get();
  // The attribute is dead until t = 200 ms, then heals (driver re-bound).
  soc->hwmon().fs().set_read_fault_hook(
      [soc_raw](std::string_view path, bool, hwmon::VfsResult clean) {
        if (soc_raw->now().ns < sim::milliseconds(200).ns &&
            path.find("curr1_input") != std::string_view::npos) {
          return hwmon::VfsResult{hwmon::VfsStatus::NotFound, {}};
        }
        return clean;
      });

  Sampler sampler(*soc);
  sampler.set_resilience(enabled_config());
  SamplerConfig config;
  config.sample_count = 20;  // samples at 40 + 35*i ms
  const Trace t = sampler.collect(kFpgaCurrent, sim::milliseconds(40), config);

  ASSERT_EQ(t.size(), 20u);
  // Samples 0-3 fail and quarantine the channel; 4-10 are skipped; the
  // probe at instant 11 (t = 425 ms, past the heal) succeeds and re-opens.
  for (std::size_t i = 0; i < 11; ++i) EXPECT_FALSE(t.valid(i)) << i;
  for (std::size_t i = 11; i < 20; ++i) EXPECT_TRUE(t.valid(i)) << i;
  EXPECT_EQ(sampler.health(kFpgaCurrent), ChannelHealth::Healthy);
  EXPECT_EQ(sampler.stats().probes, 1u);
}

TEST(ResilientSampler, FallbackSubstitutesNextBestChannel) {
  auto soc = make_soc();
  soc->hwmon().fs().set_read_fault_hook(
      [](std::string_view path, bool, hwmon::VfsResult clean) {
        if (path.find("curr1_input") != std::string_view::npos) {
          return hwmon::VfsResult{hwmon::VfsStatus::NotFound, {}};
        }
        return clean;
      });

  Sampler sampler(*soc);
  auto rc = enabled_config();
  rc.fallback_enabled = true;
  sampler.set_resilience(rc);
  SamplerConfig config;
  config.sample_count = 10;
  const Trace t = sampler.collect(kFpgaCurrent, sim::milliseconds(40), config);

  // Every sample substitutes the FPGA power channel (Table III order), so
  // the trace stays gap-free — in power units (uW), far above mA readings.
  EXPECT_TRUE(t.fully_valid());
  const auto stats = sampler.stats();
  EXPECT_EQ(stats.fallback_substitutions, 10u);
  EXPECT_EQ(stats.gap_samples, 0u);
  for (double v : t.values()) EXPECT_GT(v, 100000.0);
}

TEST(ResilientSampler, PerSampleDeadlineFailsFast) {
  auto soc = make_soc();
  faults::FaultInjector injector(faults::FaultPlan::transient_only(1, 1.0));
  injector.attach(soc->hwmon().fs());

  Sampler sampler(*soc);
  auto rc = enabled_config();
  rc.retry.per_sample_deadline = sim::microseconds(50);  // < first backoff
  sampler.set_resilience(rc);
  SamplerConfig config;
  config.sample_count = 5;
  const Trace t = sampler.collect(kFpgaCurrent, sim::milliseconds(40), config);

  EXPECT_EQ(t.gap_count(), 5u);
  const auto stats = sampler.stats();
  EXPECT_EQ(stats.retries, 0u);  // the deadline vetoed every backoff
  EXPECT_GT(stats.deadline_failures, 0u);
}

TEST(ResilientSampler, PerTraceBudgetExhaustsDeterministically) {
  auto soc = make_soc();
  faults::FaultInjector injector(faults::FaultPlan::transient_only(1, 1.0));
  injector.attach(soc->hwmon().fs());

  Sampler sampler(*soc);
  auto rc = enabled_config();
  rc.retry.jitter = 0.0;  // exact 200/400/800 us backoffs
  rc.retry.per_trace_deadline = sim::microseconds(500);
  rc.health.degrade_after = 1000;  // keep the health machine out of the way
  rc.health.quarantine_after = 1000;
  sampler.set_resilience(rc);
  SamplerConfig config;
  config.sample_count = 10;
  const Trace t = sampler.collect(kFpgaCurrent, sim::milliseconds(40), config);

  EXPECT_EQ(t.gap_count(), 10u);
  const auto stats = sampler.stats();
  // Sample 1 spends 200 us, sample 2 another 200 us; the 400 us follow-ups
  // and every later first backoff exceed what remains of the 500 us budget.
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.deadline_failures, 10u);
}

// ---------------------------------------------------------------------------
// collect_multi under a mid-trace permission flip (udev race re-chmods the
// attributes while a fingerprinting trace is in flight).

hwmon::ReadFaultHook permission_flip_hook(soc::Soc* soc, sim::TimeNs flip) {
  return [soc, flip](std::string_view, bool privileged,
                     hwmon::VfsResult clean) {
    if (!privileged && soc->now().ns >= flip.ns) {
      return hwmon::VfsResult{hwmon::VfsStatus::PermissionDenied, {}};
    }
    return clean;
  };
}

TEST(ResilientSampler, CollectMultiSurvivesMidTracePermissionFlip) {
  const std::vector<Channel> channels = {
      kFpgaCurrent, {power::Rail::FpgaLogic, Quantity::Power}};
  const sim::TimeNs flip{sim::milliseconds(40).ns +
                         10 * sim::milliseconds(35).ns};

  auto soc = make_soc();
  soc->hwmon().fs().set_read_fault_hook(permission_flip_hook(soc.get(), flip));
  Sampler sampler(*soc);
  sampler.set_resilience(enabled_config());
  SamplerConfig config;
  config.sample_count = 20;
  const auto traces =
      sampler.collect_multi(channels, sim::milliseconds(40), config);

  ASSERT_EQ(traces.size(), 2u);
  for (const Trace& t : traces) {
    ASSERT_EQ(t.size(), 20u) << "gaps must keep their sample slots";
    for (std::size_t i = 0; i < 10; ++i) EXPECT_TRUE(t.valid(i)) << i;
    for (std::size_t i = 10; i < 20; ++i) EXPECT_FALSE(t.valid(i)) << i;
  }
  EXPECT_EQ(sampler.health(kFpgaCurrent), ChannelHealth::Quarantined);
}

TEST(ResilientSampler, StrictModeStillThrowsOnThePermissionFlip) {
  const sim::TimeNs flip{sim::milliseconds(40).ns +
                         10 * sim::milliseconds(35).ns};
  auto soc = make_soc();
  soc->hwmon().fs().set_read_fault_hook(permission_flip_hook(soc.get(), flip));
  Sampler sampler(*soc);  // resilience disabled: legacy semantics
  SamplerConfig config;
  config.sample_count = 20;
  try {
    static_cast<void>(
        sampler.collect_multi({kFpgaCurrent}, sim::milliseconds(40), config));
    FAIL() << "expected SamplingError";
  } catch (const SamplingError& e) {
    EXPECT_NE(std::string(e.what()).find("hwmon read denied"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace amperebleed::core
