#include "amperebleed/faults/faults.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "amperebleed/hwmon/vfs.hpp"
#include "amperebleed/sensors/i2c.hpp"

namespace amperebleed::faults {
namespace {

hwmon::VfsResult clean(const std::string& text = "1520\n") {
  return {hwmon::VfsStatus::Ok, text};
}

TEST(FaultKindNames, RoundTrip) {
  for (const FaultKind k : kAllFaultKinds) {
    const auto back = fault_kind_from_name(fault_kind_name(k));
    ASSERT_TRUE(back.has_value()) << fault_kind_name(k);
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(fault_kind_from_name("no-such-fault").has_value());
}

TEST(FaultRates, TotalsAndAny) {
  FaultRates rates;
  EXPECT_FALSE(rates.any());
  EXPECT_DOUBLE_EQ(rates.read_total(), 0.0);
  rates[FaultKind::Transient] = 0.1;
  rates[FaultKind::I2cNack] = 0.4;  // excluded from the read-path total
  EXPECT_TRUE(rates.any());
  EXPECT_DOUBLE_EQ(rates.read_total(), 0.1);
}

TEST(FaultPlan, ChaosMixSumsToRequestedRate) {
  const auto plan = FaultPlan::chaos(42, 0.10);
  EXPECT_NEAR(plan.rates.read_total(), 0.10, 1e-12);
  EXPECT_DOUBLE_EQ(plan.rates[FaultKind::I2cNack], 0.10);
  EXPECT_GT(plan.burst.continue_probability, 0.0);
  EXPECT_TRUE(plan.any());
  EXPECT_FALSE(FaultPlan::chaos(42, 0.0).any());
}

TEST(FaultPlan, TransientOnlyIsPureEagain) {
  const auto plan = FaultPlan::transient_only(7, 0.2);
  EXPECT_DOUBLE_EQ(plan.rates[FaultKind::Transient], 0.2);
  for (const FaultKind k : kAllFaultKinds) {
    if (k != FaultKind::Transient) EXPECT_DOUBLE_EQ(plan.rates[k], 0.0);
  }
  EXPECT_DOUBLE_EQ(plan.burst.continue_probability, 0.0);
}

TEST(FaultPlan, FromEnvParsesSeedAndRate) {
  ::setenv("AMPEREBLEED_FAULT_SEED", "0xabc", 1);
  ::setenv("AMPEREBLEED_FAULT_RATE", "0.25", 1);
  auto plan = FaultPlan::from_env();
  EXPECT_EQ(plan.seed, 0xabcu);
  EXPECT_NEAR(plan.rates.read_total(), 0.25, 1e-12);

  // Out-of-range rates fall back to the default (0.05).
  ::setenv("AMPEREBLEED_FAULT_RATE", "7.0", 1);
  plan = FaultPlan::from_env();
  EXPECT_NEAR(plan.rates.read_total(), 0.05, 1e-12);

  ::unsetenv("AMPEREBLEED_FAULT_SEED");
  ::unsetenv("AMPEREBLEED_FAULT_RATE");
  plan = FaultPlan::from_env();
  EXPECT_EQ(plan.seed, 0xfa17u);
}

TEST(FaultInjector, ZeroRatesPassEverythingThrough) {
  FaultInjector injector{FaultPlan{}};  // all rates zero
  for (int i = 0; i < 50; ++i) {
    const auto r = injector.filter_read("hwmon0/curr1_input", false, clean());
    EXPECT_EQ(r.status, hwmon::VfsStatus::Ok);
    EXPECT_EQ(r.data, "1520\n");
  }
  // Clean failures pass through untouched too.
  const auto denied = injector.filter_read(
      "hwmon0/curr1_input", false, {hwmon::VfsStatus::PermissionDenied, {}});
  EXPECT_EQ(denied.status, hwmon::VfsStatus::PermissionDenied);
  const auto stats = injector.stats();
  EXPECT_EQ(stats.total_injected(), 0u);
  EXPECT_EQ(stats.accesses, 51u);
}

TEST(FaultInjector, ScheduleIsPerPathDeterministicAcrossInterleavings) {
  // The decision for access n of a path depends only on (seed, path, n):
  // interleaving a second path must not perturb the first path's schedule.
  const auto plan = FaultPlan::chaos(0xdead, 0.3);
  const int kAccesses = 60;
  using Result = std::pair<hwmon::VfsStatus, std::string>;

  FaultInjector solo(plan);
  std::vector<Result> solo_p;
  for (int n = 0; n < kAccesses; ++n) {
    const auto r =
        solo.filter_read("p", false, clean(std::to_string(n) + "\n"));
    solo_p.emplace_back(r.status, r.data);
  }

  FaultInjector mixed(plan);
  std::vector<Result> mixed_p;
  for (int n = 0; n < kAccesses; ++n) {
    const auto r =
        mixed.filter_read("p", false, clean(std::to_string(n) + "\n"));
    mixed_p.emplace_back(r.status, r.data);
    // Interleaved traffic on an unrelated path.
    static_cast<void>(mixed.filter_read("q", false, clean("9\n")));
    static_cast<void>(mixed.filter_i2c(0x40, 0x04, false));
  }
  EXPECT_EQ(solo_p, mixed_p);
}

TEST(FaultInjector, BurstsExtendInWholeBurstLengths) {
  auto plan = FaultPlan::transient_only(7, 0.2);
  plan.burst.continue_probability = 1.0;  // every burst runs to the cap
  plan.burst.max_length = 3;
  FaultInjector injector(plan);

  std::vector<bool> faulted;
  for (int n = 0; n < 400; ++n) {
    const auto r = injector.filter_read("p", false, clean());
    faulted.push_back(r.status == hwmon::VfsStatus::TryAgain);
  }
  // With continuation probability 1, an initial draw always consumes exactly
  // max_length consecutive accesses, so every maximal fault run that ends
  // inside the window is a non-empty multiple of the burst length. (A burst
  // still in flight at access 400 is truncated by the window, not the model,
  // so the trailing run is exempt.)
  std::size_t run = 0;
  std::size_t runs_seen = 0;
  for (std::size_t i = 0; i < faulted.size(); ++i) {
    if (faulted[i]) {
      ++run;
      continue;
    }
    if (run > 0) {
      ++runs_seen;
      EXPECT_EQ(run % plan.burst.max_length, 0u) << "run of " << run;
      run = 0;
    }
  }
  EXPECT_GT(runs_seen, 0u);
  EXPECT_GT(injector.stats().by_kind(FaultKind::Transient), 0u);
}

TEST(FaultInjector, TornReadHandsBackStrictPrefix) {
  FaultPlan plan;
  plan.rates[FaultKind::TornRead] = 1.0;
  FaultInjector injector(plan);
  for (int n = 0; n < 20; ++n) {
    const auto r = injector.filter_read("p", false, clean("1520\n"));
    ASSERT_EQ(r.status, hwmon::VfsStatus::Ok);
    EXPECT_LT(r.data.size(), 5u);
    EXPECT_EQ(r.data, std::string("1520\n").substr(0, r.data.size()));
  }
  // A torn read of a failed access degrades to EAGAIN.
  const auto r =
      injector.filter_read("p", false, {hwmon::VfsStatus::NotFound, {}});
  EXPECT_EQ(r.status, hwmon::VfsStatus::TryAgain);
}

TEST(FaultInjector, GarbageTextCorruptsTheAttribute) {
  FaultPlan plan;
  plan.rates[FaultKind::GarbageText] = 1.0;
  FaultInjector injector(plan);
  for (int n = 0; n < 20; ++n) {
    const auto r = injector.filter_read("p", false, clean("1520\n"));
    ASSERT_EQ(r.status, hwmon::VfsStatus::Ok);
    EXPECT_NE(r.data, "1520\n");
  }
  EXPECT_EQ(injector.stats().by_kind(FaultKind::GarbageText), 20u);
}

TEST(FaultInjector, FrozenRegisterBeforeAnyCleanReadIsEagain) {
  FaultPlan plan;
  plan.rates[FaultKind::FrozenRegister] = 1.0;
  FaultInjector injector(plan);
  const auto r = injector.filter_read("p", false, clean("1520\n"));
  EXPECT_EQ(r.status, hwmon::VfsStatus::TryAgain);
}

TEST(FaultInjector, FrozenRegisterRepeatsTheLastCleanText) {
  // Find (deterministically) a seed whose schedule passes access 0 clean and
  // freezes access 1, then pin the stale-repeat behaviour.
  FaultPlan plan;
  plan.rates[FaultKind::FrozenRegister] = 0.6;
  bool found = false;
  for (std::uint64_t seed = 0; seed < 2000 && !found; ++seed) {
    plan.seed = seed;
    FaultInjector injector(plan);
    const auto r0 = injector.filter_read("p", false, clean("111\n"));
    if (!(r0.status == hwmon::VfsStatus::Ok && r0.data == "111\n")) continue;
    const auto r1 = injector.filter_read("p", false, clean("222\n"));
    if (injector.stats().by_kind(FaultKind::FrozenRegister) != 1) continue;
    found = true;
    EXPECT_EQ(r1.status, hwmon::VfsStatus::Ok);
    EXPECT_EQ(r1.data, "111\n") << "seed " << seed;
  }
  EXPECT_TRUE(found);
}

TEST(FaultInjector, I2cNackOnlyDrawsOnTheBusPath) {
  FaultPlan plan;
  plan.rates[FaultKind::I2cNack] = 1.0;
  FaultInjector injector(plan);
  // Read path never draws I2cNack even at rate 1.
  const auto r = injector.filter_read("p", false, clean());
  EXPECT_EQ(r.status, hwmon::VfsStatus::Ok);
  EXPECT_EQ(r.data, "1520\n");
  // Bus path NACKs every transaction.
  for (int n = 0; n < 5; ++n) {
    EXPECT_TRUE(injector.filter_i2c(0x40, 0x04, false));
  }
  EXPECT_EQ(injector.stats().by_kind(FaultKind::I2cNack), 5u);
}

TEST(FaultInjector, AttachAndDetachVirtualFs) {
  hwmon::VirtualFs fs;
  fs.add_file("/sys/x", 0444, [] { return std::string("42\n"); });
  {
    FaultInjector injector(FaultPlan::transient_only(1, 1.0));
    injector.attach(fs);
    EXPECT_TRUE(fs.has_read_fault_hook());
    EXPECT_EQ(fs.read("/sys/x", false).status, hwmon::VfsStatus::TryAgain);
    injector.detach();
    EXPECT_FALSE(fs.has_read_fault_hook());
    EXPECT_EQ(fs.read("/sys/x", false).data, "42\n");
    injector.attach(fs);  // destructor must detach too
  }
  EXPECT_FALSE(fs.has_read_fault_hook());
  EXPECT_EQ(fs.read("/sys/x", false).data, "42\n");
}

class WordDevice final : public sensors::I2cDevice {
 public:
  std::uint16_t read_word(std::uint8_t) override { return 0xbeef; }
  void write_word(std::uint8_t, std::uint16_t) override {}
};

TEST(FaultInjector, AttachBusNacksTransactions) {
  sensors::I2cBus bus;
  WordDevice device;
  bus.attach(0x40, device);
  EXPECT_EQ(bus.read_word(0x40, 0x04), 0xbeef);

  FaultInjector injector([] {
    FaultPlan plan;
    plan.rates[FaultKind::I2cNack] = 1.0;
    return plan;
  }());
  injector.attach_bus(bus);
  EXPECT_TRUE(bus.has_fault_hook());
  EXPECT_THROW(static_cast<void>(bus.read_word(0x40, 0x04)),
               sensors::I2cError);
  injector.detach();
  EXPECT_FALSE(bus.has_fault_hook());
  EXPECT_EQ(bus.read_word(0x40, 0x04), 0xbeef);
}

TEST(FaultInjector, SecondHookInstallThrows) {
  hwmon::VirtualFs fs;
  FaultInjector a(FaultPlan::transient_only(1, 0.5));
  FaultInjector b(FaultPlan::transient_only(2, 0.5));
  a.attach(fs);
  EXPECT_THROW(b.attach(fs), std::logic_error);
}

}  // namespace
}  // namespace amperebleed::faults
