#include "amperebleed/crypto/aes128.hpp"

#include <gtest/gtest.h>

#include "amperebleed/util/rng.hpp"

namespace amperebleed::crypto {
namespace {

Aes128::Block from_hex32(const char* hex) {
  Aes128::Block b{};
  for (int i = 0; i < 16; ++i) {
    unsigned v = 0;
    sscanf(hex + 2 * i, "%2x", &v);
    b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v);
  }
  return b;
}

TEST(Aes128, SboxKnownEntries) {
  // FIPS-197 figure 7 spot checks.
  EXPECT_EQ(Aes128::sbox(0x00), 0x63);
  EXPECT_EQ(Aes128::sbox(0x01), 0x7c);
  EXPECT_EQ(Aes128::sbox(0x53), 0xed);
  EXPECT_EQ(Aes128::sbox(0xff), 0x16);
}

TEST(Aes128, SboxInverseIsInverse) {
  for (int v = 0; v < 256; ++v) {
    const auto b = static_cast<std::uint8_t>(v);
    EXPECT_EQ(Aes128::inv_sbox(Aes128::sbox(b)), b);
  }
}

TEST(Aes128, Fips197AppendixCVector) {
  const Aes128 aes(from_hex32("000102030405060708090a0b0c0d0e0f"));
  const auto ct =
      aes.encrypt_block(from_hex32("00112233445566778899aabbccddeeff"));
  EXPECT_EQ(ct, from_hex32("69c4e0d86a7b0430d8cdb78070b4c55a"));
}

TEST(Aes128, Fips197AppendixBVector) {
  const Aes128 aes(from_hex32("2b7e151628aed2a6abf7158809cf4f3c"));
  const auto ct =
      aes.encrypt_block(from_hex32("3243f6a8885a308d313198a2e0370734"));
  EXPECT_EQ(ct, from_hex32("3925841d02dc09fbdc118597196a0b32"));
}

TEST(Aes128, DecryptInvertsEncrypt) {
  util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    Aes128::Key key{};
    Aes128::Block pt{};
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.uniform_below(256));
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.uniform_below(256));
    const Aes128 aes(key);
    EXPECT_EQ(aes.decrypt_block(aes.encrypt_block(pt)), pt);
  }
}

TEST(Aes128, DifferentKeysDifferentCiphertexts) {
  const Aes128::Block pt = from_hex32("00112233445566778899aabbccddeeff");
  const Aes128 a(from_hex32("000102030405060708090a0b0c0d0e0f"));
  const Aes128 b(from_hex32("000102030405060708090a0b0c0d0e10"));
  EXPECT_NE(a.encrypt_block(pt), b.encrypt_block(pt));
}

TEST(Aes128, AvalancheOnPlaintextBitFlip) {
  const Aes128 aes(from_hex32("2b7e151628aed2a6abf7158809cf4f3c"));
  Aes128::Block pt = from_hex32("3243f6a8885a308d313198a2e0370734");
  const auto c1 = aes.encrypt_block(pt);
  pt[0] ^= 0x01;
  const auto c2 = aes.encrypt_block(pt);
  int differing_bits = 0;
  for (int i = 0; i < 16; ++i) {
    differing_bits += __builtin_popcount(
        static_cast<unsigned>(c1[static_cast<std::size_t>(i)] ^
                              c2[static_cast<std::size_t>(i)]));
  }
  EXPECT_GT(differing_bits, 40);  // ~64 expected of 128
  EXPECT_LT(differing_bits, 90);
}

}  // namespace
}  // namespace amperebleed::crypto
