// Table-driven cross-checks against an independent bignum implementation
// (vectors precomputed with Python's arbitrary-precision integers).

#include <gtest/gtest.h>

#include "amperebleed/crypto/biguint.hpp"

namespace amperebleed::crypto {
namespace {

struct Vector {
  const char* a;
  const char* b;
  const char* product;
  const char* quotient;   // a / b
  const char* remainder;  // a % b
};

// clang-format off
constexpr Vector kVectors[] = {
{"f149f542e935b87017346b4501eaf6141de9ea6670d3da1fc735df5ef7697fb9", "15b16e2d5cabeb959208f0ebd4950cddd9ce97b5bdf073eed1", "14724d19992021d4886eca2b663f37e706d4c938cfac45a5ba251d551788ca095f6e88478ff263c88ee85b2d96a3f2789e8c91cb42e1fa4409", "b1f72eb87ad689e", "22f8e97ceec077a88794c4fd7111850ab67819d51dc9a32bb"},
{"40e1e30c9ed0248fc9799a707e36d6004762a223c9f90c95ac96628c438183619322fed", "2607ad76ab14759da618fd7bf78a4d9f8f5ffba5f80a0a58994953", "9a379d7ced57e6090f3d7558539521418fa344c9c383189ab7a93443e96a09f92746a7d5d3e1d2dfad0b831bf991a1d6e85669680dfece82b77397951ed7", "1b4c1f1328e9080415", "1ce1419ef6014ca2dc996bd2130f57036158c1ce4f357b99e1e01e"},
{"f703c9ffe16682717c9bbfae80ca17b703be0e66d868c2cf1d4a2b12b6a20bb02edf0743175e9941", "99118dc10e774520d7e98d7c358a84c15caad14268108727563ff4bb8d", "93b233c1b5c6bf557ba9583b150ac0a3a09279ca8c10138c026b8d9046d907e29281a600cc050e02387aecc8777264710f069e8131fbf8fe135e209b9b4e3ef2bd0a00e3cd", "19d1ee3e0867008e26408cb", "50d31c83f87182433b9c3271f11fdacc713e60f437bacf8e4afd5d7872"},
{"4d6bfd8fa506bfc51025dbe58e725d57d30aad4b45038e220bc4621b9439852083d9fca716c40a33acd51e66", "33354feefadf23a7cda6c23fc86ee6443658625af0f3e0d9a54a0d7b25331f", "f7ca30bb621838b2210491398a6349db077b860a50c4dee85f0401c3fed9a5830d7b9eb85fa8c5232737fe9facd712db55330fc81f1c413732a9f1e9afff9467d48f78ca1ef46c99b005a", "1830bfc204bcbe9c79a4c564fec", "ddb0a040fdf483c6153448d7fba62b292786ac1982161741e59734b596cd2"},
{"b5c36ec124ce01e15560eaba017ad051121213ca8212f7c6f1048aa604f0d0f2aa58695187b8a518e065e3eb74113cb0", "297f1ff9fe966844aa138411eb0dde6d082ac7e1da6099d795a8486261790b2f7d", "1d768f650af91040716979d6212f307809120cad211fc5e9c306bfb0031c61611750825fb371fdcc4119fc2ea2b785c7024bb5d36e2bca991a43593e4bdb015e24116027b4f909913580d60563a21ef1f0", "46154ea8c57aa9584f5d1f8090099f0", "2ca69317a26d23f583f95a72a8d0f40ebbd96aec3da116791213ff46ee5330280"},
{"aba601ca242780aa879951fff4f991a81c63373ac55ef18658a295d4eff35b6106f1e77124ed49b137106d208ead31c813484861", "2d665a0a4adb41ce779a93a99226f446db4bc46a8f69260a228ba87442a1244e2e3761", "1e70ced482337b9e172ae15d696afae8943ccb2ec5e0e6c93d448f5b46a14948ceee9e17826e414f7d7d89ca6ee443b31eb389b37b7c2de44b8aefb1fe02c40f530b3474a562215ef6324ab49778a0f5d684a2655e43c1", "3c7e3bf43ff74d6a0a7f8e7b488451dcddb", "29efd9bce719a43ae40011f6a3a497d89694d027f7ab1e5636ba0dbc6f556cc4693b66"},
{"597ee18bc3a671c462dcec669027b9ad0a83178876e99afdd579c4c9c777b54b2790ae2cd8fba355f46871014cdead2e2791eef8458c3cdb", "78eed66a5ac86b7f7f0b9ab36679d6dedb77d6a830d103b91f95365d68577a296e7ef077e1", "2a46f8a47276cf7deb8b6bbb179c995c454aad11f43c209f7539a25b5d9ecb2158a248769501f761b50a07c4eb00ca2c55abbff131eb33222ad51fdb083fd27d3ee6a7f81f97994a1b282f513e1fb60b72472a1db09db3e31027db497b", "bd737aafebd1fb099e4762bef608adf7f6994f", "3458d873708f52a79f767e50fa5e225e128cb05ea3ac5af49764305d843cfe1237187bc56c"},
{"c7154f271fb661b44669165f4bb19d02701861c0d092e07f84eb1e73c7f3c8a0bbc9a6e0708963bb2b833e28e1ae6a00984c6df8d13d74f3dec4ac46", "d72f9ed454f1e81a644d9287a0eabff0689ae11e956a7dc4e145896fa19d466a94427d2f84ea0f", "a757ede7aa5fce0b5ab43393a9752e7319aacb80d740c4185bb621462f7622edb26d65bb97e6d228a4abd6fc83d6dfd7563ec87dc0e78159263a3f3d233bffde26f4fea5ad4cad77ce1df3bed87e9e0ce1b38e843c8d62ff8d49ae920fe7218116141a", "ecd7d111fa1faf2ce55dc172003d8373f535c50785", "b6da6b5ce8dfb2d2cabdf5757b1d748aaa598acadcb470fb7e57d4061a8cadc733aa8553c5a97b"},
};
// clang-format on

class BigUIntVectors : public ::testing::TestWithParam<Vector> {};

TEST_P(BigUIntVectors, MultiplicationMatchesPython) {
  const Vector& v = GetParam();
  const BigUInt a = BigUInt::from_hex(v.a);
  const BigUInt b = BigUInt::from_hex(v.b);
  EXPECT_EQ((a * b).to_hex(), v.product);
  EXPECT_EQ((b * a).to_hex(), v.product);  // commutativity
}

TEST_P(BigUIntVectors, DivModMatchesPython) {
  const Vector& v = GetParam();
  const BigUInt a = BigUInt::from_hex(v.a);
  const BigUInt b = BigUInt::from_hex(v.b);
  const auto [q, r] = a.divmod(b);
  EXPECT_EQ(q.to_hex(), v.quotient);
  EXPECT_EQ(r.to_hex(), v.remainder);
  EXPECT_EQ(a.mod(b).to_hex(), v.remainder);
}

TEST_P(BigUIntVectors, ReconstructionIdentity) {
  const Vector& v = GetParam();
  const BigUInt a = BigUInt::from_hex(v.a);
  const BigUInt b = BigUInt::from_hex(v.b);
  EXPECT_EQ(BigUInt::from_hex(v.quotient) * b + BigUInt::from_hex(v.remainder),
            a);
  // (a*b) / b == a exactly.
  EXPECT_EQ(BigUInt::from_hex(v.product).divmod(b).quotient, a);
}

TEST_P(BigUIntVectors, BytesAndLimbsRoundTrip) {
  const Vector& v = GetParam();
  const BigUInt a = BigUInt::from_hex(v.a);
  EXPECT_EQ(BigUInt::from_bytes_be(a.to_bytes_be()), a);
  EXPECT_EQ(BigUInt::from_limbs(a.limbs()), a);
}

INSTANTIATE_TEST_SUITE_P(PythonVectors, BigUIntVectors,
                         ::testing::ValuesIn(kVectors));

}  // namespace
}  // namespace amperebleed::crypto
