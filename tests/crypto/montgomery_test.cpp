#include "amperebleed/crypto/montgomery.hpp"

#include <gtest/gtest.h>

#include "amperebleed/crypto/modexp.hpp"
#include "amperebleed/crypto/rsa.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::crypto {
namespace {

BigUInt random_below(const BigUInt& m, util::Rng& rng) {
  BigUInt x;
  for (std::size_t b = 0; b < m.bit_length(); ++b) {
    if (rng.bernoulli(0.5)) x.set_bit(b);
  }
  return x.mod(m);
}

TEST(Montgomery, RejectsBadModuli) {
  EXPECT_THROW(MontgomeryContext{BigUInt{}}, std::invalid_argument);
  EXPECT_THROW(MontgomeryContext{BigUInt{10}}, std::invalid_argument);
  EXPECT_NO_THROW(MontgomeryContext{BigUInt{9}});
}

TEST(Montgomery, DomainRoundTrip) {
  const BigUInt n(1'000'000'007ULL);
  MontgomeryContext ctx(n);
  util::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const BigUInt x = random_below(n, rng);
    EXPECT_EQ(ctx.from_mont(ctx.to_mont(x)), x);
  }
}

TEST(Montgomery, MulMatchesModMul) {
  const BigUInt n = BigUInt::from_hex("fedcba9876543211");  // odd
  MontgomeryContext ctx(n);
  util::Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const BigUInt a = random_below(n, rng);
    const BigUInt b = random_below(n, rng);
    const BigUInt product =
        ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)));
    EXPECT_EQ(product, modmul(a, b, n)) << "trial " << trial;
  }
}

TEST(Montgomery, ModexpMatchesReferenceSmall) {
  const BigUInt n(999'999'937ULL);  // odd
  MontgomeryContext ctx(n);
  util::Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const BigUInt base = random_below(n, rng);
    const BigUInt exp(rng.uniform_below(1'000'000));
    EXPECT_EQ(ctx.modexp(base, exp), modexp(base, exp, n));
  }
}

TEST(Montgomery, ModexpEdgeCases) {
  const BigUInt n(97);
  MontgomeryContext ctx(n);
  EXPECT_EQ(ctx.modexp(BigUInt(5), BigUInt()).low_u64(), 1u);   // x^0
  EXPECT_EQ(ctx.modexp(BigUInt(), BigUInt(3)).low_u64(), 0u);   // 0^x
  EXPECT_EQ(ctx.modexp(BigUInt(96), BigUInt(2)).low_u64(), 1u); // (-1)^2
  // Modulus 1: everything is 0.
  MontgomeryContext one(BigUInt(1));
  EXPECT_TRUE(one.modexp(BigUInt(5), BigUInt(3)).is_zero());
}

TEST(Montgomery, Rsa1024AgainstReference) {
  const BigUInt& n = rsa1024_test_modulus();
  MontgomeryContext ctx(n);
  const BigUInt base =
      exponent_with_hamming_weight(1000, 500, 7).mod(n);
  const BigUInt exp = exponent_with_hamming_weight(64, 20, 9);
  EXPECT_EQ(ctx.modexp(base, exp), modexp(base, exp, n));
}

TEST(Montgomery, OperandsWiderThanModulusAreReduced) {
  const BigUInt n(101);
  MontgomeryContext ctx(n);
  EXPECT_EQ(ctx.from_mont(ctx.to_mont(BigUInt(5000))).low_u64(),
            5000ull % 101);
}

TEST(Montgomery, FermatOnLargerPrime) {
  // 2^127 - 1 is prime (Mersenne): a^(p-1) = 1 mod p.
  const BigUInt p = (BigUInt(1) << 127) - BigUInt(1);
  MontgomeryContext ctx(p);
  EXPECT_EQ(ctx.modexp(BigUInt(3), p - BigUInt(1)), BigUInt(1));
}

}  // namespace
}  // namespace amperebleed::crypto
