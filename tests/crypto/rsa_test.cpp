#include "amperebleed/crypto/rsa.hpp"

#include <gtest/gtest.h>

namespace amperebleed::crypto {
namespace {

TEST(Rsa1024Modulus, ShapeInvariants) {
  const BigUInt& n = rsa1024_test_modulus();
  EXPECT_EQ(n.bit_length(), 1024u);
  EXPECT_TRUE(n.is_odd());
  // Same object every call (cached), and value is stable across calls.
  EXPECT_EQ(&rsa1024_test_modulus(), &n);
}

TEST(ExponentWithHammingWeight, ExactWeight) {
  for (std::size_t hw : {1u, 17u, 512u, 1024u}) {
    const BigUInt e = exponent_with_hamming_weight(1024, hw, 42);
    EXPECT_EQ(e.hamming_weight(), hw) << "hw=" << hw;
    EXPECT_LE(e.bit_length(), 1024u);
  }
}

TEST(ExponentWithHammingWeight, FullWeightSetsEveryBit) {
  const BigUInt e = exponent_with_hamming_weight(64, 64, 7);
  for (std::size_t b = 0; b < 64; ++b) EXPECT_TRUE(e.bit(b));
}

TEST(ExponentWithHammingWeight, DeterministicPerSeed) {
  const BigUInt a = exponent_with_hamming_weight(256, 40, 1);
  const BigUInt b = exponent_with_hamming_weight(256, 40, 1);
  const BigUInt c = exponent_with_hamming_weight(256, 40, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(c.hamming_weight(), 40u);
}

TEST(ExponentWithHammingWeight, Validation) {
  EXPECT_THROW(exponent_with_hamming_weight(1024, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(exponent_with_hamming_weight(64, 65, 1),
               std::invalid_argument);
}

TEST(PaperSchedule, SeventeenKeysSteppingBy64) {
  const auto schedule = paper_hamming_weight_schedule(1024);
  ASSERT_EQ(schedule.size(), 17u);
  EXPECT_EQ(schedule.front(), 1u);  // HW=0 unsupported, paper uses 1
  EXPECT_EQ(schedule[1], 64u);
  EXPECT_EQ(schedule[2], 128u);
  EXPECT_EQ(schedule.back(), 1024u);
  for (std::size_t i = 2; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i] - schedule[i - 1], 64u);
  }
}

TEST(PaperSchedule, ScalesWithWidth) {
  const auto schedule = paper_hamming_weight_schedule(256);
  ASSERT_EQ(schedule.size(), 17u);
  EXPECT_EQ(schedule[1], 16u);
  EXPECT_EQ(schedule.back(), 256u);
}

TEST(PaperSchedule, Validation) {
  EXPECT_THROW(paper_hamming_weight_schedule(0), std::invalid_argument);
  EXPECT_THROW(paper_hamming_weight_schedule(100), std::invalid_argument);
}

}  // namespace
}  // namespace amperebleed::crypto
