#include "amperebleed/crypto/biguint.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "amperebleed/util/rng.hpp"

namespace amperebleed::crypto {
namespace {

TEST(BigUInt, ZeroProperties) {
  const BigUInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(zero.is_odd());
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.hamming_weight(), 0u);
  EXPECT_EQ(zero.to_hex(), "0");
  EXPECT_EQ(zero.low_u64(), 0u);
}

TEST(BigUInt, U64RoundTrip) {
  const BigUInt v(0x123456789abcdef0ULL);
  EXPECT_EQ(v.low_u64(), 0x123456789abcdef0ULL);
  EXPECT_EQ(v.to_hex(), "123456789abcdef0");
  EXPECT_EQ(v.bit_length(), 61u);
}

TEST(BigUInt, FromHexRoundTrip) {
  const std::string hex = "deadbeefcafebabe0123456789abcdef";
  const BigUInt v = BigUInt::from_hex(hex);
  EXPECT_EQ(v.to_hex(), hex);
  EXPECT_EQ(BigUInt::from_hex("0xFF").low_u64(), 255u);
  EXPECT_EQ(BigUInt::from_hex("00ff").to_hex(), "ff");
}

TEST(BigUInt, FromHexRejectsGarbage) {
  EXPECT_THROW(BigUInt::from_hex(""), std::invalid_argument);
  EXPECT_THROW(BigUInt::from_hex("xyz"), std::invalid_argument);
}

TEST(BigUInt, BytesRoundTrip) {
  const std::vector<std::uint8_t> bytes = {0x01, 0x02, 0x03, 0xff, 0x00};
  const BigUInt v = BigUInt::from_bytes_be(bytes);
  EXPECT_EQ(v.to_hex(), "10203ff00");
  const auto out = v.to_bytes_be();
  // Leading zero byte is not preserved (canonical form).
  EXPECT_EQ(BigUInt::from_bytes_be(out), v);
}

TEST(BigUInt, ComparisonOperators) {
  const BigUInt a(100);
  const BigUInt b(200);
  const BigUInt big = BigUInt::from_hex("1ffffffffffffffff");
  EXPECT_LT(a, b);
  EXPECT_GT(big, b);
  EXPECT_LE(a, a);
  EXPECT_GE(big, big);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, BigUInt(100));
}

TEST(BigUInt, AdditionWithCarryChains) {
  const BigUInt max32(0xffffffffULL);
  const BigUInt one(1);
  EXPECT_EQ((max32 + one).to_hex(), "100000000");
  const BigUInt big = BigUInt::from_hex("ffffffffffffffffffffffff");
  EXPECT_EQ((big + one).to_hex(), "1000000000000000000000000");
}

TEST(BigUInt, SubtractionWithBorrow) {
  const BigUInt big = BigUInt::from_hex("100000000");
  EXPECT_EQ((big - BigUInt(1)).to_hex(), "ffffffff");
  EXPECT_TRUE((big - big).is_zero());
  EXPECT_THROW(BigUInt(1) - BigUInt(2), std::underflow_error);
}

TEST(BigUInt, MultiplicationKnownValues) {
  EXPECT_TRUE((BigUInt(0) * BigUInt(123)).is_zero());
  EXPECT_EQ((BigUInt(0xffffffffULL) * BigUInt(0xffffffffULL)).to_hex(),
            "fffffffe00000001");
  const BigUInt a = BigUInt::from_hex("123456789abcdef");
  const BigUInt b = BigUInt::from_hex("fedcba987654321");
  EXPECT_EQ((a * b).to_hex(), "121fa00ad77d7422236d88fe5618cf");
}

TEST(BigUInt, ShiftsInverse) {
  const BigUInt v = BigUInt::from_hex("123456789abcdef0123456789");
  EXPECT_EQ((v << 37) >> 37, v);
  EXPECT_EQ((v << 0), v);
  EXPECT_TRUE((v >> 200).is_zero());
  EXPECT_EQ((BigUInt(1) << 100).bit_length(), 101u);
}

TEST(BigUInt, BitAccess) {
  BigUInt v;
  v.set_bit(0);
  v.set_bit(77);
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(77));
  EXPECT_FALSE(v.bit(1));
  EXPECT_FALSE(v.bit(1000));
  EXPECT_EQ(v.bit_length(), 78u);
  EXPECT_EQ(v.hamming_weight(), 2u);
}

TEST(BigUInt, DivModKnownValues) {
  const BigUInt n(1000);
  const auto [q, r] = n.divmod(BigUInt(7));
  EXPECT_EQ(q.low_u64(), 142u);
  EXPECT_EQ(r.low_u64(), 6u);
  EXPECT_THROW(n.divmod(BigUInt()), std::domain_error);
}

TEST(BigUInt, DivModSmallerThanDivisor) {
  const auto [q, r] = BigUInt(5).divmod(BigUInt(100));
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(r.low_u64(), 5u);
}

TEST(BigUInt, DivModReconstructionProperty) {
  // Property: for random a, b: a == q*b + r with r < b.
  util::Rng rng(42);
  for (int trial = 0; trial < 25; ++trial) {
    BigUInt a;
    BigUInt b;
    for (int bit = 0; bit < 192; ++bit) {
      if (rng.bernoulli(0.5)) a.set_bit(static_cast<std::size_t>(bit));
    }
    for (int bit = 0; bit < 96; ++bit) {
      if (rng.bernoulli(0.5)) b.set_bit(static_cast<std::size_t>(bit));
    }
    if (b.is_zero()) b = BigUInt(3);
    const auto [q, r] = a.divmod(b);
    EXPECT_LT(r, b);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST(BigUInt, ModMatchesDivMod) {
  const BigUInt a = BigUInt::from_hex("123456789abcdef123456789abcdef");
  const BigUInt m = BigUInt::from_hex("fedcba987");
  EXPECT_EQ(a.mod(m), a.divmod(m).remainder);
}

}  // namespace
}  // namespace amperebleed::crypto
