#include "amperebleed/crypto/modexp.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "amperebleed/util/rng.hpp"

namespace amperebleed::crypto {
namespace {

// Reference modular exponentiation on native integers (m small enough that
// 128-bit intermediates suffice).
std::uint64_t ref_modexp(std::uint64_t base, std::uint64_t exp,
                         std::uint64_t m) {
  __uint128_t result = 1 % m;
  __uint128_t b = base % m;
  while (exp != 0) {
    if (exp & 1u) result = result * b % m;
    b = b * b % m;
    exp >>= 1;
  }
  return static_cast<std::uint64_t>(result);
}

TEST(ModMul, MatchesNativeArithmetic) {
  util::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t m = 2 + rng.uniform_below(1'000'000'007ULL);
    const std::uint64_t a = rng.uniform_below(m);
    const std::uint64_t b = rng.uniform_below(m);
    const __uint128_t expected = static_cast<__uint128_t>(a) * b % m;
    EXPECT_EQ(modmul(BigUInt(a), BigUInt(b), BigUInt(m)).low_u64(),
              static_cast<std::uint64_t>(expected));
  }
}

TEST(ModMul, ReducesOversizedOperands) {
  const BigUInt m(97);
  EXPECT_EQ(modmul(BigUInt(1000), BigUInt(1000), m).low_u64(),
            1000ull * 1000ull % 97ull);
}

TEST(ModMul, ZeroModulusThrows) {
  EXPECT_THROW(modmul(BigUInt(1), BigUInt(1), BigUInt()), std::domain_error);
}

TEST(ModExp, MatchesNativeReference) {
  util::Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t m = 2 + rng.uniform_below(1'000'000ULL);
    const std::uint64_t base = rng.uniform_below(m);
    const std::uint64_t exp = rng.uniform_below(1'000'000ULL);
    EXPECT_EQ(modexp(BigUInt(base), BigUInt(exp), BigUInt(m)).low_u64(),
              ref_modexp(base, exp, m))
        << base << "^" << exp << " mod " << m;
  }
}

TEST(ModExp, EdgeCases) {
  // x^0 = 1 (mod m > 1); anything mod 1 is 0.
  EXPECT_EQ(modexp(BigUInt(5), BigUInt(), BigUInt(7)).low_u64(), 1u);
  EXPECT_TRUE(modexp(BigUInt(5), BigUInt(3), BigUInt(1)).is_zero());
  EXPECT_TRUE(modexp(BigUInt(), BigUInt(3), BigUInt(7)).is_zero());
  EXPECT_THROW(modexp(BigUInt(2), BigUInt(2), BigUInt()), std::domain_error);
}

TEST(ModExp, FermatLittleTheorem) {
  // a^(p-1) = 1 mod p for prime p and a not divisible by p.
  const std::uint64_t p = 1'000'000'007ULL;
  for (std::uint64_t a : {2ULL, 3ULL, 65537ULL}) {
    EXPECT_EQ(modexp(BigUInt(a), BigUInt(p - 1), BigUInt(p)).low_u64(), 1u);
  }
}

TEST(ModExp, LargeOperandsAgainstPythonDerivedVector) {
  // 0x123456789abcdef ^ 0x1001 mod (2^127 - 1), checked externally.
  const BigUInt base = BigUInt::from_hex("123456789abcdef");
  const BigUInt exp = BigUInt::from_hex("1001");
  const BigUInt m = (BigUInt(1) << 127) - BigUInt(1);
  const BigUInt expected = BigUInt::from_hex(
      "1f79b9a1fe2c823da51a48a241f836cd");
  EXPECT_EQ(modexp(base, exp, m), expected);
}

TEST(ModExpTraced, IterationCountEqualsExponentBitLength) {
  const BigUInt m(1'000'003);
  const BigUInt base(12345);
  const BigUInt exp(0b1011010);  // 7 bits
  const auto trace = modexp_traced(base, exp, m);
  EXPECT_EQ(trace.iterations.size(), 7u);
  EXPECT_EQ(trace.result.low_u64(), ref_modexp(12345, 0b1011010, 1'000'003));
}

TEST(ModExpTraced, MultiplyActivityMirrorsExponentBits) {
  const BigUInt m(999'983);
  const BigUInt exp(0b1011010);
  const auto trace = modexp_traced(BigUInt(2), exp, m);
  for (std::size_t i = 0; i < trace.iterations.size(); ++i) {
    EXPECT_EQ(trace.iterations[i].multiply_active, exp.bit(i))
        << "iteration " << i;
  }
}

TEST(ModExpTraced, ZeroExponentRunsOneIdleIteration) {
  const auto trace = modexp_traced(BigUInt(5), BigUInt(), BigUInt(11));
  ASSERT_EQ(trace.iterations.size(), 1u);
  EXPECT_FALSE(trace.iterations[0].multiply_active);
  EXPECT_EQ(trace.result.low_u64(), 1u);
}

TEST(ModExpTraced, ActiveIterationCountEqualsHammingWeight) {
  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    BigUInt exp;
    for (int b = 0; b < 64; ++b) {
      if (rng.bernoulli(0.4)) exp.set_bit(static_cast<std::size_t>(b));
    }
    if (exp.is_zero()) exp = BigUInt(1);
    const auto trace = modexp_traced(BigUInt(3), exp, BigUInt(1'000'003));
    std::size_t active = 0;
    for (const auto& it : trace.iterations) {
      if (it.multiply_active) ++active;
    }
    EXPECT_EQ(active, exp.hamming_weight());
  }
}

}  // namespace
}  // namespace amperebleed::crypto
