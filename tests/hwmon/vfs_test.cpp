#include "amperebleed/hwmon/vfs.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <set>
#include <string>
#include <string_view>

#include "amperebleed/obs/obs.hpp"

namespace amperebleed::hwmon {
namespace {

TEST(VirtualFs, MkdirsCreatesNestedTree) {
  VirtualFs fs;
  fs.mkdirs("/sys/class/hwmon");
  EXPECT_TRUE(fs.exists("/sys"));
  EXPECT_TRUE(fs.is_directory("/sys/class"));
  EXPECT_TRUE(fs.is_directory("/sys/class/hwmon"));
  EXPECT_FALSE(fs.exists("/sys/class/hwmon/hwmon0"));
}

TEST(VirtualFs, AddFileCreatesParentsAndReads) {
  VirtualFs fs;
  fs.add_file("/a/b/value", 0444, []() { return "42\n"; });
  const auto r = fs.read("/a/b/value", false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, "42\n");
}

TEST(VirtualFs, DuplicateFileThrows) {
  VirtualFs fs;
  fs.add_file("/x", 0444, []() { return ""; });
  EXPECT_THROW(fs.add_file("/x", 0444, []() { return ""; }),
               std::runtime_error);
}

TEST(VirtualFs, FileBlockingDirectoryThrows) {
  VirtualFs fs;
  fs.add_file("/x", 0444, []() { return ""; });
  EXPECT_THROW(fs.mkdirs("/x/y"), std::runtime_error);
}

TEST(VirtualFs, ReadMissingIsNotFound) {
  VirtualFs fs;
  EXPECT_EQ(fs.read("/nope", false).status, VfsStatus::NotFound);
}

TEST(VirtualFs, ReadDirectoryIsError) {
  VirtualFs fs;
  fs.mkdirs("/d");
  EXPECT_EQ(fs.read("/d", false).status, VfsStatus::IsDirectory);
}

TEST(VirtualFs, PermissionBitsEnforced) {
  VirtualFs fs;
  fs.add_file("/world", 0444, []() { return "w"; });
  fs.add_file("/root_only", 0400, []() { return "r"; });
  EXPECT_TRUE(fs.read("/world", false).ok());
  EXPECT_TRUE(fs.read("/world", true).ok());
  EXPECT_EQ(fs.read("/root_only", false).status,
            VfsStatus::PermissionDenied);
  EXPECT_TRUE(fs.read("/root_only", true).ok());
}

TEST(VirtualFs, WritePermissions) {
  VirtualFs fs;
  std::string stored;
  fs.add_file(
      "/attr", 0644, []() { return "v"; },
      [&stored](std::string_view data) {
        stored = std::string(data);
        return true;
      });
  // 0644: root can write, user cannot.
  EXPECT_EQ(fs.write("/attr", "x", false).status,
            VfsStatus::PermissionDenied);
  EXPECT_TRUE(fs.write("/attr", "35", true).ok());
  EXPECT_EQ(stored, "35");
}

TEST(VirtualFs, WriteWithoutHandlerIsNotWritable) {
  VirtualFs fs;
  fs.add_file("/ro", 0644, []() { return "v"; });
  EXPECT_EQ(fs.write("/ro", "x", true).status, VfsStatus::NotWritable);
}

TEST(VirtualFs, WriteRejectionIsInvalidArgument) {
  VirtualFs fs;
  fs.add_file(
      "/strict", 0644, []() { return "v"; },
      [](std::string_view) { return false; });
  EXPECT_EQ(fs.write("/strict", "garbage", true).status,
            VfsStatus::InvalidArgument);
}

TEST(VirtualFs, WriteMissingAndDirectory) {
  VirtualFs fs;
  fs.mkdirs("/d");
  EXPECT_EQ(fs.write("/missing", "x", true).status, VfsStatus::NotFound);
  EXPECT_EQ(fs.write("/d", "x", true).status, VfsStatus::IsDirectory);
}

TEST(VirtualFs, ListIsSortedAndScoped) {
  VirtualFs fs;
  fs.add_file("/dir/zeta", 0444, []() { return ""; });
  fs.add_file("/dir/alpha", 0444, []() { return ""; });
  fs.mkdirs("/dir/beta");
  const auto names = fs.list("/dir");
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "beta");
  EXPECT_EQ(names[2], "zeta");
  EXPECT_TRUE(fs.list("/missing").empty());
}

TEST(VirtualFs, ChmodChangesEnforcement) {
  VirtualFs fs;
  fs.add_file("/f", 0444, []() { return "x"; });
  EXPECT_TRUE(fs.read("/f", false).ok());
  fs.chmod("/f", 0400);
  EXPECT_EQ(fs.read("/f", false).status, VfsStatus::PermissionDenied);
  EXPECT_EQ(fs.mode_of("/f"), 0400);
  EXPECT_THROW(fs.chmod("/missing", 0444), std::runtime_error);
  fs.mkdirs("/d");
  EXPECT_THROW(fs.chmod("/d", 0444), std::runtime_error);
}

TEST(VirtualFs, ModeOfMissingIsMinusOne) {
  VirtualFs fs;
  EXPECT_EQ(fs.mode_of("/nope"), -1);
}

TEST(VirtualFs, PathNormalizationIgnoresExtraSlashes) {
  VirtualFs fs;
  fs.add_file("/a/b", 0444, []() { return "v"; });
  EXPECT_TRUE(fs.read("//a///b", false).ok());
  EXPECT_TRUE(fs.read("a/b", false).ok());
}

TEST(VfsStatusName, AllNamed) {
  EXPECT_EQ(vfs_status_name(VfsStatus::Ok), "ok");
  EXPECT_EQ(vfs_status_name(VfsStatus::PermissionDenied),
            "permission-denied");
  EXPECT_EQ(vfs_status_name(VfsStatus::InvalidArgument), "invalid-argument");
  EXPECT_EQ(vfs_status_name(VfsStatus::TryAgain), "try-again");
}

TEST(VirtualFs, ReadFaultHookInterceptsReads) {
  VirtualFs fs;
  fs.add_file("/flaky", 0444, []() { return "42\n"; });
  EXPECT_FALSE(fs.has_read_fault_hook());

  int calls = 0;
  fs.set_read_fault_hook(
      [&](std::string_view path, bool privileged, VfsResult clean) {
        ++calls;
        EXPECT_EQ(path, "/flaky");
        EXPECT_FALSE(privileged);
        EXPECT_TRUE(clean.ok());
        EXPECT_EQ(clean.data, "42\n");
        if (calls == 1) return VfsResult{VfsStatus::TryAgain, {}};
        return clean;
      });
  EXPECT_TRUE(fs.has_read_fault_hook());

  // First read faulted, second surfaces the clean result untouched.
  EXPECT_EQ(fs.read("/flaky", false).status, VfsStatus::TryAgain);
  EXPECT_EQ(fs.read("/flaky", false).data, "42\n");
  EXPECT_EQ(calls, 2);

  // Only one injector may own the seam at a time; detaching frees it.
  EXPECT_THROW(fs.set_read_fault_hook(
                   [](std::string_view, bool, VfsResult clean) {
                     return clean;
                   }),
               std::logic_error);
  fs.set_read_fault_hook(nullptr);
  EXPECT_FALSE(fs.has_read_fault_hook());
  EXPECT_TRUE(fs.read("/flaky", false).ok());
}

TEST(VirtualFs, FaultHookSeesPermissionFailures) {
  // The hook wraps the *clean result* of every read — including permission
  // failures — so an injector sees every access and its per-path sequence
  // numbers stay honest regardless of the policy in force.
  VirtualFs fs;
  fs.add_file("/root_only", 0400, []() { return "1\n"; });
  int calls = 0;
  fs.set_read_fault_hook(
      [&](std::string_view, bool, VfsResult clean) {
        ++calls;
        EXPECT_EQ(clean.status, VfsStatus::PermissionDenied);
        return clean;
      });
  EXPECT_EQ(fs.read("/root_only", false).status,
            VfsStatus::PermissionDenied);
  EXPECT_EQ(calls, 1);
}

TEST(VfsStatusName, RoundTripsEveryStatus) {
  std::set<std::string> names;
  for (const VfsStatus s : kAllVfsStatuses) {
    const std::string name(vfs_status_name(s));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate name: " << name;
    const auto back = vfs_status_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, s);
  }
  EXPECT_EQ(names.size(), std::size(kAllVfsStatuses));
  EXPECT_FALSE(vfs_status_from_name("no-such-status").has_value());
  EXPECT_FALSE(vfs_status_from_name("").has_value());
  EXPECT_FALSE(vfs_status_from_name("OK").has_value());  // case-sensitive
}

// ---------------------------------------------------------------------------
// Per-status obs counters: every read/write failure branch increments its own
// distinct "hwmon.vfs.<op>.<status-name>" counter.

class VfsObsCounters : public ::testing::Test {
 protected:
  void SetUp() override { obs::init(); }
  void TearDown() override { obs::shutdown(); }

  static std::uint64_t reads(VfsStatus s) {
    return obs::metrics()
        .counter_value("hwmon.vfs.read." + std::string(vfs_status_name(s)));
  }
  static std::uint64_t writes(VfsStatus s) {
    return obs::metrics()
        .counter_value("hwmon.vfs.write." + std::string(vfs_status_name(s)));
  }
};

TEST_F(VfsObsCounters, EveryReadBranchHasADistinctCounter) {
  VirtualFs fs;
  fs.mkdirs("/d");
  fs.add_file("/world", 0444, []() { return "w"; });
  fs.add_file("/root_only", 0400, []() { return "r"; });

  EXPECT_TRUE(fs.read("/world", false).ok());
  EXPECT_TRUE(fs.read("/world", true).ok());
  EXPECT_EQ(fs.read("/missing", false).status, VfsStatus::NotFound);
  EXPECT_EQ(fs.read("/d", false).status, VfsStatus::IsDirectory);
  EXPECT_EQ(fs.read("/root_only", false).status,
            VfsStatus::PermissionDenied);

  EXPECT_EQ(reads(VfsStatus::Ok), 2u);
  EXPECT_EQ(reads(VfsStatus::NotFound), 1u);
  EXPECT_EQ(reads(VfsStatus::IsDirectory), 1u);
  EXPECT_EQ(reads(VfsStatus::PermissionDenied), 1u);
  EXPECT_EQ(reads(VfsStatus::NotWritable), 0u);
  EXPECT_EQ(reads(VfsStatus::InvalidArgument), 0u);
  EXPECT_EQ(reads(VfsStatus::TryAgain), 0u);
}

TEST_F(VfsObsCounters, InjectedTryAgainLandsInItsOwnCounter) {
  // The surfaced (possibly faulted) status is what is metered: an injected
  // EAGAIN increments hwmon.vfs.read.try-again, not .ok.
  VirtualFs fs;
  fs.add_file("/flaky", 0444, []() { return "7\n"; });
  int n = 0;
  fs.set_read_fault_hook([&](std::string_view, bool, VfsResult clean) {
    return ++n == 1 ? VfsResult{VfsStatus::TryAgain, {}} : clean;
  });
  EXPECT_EQ(fs.read("/flaky", false).status, VfsStatus::TryAgain);
  EXPECT_TRUE(fs.read("/flaky", false).ok());
  EXPECT_EQ(reads(VfsStatus::TryAgain), 1u);
  EXPECT_EQ(reads(VfsStatus::Ok), 1u);
}

TEST_F(VfsObsCounters, EveryWriteBranchHasADistinctCounter) {
  VirtualFs fs;
  fs.mkdirs("/d");
  fs.add_file(
      "/attr", 0644, []() { return "v"; },
      [](std::string_view data) { return data == "good"; });
  fs.add_file("/ro", 0644, []() { return "v"; });

  EXPECT_TRUE(fs.write("/attr", "good", true).ok());
  EXPECT_EQ(fs.write("/attr", "bad", true).status,
            VfsStatus::InvalidArgument);
  EXPECT_EQ(fs.write("/attr", "x", false).status,
            VfsStatus::PermissionDenied);
  EXPECT_EQ(fs.write("/ro", "x", true).status, VfsStatus::NotWritable);
  EXPECT_EQ(fs.write("/missing", "x", true).status, VfsStatus::NotFound);
  EXPECT_EQ(fs.write("/d", "x", true).status, VfsStatus::IsDirectory);

  for (const VfsStatus s :
       {VfsStatus::Ok, VfsStatus::InvalidArgument, VfsStatus::PermissionDenied,
        VfsStatus::NotWritable, VfsStatus::NotFound, VfsStatus::IsDirectory}) {
    EXPECT_EQ(writes(s), 1u) << vfs_status_name(s);
  }
  // Write accounting never bleeds into the read counters.
  EXPECT_EQ(reads(VfsStatus::Ok), 0u);
}

TEST_F(VfsObsCounters, AccessesLandInAuditLogWithCoarseOutcome) {
  VirtualFs fs;
  fs.add_file("/curr1_input", 0400, []() { return "1500\n"; });
  {
    obs::PrincipalScope scope("attacker");
    EXPECT_EQ(fs.read("/curr1_input", false).status,
              VfsStatus::PermissionDenied);
  }
  EXPECT_TRUE(fs.read("/curr1_input", true).ok());
  static_cast<void>(fs.read("/missing", true));  // -> Error outcome

  EXPECT_EQ(obs::audit_log().total_accesses(), 3u);
  EXPECT_EQ(obs::audit_log().total_denials(), 1u);
  bool saw_attacker_denial = false;
  for (const auto& s : obs::audit_log().stats()) {
    if (s.principal == "attacker") {
      EXPECT_EQ(s.denied, 1u);
      EXPECT_EQ(s.path, "/curr1_input");
      saw_attacker_denial = true;
    }
  }
  EXPECT_TRUE(saw_attacker_denial);
}

TEST(VfsObsDisabled, NoCountersOrAuditWhileObsIsOff) {
  obs::shutdown();
  VirtualFs fs;
  fs.add_file("/f", 0400, []() { return "x"; });
  static_cast<void>(fs.read("/f", false));
  EXPECT_FALSE(obs::metrics().has_counter("hwmon.vfs.read.permission-denied"));
  EXPECT_EQ(obs::audit_log().total_accesses(), 0u);
}

}  // namespace
}  // namespace amperebleed::hwmon
