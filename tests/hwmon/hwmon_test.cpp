#include "amperebleed/hwmon/hwmon.hpp"

#include <gtest/gtest.h>

#include "amperebleed/util/strings.hpp"

namespace amperebleed::hwmon {
namespace {

power::RailNoiseConfig no_noise() {
  power::RailNoiseConfig n;
  n.current_white_amps = 0.0;
  n.current_drift_fraction = 0.0;
  n.voltage_white_volts = 0.0;
  n.voltage_drift_volts = 0.0;
  n.thermal_nonlinearity_per_amp = 0.0;
  return n;
}

class HwmonFixture : public ::testing::Test {
 protected:
  HwmonFixture()
      : sensor_(sensors::Ina226Config{}, no_noise(), 1),
        current_(1.5),
        voltage_(0.85) {
    sensor_.bind(&current_, &voltage_);
  }

  HwmonSubsystem hwmon_;
  sensors::Ina226 sensor_;
  sim::PiecewiseConstant current_;
  sim::PiecewiseConstant voltage_;
};

TEST_F(HwmonFixture, RegisterCreatesDeviceTree) {
  const int idx = hwmon_.register_ina226("ina226_u79", sensor_, nullptr);
  EXPECT_EQ(idx, 0);
  EXPECT_EQ(hwmon_.device_path(0), "/sys/class/hwmon/hwmon0");
  const auto& fs = hwmon_.fs();
  for (const char* attr : {"name", "curr1_input", "in0_input", "in1_input",
                           "power1_input", "update_interval",
                           "shunt_resistor"}) {
    EXPECT_TRUE(fs.exists(hwmon_.attr_path(0, attr))) << attr;
  }
}

TEST_F(HwmonFixture, NameAttributeIsLabel) {
  hwmon_.register_ina226("ina226_u79", sensor_, nullptr);
  const auto r = hwmon_.fs().read("/sys/class/hwmon/hwmon0/name", false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, "ina226_u79\n");
}

TEST_F(HwmonFixture, CurrentReadInMilliampsAfterConversion) {
  hwmon_.register_ina226("ina226_u79", sensor_, nullptr);
  sensor_.advance_to(sim::milliseconds(40));
  const auto r = hwmon_.fs().read(hwmon_.attr_path(0, "curr1_input"), false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(util::parse_ll(r.data), 1500);
}

TEST_F(HwmonFixture, PreAccessHookRunsBeforeRead) {
  int hook_calls = 0;
  hwmon_.register_ina226("ina226_u79", sensor_, [&]() { ++hook_calls; });
  static_cast<void>(hwmon_.fs().read(hwmon_.attr_path(0, "curr1_input"), false));
  static_cast<void>(
      hwmon_.fs().read(hwmon_.attr_path(0, "power1_input"), false));
  EXPECT_EQ(hook_calls, 2);
}

TEST_F(HwmonFixture, VoltageAndPowerUnits) {
  hwmon_.register_ina226("ina226_u79", sensor_, nullptr);
  sensor_.advance_to(sim::milliseconds(40));
  const auto mv =
      util::parse_ll(hwmon_.fs().read(hwmon_.attr_path(0, "in1_input"), false).data);
  const auto uw = util::parse_ll(
      hwmon_.fs().read(hwmon_.attr_path(0, "power1_input"), false).data);
  ASSERT_TRUE(mv && uw);
  EXPECT_NEAR(static_cast<double>(*mv), 850.0, 1.5);
  // P = 1.5 A * 0.85 V = 1.275 W, quantized at 25 mW.
  EXPECT_NEAR(static_cast<double>(*uw) * 1e-6, 1.275, 0.025);
  EXPECT_EQ(*uw % 25'000, 0);
}

TEST_F(HwmonFixture, UpdateIntervalReadableByAll) {
  hwmon_.register_ina226("ina226_u79", sensor_, nullptr);
  const auto r =
      hwmon_.fs().read(hwmon_.attr_path(0, "update_interval"), false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(util::parse_ll(r.data), 35);  // 35.2 ms rounds to 35
}

TEST_F(HwmonFixture, UpdateIntervalWriteRequiresRoot) {
  hwmon_.register_ina226("ina226_u79", sensor_, nullptr);
  const std::string path = hwmon_.attr_path(0, "update_interval");
  // Unprivileged write denied — the attacker is stuck with the default.
  EXPECT_EQ(hwmon_.fs().write(path, "2", false).status,
            VfsStatus::PermissionDenied);
  // Root can reconfigure: 2 ms -> AVG=1 at 2.2 ms per round.
  EXPECT_TRUE(hwmon_.fs().write(path, "2", true).ok());
  EXPECT_EQ(sensor_.update_interval(), sim::microseconds(2'200));
  // Garbage is EINVAL.
  EXPECT_EQ(hwmon_.fs().write(path, "fast", true).status,
            VfsStatus::InvalidArgument);
  EXPECT_EQ(hwmon_.fs().write(path, "-5", true).status,
            VfsStatus::InvalidArgument);
}

TEST_F(HwmonFixture, UpdateIntervalSnapsToSupportedAveraging) {
  hwmon_.register_ina226("ina226_u79", sensor_, nullptr);
  const std::string path = hwmon_.attr_path(0, "update_interval");
  ASSERT_TRUE(hwmon_.fs().write(path, "100", true).ok());
  // Nearest avg choice to 100 ms at 2.2 ms/round is 64 (140.8) vs 16 (35.2):
  // |35.2-100|=64.8, |140.8-100|=40.8 -> avg 64.
  EXPECT_EQ(sensor_.update_interval(), sim::microseconds(64 * 2'200));
}

TEST_F(HwmonFixture, FindDeviceByLabel) {
  sensors::Ina226 other(sensors::Ina226Config{}, no_noise(), 2);
  other.bind(&current_, &voltage_);
  hwmon_.register_ina226("ina226_u76", sensor_, nullptr);
  hwmon_.register_ina226("ina226_u79", other, nullptr);
  EXPECT_EQ(hwmon_.find_device("ina226_u79"), 1);
  EXPECT_EQ(hwmon_.find_device("ina226_u76"), 0);
  EXPECT_FALSE(hwmon_.find_device("ina226_u93").has_value());
  EXPECT_EQ(hwmon_.device_labels().size(), 2u);
}

TEST_F(HwmonFixture, MitigationPolicyBlocksUnprivilegedReads) {
  hwmon_.register_ina226("ina226_u79", sensor_, nullptr);
  const std::string curr = hwmon_.attr_path(0, "curr1_input");
  EXPECT_TRUE(hwmon_.fs().read(curr, false).ok());

  hwmon_.set_policy(HwmonPolicy{.unprivileged_sensor_read = false});
  EXPECT_EQ(hwmon_.fs().read(curr, false).status,
            VfsStatus::PermissionDenied);
  // Root still works (benign monitoring tools keep functioning).
  EXPECT_TRUE(hwmon_.fs().read(curr, true).ok());
  // The name attribute stays world-readable; only measurements lock down.
  EXPECT_TRUE(hwmon_.fs().read(hwmon_.attr_path(0, "name"), false).ok());

  hwmon_.set_policy(HwmonPolicy{.unprivileged_sensor_read = true});
  EXPECT_TRUE(hwmon_.fs().read(curr, false).ok());
}

TEST_F(HwmonFixture, QuantizeDefenseCoarsensReadings) {
  hwmon_.register_ina226("ina226_u79", sensor_, nullptr);
  sensor_.advance_to(sim::milliseconds(40));
  const std::string path = hwmon_.attr_path(0, "curr1_input");

  // Without the defense: 1.5 A reads as 1500 mA.
  EXPECT_EQ(util::parse_ll(hwmon_.fs().read(path, false).data), 1500);

  HwmonPolicy policy;
  policy.quantize_factor = 100;  // 100 mA granularity
  hwmon_.set_policy(policy);
  const auto coarse = util::parse_ll(hwmon_.fs().read(path, false).data);
  ASSERT_TRUE(coarse.has_value());
  EXPECT_EQ(*coarse % 100, 0);
  EXPECT_EQ(*coarse, 1500);  // multiple of 100 already; stays put

  policy.quantize_factor = 400;
  hwmon_.set_policy(policy);
  const auto coarser = util::parse_ll(hwmon_.fs().read(path, false).data);
  EXPECT_EQ(*coarser, 1600);  // rounded to the 400 mA grid
}

TEST_F(HwmonFixture, NoiseDefensePerturbationBounded) {
  hwmon_.register_ina226("ina226_u79", sensor_, nullptr);
  sensor_.advance_to(sim::milliseconds(40));
  HwmonPolicy policy;
  policy.noise_lsb = 20.0;  // +/-20 mA of driver noise
  hwmon_.set_policy(policy);
  const std::string path = hwmon_.attr_path(0, "curr1_input");
  bool saw_nonzero_offset = false;
  for (int i = 0; i < 50; ++i) {
    const auto v = util::parse_ll(hwmon_.fs().read(path, false).data);
    ASSERT_TRUE(v.has_value());
    EXPECT_GE(*v, 1500 - 20);
    EXPECT_LE(*v, 1500 + 20);
    if (*v != 1500) saw_nonzero_offset = true;
  }
  EXPECT_TRUE(saw_nonzero_offset);
}

TEST_F(HwmonFixture, RateLimitDefenseFreezesReadings) {
  hwmon_.register_ina226("ina226_u79", sensor_, nullptr);
  sim::TimeNs now{0};
  hwmon_.set_clock([&now]() { return now; });
  HwmonPolicy policy;
  policy.min_read_interval = sim::milliseconds(500);
  hwmon_.set_policy(policy);
  const std::string path = hwmon_.attr_path(0, "curr1_input");

  // Current changes mid-run: 1.5 A -> 3 A at t=100 ms.
  current_.append(sim::milliseconds(100), 3.0);

  now = sim::milliseconds(40);
  sensor_.advance_to(now);
  const auto first = util::parse_ll(hwmon_.fs().read(path, false).data);
  EXPECT_EQ(first, 1500);

  // 200 ms later the sensor has converted the new load, but the cached
  // value is still fresh under the 500 ms limit.
  now = sim::milliseconds(240);
  sensor_.advance_to(now);
  EXPECT_EQ(util::parse_ll(hwmon_.fs().read(path, false).data), 1500);

  // Past the interval, the new value flows through.
  now = sim::milliseconds(600);
  sensor_.advance_to(now);
  const auto later = util::parse_ll(hwmon_.fs().read(path, false).data);
  ASSERT_TRUE(later.has_value());
  EXPECT_GT(*later, 2900);
}

TEST(HwmonSubsystem, PolicyAppliesToDevicesRegisteredAfterwards) {
  HwmonSubsystem hw(HwmonPolicy{.unprivileged_sensor_read = false});
  sensors::Ina226 dev(sensors::Ina226Config{}, no_noise(), 3);
  sim::PiecewiseConstant i(0.0);
  sim::PiecewiseConstant v(0.85);
  dev.bind(&i, &v);
  hw.register_ina226("ina226_u76", dev, nullptr);
  EXPECT_EQ(hw.fs().read(hw.attr_path(0, "curr1_input"), false).status,
            VfsStatus::PermissionDenied);
}

}  // namespace
}  // namespace amperebleed::hwmon
