#include "amperebleed/fpga/power_virus.hpp"

#include <gtest/gtest.h>

namespace amperebleed::fpga {
namespace {

TEST(PowerVirus, DefaultMatchesPaperSetup) {
  PowerVirus virus;
  EXPECT_EQ(virus.config().instance_count, 160'000u);
  EXPECT_EQ(virus.config().group_count, 160u);
  EXPECT_EQ(virus.instances_per_group(), 1'000u);
  // 40 uA per instance -> 40 mA (=40 LSB) per activated group.
  const double per_group =
      virus.current_for_groups(1) - virus.current_for_groups(0);
  EXPECT_NEAR(per_group, 0.040, 1e-12);
}

TEST(PowerVirus, StaticFloorFromDeployedInstances) {
  PowerVirus virus;
  EXPECT_NEAR(virus.static_current(), 0.64, 1e-12);
  EXPECT_NEAR(virus.current_for_groups(0), 0.64, 1e-12);
}

TEST(PowerVirus, FullActivationCurrent) {
  PowerVirus virus;
  EXPECT_NEAR(virus.current_for_groups(160), 0.64 + 6.4, 1e-9);
}

TEST(PowerVirus, Validation) {
  PowerVirusConfig bad;
  bad.group_count = 0;
  EXPECT_THROW(PowerVirus{bad}, std::invalid_argument);
  PowerVirusConfig uneven;
  uneven.instance_count = 100;
  uneven.group_count = 3;
  EXPECT_THROW(PowerVirus{uneven}, std::invalid_argument);
  PowerVirus virus;
  EXPECT_THROW(static_cast<void>(virus.current_for_groups(161)),
               std::invalid_argument);
}

TEST(PowerVirus, DescriptorUsesConfiguredFootprint) {
  PowerVirus virus;
  const CircuitDescriptor d = virus.descriptor();
  EXPECT_EQ(d.usage.luts, 160'000u);
  EXPECT_EQ(d.usage.flip_flops, 160'000u);
  EXPECT_FALSE(d.encrypted);
}

TEST(PowerVirus, ActivationScheduleBuildsFpgaRailSignal) {
  PowerVirus virus;
  virus.set_active_groups(sim::milliseconds(10), 10);
  virus.set_active_groups(sim::milliseconds(20), 160);
  virus.set_active_groups(sim::milliseconds(30), 0);
  const auto activity = virus.activity();
  const auto& fpga = activity.on(power::Rail::FpgaLogic);
  EXPECT_NEAR(fpga.value_at(sim::TimeNs{0}), 0.64, 1e-12);
  EXPECT_NEAR(fpga.value_at(sim::milliseconds(15)), 0.64 + 0.4, 1e-9);
  EXPECT_NEAR(fpga.value_at(sim::milliseconds(25)), 0.64 + 6.4, 1e-9);
  EXPECT_NEAR(fpga.value_at(sim::milliseconds(35)), 0.64, 1e-12);
  // Other rails are untouched.
  EXPECT_DOUBLE_EQ(activity.on(power::Rail::Ddr).value_at(sim::TimeNs{0}), 0.0);
}

TEST(PowerVirus, CommandsMustBeTimeOrdered) {
  PowerVirus virus;
  virus.set_active_groups(sim::milliseconds(10), 5);
  EXPECT_THROW(virus.set_active_groups(sim::milliseconds(10), 6),
               std::invalid_argument);
  EXPECT_THROW(virus.set_active_groups(sim::milliseconds(5), 6),
               std::invalid_argument);
  EXPECT_THROW(virus.set_active_groups(sim::milliseconds(20), 161),
               std::invalid_argument);
}

class VirusLinearityProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VirusLinearityProperty, CurrentIsAffineInGroups) {
  PowerVirus virus;
  const std::size_t g = GetParam();
  const double expected = virus.static_current() + 0.040 * static_cast<double>(g);
  EXPECT_NEAR(virus.current_for_groups(g), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Groups, VirusLinearityProperty,
                         ::testing::Values(0u, 1u, 10u, 80u, 159u, 160u));

}  // namespace
}  // namespace amperebleed::fpga
