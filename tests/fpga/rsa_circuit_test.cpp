#include "amperebleed/fpga/rsa_circuit.hpp"

#include <gtest/gtest.h>

#include "amperebleed/crypto/rsa.hpp"

namespace amperebleed::fpga {
namespace {

RsaCircuitConfig small_config() {
  RsaCircuitConfig c;
  c.key_bits = 64;  // keep functional tests fast
  c.cycles_per_iteration = 100;
  return c;
}

crypto::RsaKey small_key(std::size_t hw, std::uint64_t seed = 1) {
  crypto::RsaKey key;
  key.modulus = crypto::BigUInt(0xffffffffffffffc5ULL);  // odd 64-bit modulus
  key.private_exponent = crypto::exponent_with_hamming_weight(64, hw, seed);
  return key;
}

TEST(RsaCircuit, Validation) {
  crypto::RsaKey zero_exp;
  zero_exp.modulus = crypto::BigUInt(11);
  EXPECT_THROW(RsaCircuit(small_config(), zero_exp), std::invalid_argument);

  crypto::RsaKey wide = small_key(10);
  wide.private_exponent.set_bit(100);  // wider than key_bits=64
  EXPECT_THROW(RsaCircuit(small_config(), wide), std::invalid_argument);

  crypto::RsaKey no_mod = small_key(10);
  no_mod.modulus = crypto::BigUInt();
  EXPECT_THROW(RsaCircuit(small_config(), no_mod), std::invalid_argument);
}

TEST(RsaCircuit, TimingDerivedFromClock) {
  RsaCircuit circuit(small_config(), small_key(10));
  // 100 cycles @ 100 MHz = 1 us per iteration; 64 iterations per exp.
  EXPECT_EQ(circuit.iteration_duration(), sim::microseconds(1));
  EXPECT_EQ(circuit.exponentiation_duration(), sim::microseconds(64));
}

TEST(RsaCircuit, ExponentiationDurationIndependentOfKey) {
  // The state machine walks all key_bits bits regardless of the exponent's
  // numeric width — no timing leak, only amplitude.
  RsaCircuit low(small_config(), small_key(1));
  RsaCircuit high(small_config(), small_key(64));
  EXPECT_EQ(low.exponentiation_duration(), high.exponentiation_duration());
}

TEST(RsaCircuit, MeanCurrentGrowsWithHammingWeight) {
  const RsaCircuitConfig c = small_config();
  double previous = -1.0;
  for (std::size_t hw : {1u, 16u, 32u, 48u, 64u}) {
    RsaCircuit circuit(c, small_key(hw));
    EXPECT_EQ(circuit.key_hamming_weight(), hw);
    const double mean = circuit.mean_encryption_current();
    EXPECT_GT(mean, previous);
    previous = mean;
  }
}

TEST(RsaCircuit, MeanCurrentFormula) {
  const RsaCircuitConfig c = small_config();
  RsaCircuit circuit(c, small_key(32));  // 50% multiply duty
  const double expected = c.idle_current_amps + c.controller_current_amps +
                          c.square_multiplier_current_amps +
                          0.5 * c.multiply_multiplier_current_amps;
  EXPECT_NEAR(circuit.mean_encryption_current(), expected, 1e-12);
}

TEST(RsaCircuit, ScheduleCountsCompleteEncryptions) {
  RsaCircuit circuit(small_config(), small_key(10));
  // Exponentiation = 64 us + 0.64 us gap; in 500 us fit 7 full encryptions.
  const auto s =
      circuit.schedule(sim::TimeNs{0}, sim::microseconds(500));
  EXPECT_EQ(s.encryption_count, 7u);
}

TEST(RsaCircuit, ScheduleMeanMatchesMeanEncryptionCurrent) {
  RsaCircuit circuit(small_config(), small_key(32));
  const auto s = circuit.schedule(sim::TimeNs{0}, sim::microseconds(64));
  ASSERT_EQ(s.encryption_count, 1u);
  const auto& fpga = s.activity.on(power::Rail::FpgaLogic);
  EXPECT_NEAR(fpga.mean(sim::TimeNs{0}, sim::microseconds(64)),
              circuit.mean_encryption_current(), 1e-12);
}

TEST(RsaCircuit, PerIterationGranularityExposesBitPattern) {
  const RsaCircuitConfig c = small_config();
  crypto::RsaKey key = small_key(32, 3);
  const crypto::BigUInt exponent = key.private_exponent;
  RsaCircuit circuit(c, std::move(key));
  const auto s = circuit.schedule(sim::TimeNs{0}, sim::microseconds(64),
                                  RsaGranularity::PerIteration);
  const auto& fpga = s.activity.on(power::Rail::FpgaLogic);
  const double base = c.idle_current_amps + c.controller_current_amps +
                      c.square_multiplier_current_amps;
  for (std::size_t bit = 0; bit < 64; ++bit) {
    const auto t = sim::TimeNs{static_cast<std::int64_t>(bit) * 1000 + 500};
    const double expected =
        exponent.bit(bit) ? base + c.multiply_multiplier_current_amps : base;
    EXPECT_NEAR(fpga.value_at(t), expected, 1e-12) << "bit " << bit;
  }
}

TEST(RsaCircuit, IdleOutsideEncryptions) {
  const RsaCircuitConfig c = small_config();
  RsaCircuit circuit(c, small_key(5));
  const auto s = circuit.schedule(sim::milliseconds(1), sim::milliseconds(2));
  const auto& fpga = s.activity.on(power::Rail::FpgaLogic);
  EXPECT_NEAR(fpga.value_at(sim::TimeNs{0}), c.idle_current_amps, 1e-12);
  EXPECT_NEAR(fpga.value_at(sim::milliseconds(3)), c.idle_current_amps, 1e-12);
}

TEST(RsaCircuit, EncryptMatchesReferenceModexp) {
  crypto::RsaKey key = small_key(20, 7);
  const crypto::BigUInt d = key.private_exponent;
  const crypto::BigUInt n = key.modulus;
  RsaCircuit circuit(small_config(), std::move(key));
  const crypto::BigUInt msg(0x1234567890abcdefULL);
  EXPECT_EQ(circuit.encrypt(msg), crypto::modexp(msg, d, n));
}

TEST(RsaCircuit, DescriptorIsEncryptedIp) {
  RsaCircuit circuit(small_config(), small_key(10));
  EXPECT_TRUE(circuit.descriptor().encrypted);
  EXPECT_EQ(circuit.descriptor().name, "rsa1024");
}

TEST(RsaCircuit, EndBeforeStartThrows) {
  RsaCircuit circuit(small_config(), small_key(10));
  EXPECT_THROW(circuit.schedule(sim::milliseconds(2), sim::milliseconds(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace amperebleed::fpga
