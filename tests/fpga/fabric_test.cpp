#include "amperebleed/fpga/fabric.hpp"

#include <gtest/gtest.h>

namespace amperebleed::fpga {
namespace {

TEST(FabricResources, Zcu102NumbersMatchPaper) {
  const FabricResources r = zcu102_resources();
  EXPECT_EQ(r.luts, 274'080u);
  EXPECT_EQ(r.flip_flops, 548'160u);
  EXPECT_EQ(r.dsp_slices, 2'520u);
}

TEST(FabricResources, FitsChecksEveryDimension) {
  const FabricResources budget{100, 100, 10, 10};
  EXPECT_TRUE(budget.fits({100, 100, 10, 10}));
  EXPECT_FALSE(budget.fits({101, 0, 0, 0}));
  EXPECT_FALSE(budget.fits({0, 101, 0, 0}));
  EXPECT_FALSE(budget.fits({0, 0, 11, 0}));
  EXPECT_FALSE(budget.fits({0, 0, 0, 11}));
}

TEST(Fabric, DeployAccumulatesUsage) {
  Fabric fabric;
  fabric.deploy({"a", {1000, 2000, 10, 5}, false});
  fabric.deploy({"b", {500, 100, 0, 0}, false});
  const FabricResources used = fabric.used();
  EXPECT_EQ(used.luts, 1500u);
  EXPECT_EQ(used.flip_flops, 2100u);
  EXPECT_EQ(fabric.available().luts, 274'080u - 1500u);
  EXPECT_TRUE(fabric.is_deployed("a"));
  EXPECT_FALSE(fabric.is_deployed("c"));
}

TEST(Fabric, RejectsOvercommit) {
  FabricConfig small;
  small.resources = {100, 100, 1, 1};
  Fabric fabric(small);
  fabric.deploy({"fits", {60, 0, 0, 0}, false});
  EXPECT_THROW(fabric.deploy({"too-big", {50, 0, 0, 0}, false}),
               std::runtime_error);
  // The failed deploy must not change state.
  EXPECT_EQ(fabric.used().luts, 60u);
}

TEST(Fabric, RejectsDuplicateNames) {
  Fabric fabric;
  fabric.deploy({"x", {1, 0, 0, 0}, false});
  EXPECT_THROW(fabric.deploy({"x", {1, 0, 0, 0}, false}), std::runtime_error);
}

TEST(Fabric, RemoveFreesResources) {
  Fabric fabric;
  fabric.deploy({"x", {1000, 0, 0, 0}, false});
  fabric.remove("x");
  EXPECT_EQ(fabric.used().luts, 0u);
  EXPECT_FALSE(fabric.is_deployed("x"));
  EXPECT_THROW(fabric.remove("x"), std::runtime_error);
}

TEST(Fabric, RejectsNonPositiveClock) {
  FabricConfig c;
  c.clock_mhz = 0.0;
  EXPECT_THROW(Fabric{c}, std::invalid_argument);
}

}  // namespace
}  // namespace amperebleed::fpga
