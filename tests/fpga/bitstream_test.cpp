#include "amperebleed/fpga/bitstream.hpp"

#include <gtest/gtest.h>

namespace amperebleed::fpga {
namespace {

TEST(Bitstream, AggregatesUsage) {
  Bitstream bs("victim");
  bs.add({"rsa", {31'000, 9'500, 0, 8}, true});
  bs.add({"ro_bank", {416, 1024, 0, 0}, false});
  const FabricResources total = bs.total_usage();
  EXPECT_EQ(total.luts, 31'416u);
  EXPECT_EQ(total.bram_blocks, 8u);
  EXPECT_TRUE(bs.contains_encrypted_ip());
}

TEST(Bitstream, RejectsDuplicateCircuits) {
  Bitstream bs("dup");
  bs.add({"x", {1, 0, 0, 0}, false});
  EXPECT_THROW(bs.add({"x", {1, 0, 0, 0}, false}), std::runtime_error);
}

TEST(Bitstream, ProgramsAtomically) {
  Bitstream bs("ok");
  bs.add({"a", {100, 0, 0, 0}, false});
  bs.add({"b", {200, 0, 0, 0}, false});
  Fabric fabric;
  bs.program(fabric);
  EXPECT_TRUE(fabric.is_deployed("a"));
  EXPECT_TRUE(fabric.is_deployed("b"));
}

TEST(Bitstream, ProgramFailsWithoutPartialDeploy) {
  FabricConfig small;
  small.resources = {250, 1000, 10, 10};
  Fabric fabric(small);
  Bitstream bs("too-big");
  bs.add({"a", {100, 0, 0, 0}, false});
  bs.add({"b", {200, 0, 0, 0}, false});  // sum exceeds the 250-LUT budget
  EXPECT_THROW(bs.program(fabric), std::runtime_error);
  EXPECT_FALSE(fabric.is_deployed("a"));
  EXPECT_FALSE(fabric.is_deployed("b"));
}

TEST(Bitstream, ProgramRejectsNameCollisionWithFabric) {
  Fabric fabric;
  fabric.deploy({"a", {1, 0, 0, 0}, false});
  Bitstream bs("collide");
  bs.add({"a", {1, 0, 0, 0}, false});
  EXPECT_THROW(bs.program(fabric), std::runtime_error);
}

TEST(Bitstream, NoEncryptedIpByDefault) {
  Bitstream bs("plain");
  bs.add({"a", {1, 0, 0, 0}, false});
  EXPECT_FALSE(bs.contains_encrypted_ip());
}

}  // namespace
}  // namespace amperebleed::fpga
