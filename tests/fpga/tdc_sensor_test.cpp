#include "amperebleed/fpga/tdc_sensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace amperebleed::fpga {
namespace {

TdcConfig quiet() {
  TdcConfig c;
  c.jitter_taps = 0.0;
  return c;
}

TEST(TdcSensor, Validation) {
  TdcConfig zero_taps;
  zero_taps.taps = 0;
  EXPECT_THROW(TdcSensor(zero_taps, 1), std::invalid_argument);
  TdcConfig bad_nominal;
  bad_nominal.nominal_taps = 500.0;  // beyond a 128-tap chain
  EXPECT_THROW(TdcSensor(bad_nominal, 1), std::invalid_argument);
  TdcConfig no_sense;
  no_sense.taps_per_volt = 0.0;
  EXPECT_THROW(TdcSensor(no_sense, 1), std::invalid_argument);
}

TEST(TdcSensor, NominalAtReferenceVoltage) {
  TdcSensor tdc(quiet(), 1);
  EXPECT_DOUBLE_EQ(tdc.expected_taps(0.850), 64.0);
}

TEST(TdcSensor, TapsRiseWithVoltage) {
  TdcSensor tdc(quiet(), 1);
  EXPECT_GT(tdc.expected_taps(0.876), tdc.expected_taps(0.850));
  EXPECT_LT(tdc.expected_taps(0.825), tdc.expected_taps(0.850));
  // Linear model: 220 taps/V.
  EXPECT_NEAR(tdc.expected_taps(0.876) - tdc.expected_taps(0.850),
              220.0 * 0.026, 1e-9);
}

TEST(TdcSensor, ClampsToChainEnds) {
  TdcSensor tdc(quiet(), 1);
  EXPECT_DOUBLE_EQ(tdc.expected_taps(0.0), 0.0);
  EXPECT_DOUBLE_EQ(tdc.expected_taps(10.0), 128.0);
}

TEST(TdcSensor, SamplesAreIntegerTaps) {
  TdcConfig noisy;
  noisy.jitter_taps = 1.5;
  TdcSensor tdc(noisy, 2);
  sim::PiecewiseConstant v(0.850);
  for (int i = 0; i < 20; ++i) {
    const double s = tdc.sample(v, sim::microseconds(i));
    EXPECT_DOUBLE_EQ(s, std::round(s));
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 128.0);
  }
}

TEST(TdcSensor, InstantaneousReadoutSeesTransients) {
  // Unlike the RO's windowed counter, a TDC readout lands on the value at
  // its capture instant — it can catch a short voltage dip exactly.
  TdcSensor tdc(quiet(), 3);
  sim::PiecewiseConstant v(0.850);
  v.append(sim::microseconds(10), 0.840);
  v.append(sim::microseconds(12), 0.850);
  EXPECT_LT(tdc.sample(v, sim::microseconds(11)),
            tdc.sample(v, sim::microseconds(5)));
}

TEST(TdcSensor, DeterministicPerSeed) {
  TdcConfig noisy;
  noisy.jitter_taps = 1.0;
  TdcSensor a(noisy, 7);
  TdcSensor b(noisy, 7);
  sim::PiecewiseConstant v(0.850);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.sample(v, sim::microseconds(i)),
                     b.sample(v, sim::microseconds(i)));
  }
}

TEST(TdcSensor, DescriptorFootprint) {
  TdcSensor tdc(quiet(), 1);
  EXPECT_EQ(tdc.descriptor().name, "tdc_sensor");
  EXPECT_GT(tdc.descriptor().usage.luts, 0u);
}

}  // namespace
}  // namespace amperebleed::fpga
