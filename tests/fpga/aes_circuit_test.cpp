#include "amperebleed/fpga/aes_circuit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "amperebleed/stats/descriptive.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::fpga {
namespace {

crypto::Aes128::Key key_with_pattern(std::uint8_t fill) {
  crypto::Aes128::Key key{};
  key.fill(fill);
  return key;
}

TEST(AesCircuit, Validation) {
  AesCircuitConfig bad;
  bad.clock_mhz = 0.0;
  EXPECT_THROW(AesCircuit(bad, key_with_pattern(0)), std::invalid_argument);
  AesCircuitConfig chunk;
  chunk.sampled_blocks_per_chunk = 0;
  EXPECT_THROW(AesCircuit(chunk, key_with_pattern(0)), std::invalid_argument);
}

TEST(AesCircuit, TimingFromClock) {
  AesCircuit circuit(AesCircuitConfig{}, key_with_pattern(0x5a));
  // 11 cycles @ 250 MHz = 44 ns per block.
  EXPECT_EQ(circuit.block_duration(), sim::nanoseconds(44));
  EXPECT_NEAR(circuit.blocks_per_second(), 250e6 / 11.0, 1.0);
}

TEST(AesCircuit, EncryptMatchesReferenceCipher) {
  const auto key = key_with_pattern(0x13);
  AesCircuit circuit(AesCircuitConfig{}, key);
  const crypto::Aes128 reference(key);
  crypto::Aes128::Block pt{};
  pt.fill(0xab);
  EXPECT_EQ(circuit.encrypt(pt), reference.encrypt_block(pt));
}

TEST(AesCircuit, ScheduleCoversWindowAndCountsBlocks) {
  AesCircuit circuit(AesCircuitConfig{}, key_with_pattern(0x77));
  const auto s =
      circuit.schedule(sim::TimeNs{0}, sim::milliseconds(100), 1);
  // 22.7M blocks/s * 0.1 s ~ 2.27M blocks.
  EXPECT_NEAR(static_cast<double>(s.blocks_encrypted), 2.27e6, 0.05e6);
  const auto& fpga = s.activity.on(power::Rail::FpgaLogic);
  EXPECT_GT(fpga.value_at(sim::milliseconds(50)),
            circuit.config().idle_current_amps);
  EXPECT_DOUBLE_EQ(fpga.value_at(sim::milliseconds(150)),
                   circuit.config().idle_current_amps);
}

TEST(AesCircuit, MeanCurrentNearNominalForAnyKey) {
  // The cipher's diffusion pins per-chunk toggle counts to ~50% activity
  // regardless of key — the structural reason the negative control holds.
  util::Rng rng(3);
  for (int trial = 0; trial < 4; ++trial) {
    crypto::Aes128::Key key{};
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.uniform_below(256));
    AesCircuit circuit(AesCircuitConfig{}, key);
    const auto s =
        circuit.schedule(sim::TimeNs{0}, sim::milliseconds(200), 42 + trial);
    const auto& fpga = s.activity.on(power::Rail::FpgaLogic);
    const double mean = fpga.mean(sim::TimeNs{0}, sim::milliseconds(200));
    const double nominal = circuit.config().idle_current_amps +
                           circuit.config().core_current_amps;
    EXPECT_NEAR(mean, nominal, 0.002) << "trial " << trial;
  }
}

TEST(AesCircuit, KeysAreCurrentIndistinguishable) {
  // Direct schedule-level check: per-chunk current levels for an all-zero
  // key vs an all-ones key overlap completely.
  const auto collect_means = [](std::uint8_t fill) {
    AesCircuit circuit(AesCircuitConfig{}, key_with_pattern(fill));
    const auto s =
        circuit.schedule(sim::TimeNs{0}, sim::milliseconds(500), 7);
    std::vector<double> levels;
    for (const auto& seg :
         s.activity.on(power::Rail::FpgaLogic).segments()) {
      levels.push_back(seg.value);
    }
    return stats::summarize(levels);
  };
  const auto zeros = collect_means(0x00);
  const auto ones = collect_means(0xff);
  EXPECT_NEAR(zeros.mean, ones.mean, 3.0 * (zeros.stddev + ones.stddev) /
                                          std::sqrt(90.0));
}

TEST(AesCircuit, DescriptorIsEncryptedIp) {
  AesCircuit circuit(AesCircuitConfig{}, key_with_pattern(1));
  EXPECT_TRUE(circuit.descriptor().encrypted);
  EXPECT_EQ(circuit.descriptor().name, "aes128");
}

TEST(AesCircuit, EndBeforeStartThrows) {
  AesCircuit circuit(AesCircuitConfig{}, key_with_pattern(1));
  EXPECT_THROW(circuit.schedule(sim::seconds(1), sim::TimeNs{0}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace amperebleed::fpga
