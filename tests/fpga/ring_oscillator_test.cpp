#include "amperebleed/fpga/ring_oscillator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace amperebleed::fpga {
namespace {

RingOscillatorConfig quiet_config() {
  RingOscillatorConfig c;
  c.jitter_counts = 0.0;
  c.thermal_drift_counts = 0.0;
  c.chain_count = 1;
  return c;
}

TEST(RingOscillator, ExpectedCountAtReference) {
  RingOscillatorBank ro(quiet_config(), 1);
  const double count = ro.expected_count(ro.config().v_reference);
  // f0 * window = 425 MHz * 16 us = 6800 counts.
  EXPECT_NEAR(count, 6800.0, 1e-6);
}

TEST(RingOscillator, FrequencyRisesWithVoltage) {
  RingOscillatorBank ro(quiet_config(), 1);
  const double at_ref = ro.expected_count(0.850);
  const double higher = ro.expected_count(0.876);
  const double lower = ro.expected_count(0.825);
  EXPECT_GT(higher, at_ref);
  EXPECT_LT(lower, at_ref);
  // Linear model: kv fractional change per volt.
  EXPECT_NEAR(higher - at_ref,
              6800.0 * ro.config().voltage_sensitivity_per_volt * 0.026,
              1e-6);
}

TEST(RingOscillator, SampleAveragesVoltageOverWindow) {
  RingOscillatorBank ro(quiet_config(), 2);
  sim::PiecewiseConstant v(0.850);
  // Half the window at a lower voltage.
  v.append(sim::microseconds(8), 0.840);
  const double count = ro.sample(v, sim::TimeNs{0});
  EXPECT_NEAR(count, ro.expected_count(0.845), 1.0);  // integer rounding slack
}

TEST(RingOscillator, CountsAreIntegerQuantized) {
  RingOscillatorBank ro(quiet_config(), 3);
  sim::PiecewiseConstant v(0.850);
  const double count = ro.sample(v, sim::TimeNs{0});
  EXPECT_DOUBLE_EQ(count, std::round(count));
}

TEST(RingOscillator, JitterAveragedAcrossChains) {
  RingOscillatorConfig noisy;
  noisy.jitter_counts = 5.0;
  noisy.thermal_drift_counts = 0.0;  // isolate the per-chain jitter
  noisy.chain_count = 64;
  RingOscillatorBank ro(noisy, 4);
  sim::PiecewiseConstant v(0.850);
  // With 64 chains the bank mean should be within ~4 sigma/sqrt(64).
  double sum = 0.0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    sum += ro.sample(v, sim::microseconds(20 * i));
  }
  EXPECT_NEAR(sum / n, ro.expected_count(0.850), 0.5);
}

TEST(RingOscillator, DeterministicForSeed) {
  RingOscillatorConfig c;
  c.jitter_counts = 2.0;
  RingOscillatorBank a(c, 9);
  RingOscillatorBank b(c, 9);
  sim::PiecewiseConstant v(0.850);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.sample(v, sim::microseconds(100 * i)),
                     b.sample(v, sim::microseconds(100 * i)));
  }
}

TEST(RingOscillator, Validation) {
  RingOscillatorConfig bad;
  bad.base_frequency_mhz = 0.0;
  EXPECT_THROW(RingOscillatorBank(bad, 1), std::invalid_argument);
  RingOscillatorConfig zero_window;
  zero_window.sample_window = sim::TimeNs{0};
  EXPECT_THROW(RingOscillatorBank(zero_window, 1), std::invalid_argument);
  RingOscillatorConfig no_chains;
  no_chains.chain_count = 0;
  EXPECT_THROW(RingOscillatorBank(no_chains, 1), std::invalid_argument);
}

TEST(RingOscillator, DescriptorScalesWithChains) {
  RingOscillatorConfig c;
  c.chain_count = 10;
  c.luts_per_chain = 13;
  RingOscillatorBank ro(c, 1);
  EXPECT_EQ(ro.descriptor().usage.luts, 130u);
}

}  // namespace
}  // namespace amperebleed::fpga
