// End-to-end scenarios wiring the whole stack together the way the paper's
// experiments do: victim circuits -> PDN -> INA226 -> hwmon -> unprivileged
// sampler -> analysis.

#include <gtest/gtest.h>

#include <memory>

#include "amperebleed/core/sampler.hpp"
#include "amperebleed/crypto/rsa.hpp"
#include "amperebleed/dnn/zoo.hpp"
#include "amperebleed/dpu/dpu.hpp"
#include "amperebleed/fpga/bitstream.hpp"
#include "amperebleed/fpga/power_virus.hpp"
#include "amperebleed/fpga/ring_oscillator.hpp"
#include "amperebleed/fpga/rsa_circuit.hpp"
#include "amperebleed/soc/soc.hpp"
#include "amperebleed/stats/correlation.hpp"
#include "amperebleed/stats/descriptive.hpp"

namespace amperebleed {
namespace {

TEST(EndToEnd, PowerVirusStepIsVisibleToUnprivilegedAttacker) {
  fpga::PowerVirus virus;
  virus.set_active_groups(sim::seconds(1), 80);

  soc::Soc soc(soc::zcu102_config(1));
  fpga::Bitstream bitstream("victim");
  bitstream.add(virus.descriptor());
  bitstream.program(soc.fabric());
  soc.add_activity(virus.activity());
  soc.finalize();

  core::Sampler attacker(soc);
  core::SamplerConfig sc;
  sc.sample_count = 20;
  const core::Channel fpga_current{power::Rail::FpgaLogic,
                                   core::Quantity::Current};
  const auto before = attacker.collect(fpga_current, sim::milliseconds(40), sc);
  const auto after = attacker.collect(fpga_current, sim::seconds(2), sc);
  const double delta = stats::mean(after.values()) -
                       stats::mean(before.values());
  // 80 groups x 40 mA = 3.2 A expected step.
  EXPECT_NEAR(delta, 3200.0, 150.0);
}

TEST(EndToEnd, RoSeesAlmostNothingOnStabilizedPdn) {
  // The headline comparison: same victim step, crafted-circuit RO vs hwmon
  // current. The RO's relative response is orders of magnitude smaller.
  fpga::PowerVirus virus;
  virus.set_active_groups(sim::seconds(1), 160);

  soc::Soc soc(soc::zcu102_config(2));
  soc.fabric().deploy(virus.descriptor());
  soc.add_activity(virus.activity());
  soc.finalize();

  fpga::RingOscillatorBank ro(fpga::RingOscillatorConfig{}, 3);
  const auto& v = soc.rail_voltage(power::Rail::FpgaLogic);
  double ro_idle = 0.0;
  double ro_loaded = 0.0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    ro_idle += ro.sample(v, sim::milliseconds(100 + i));
    ro_loaded += ro.sample(v, sim::milliseconds(1500 + i));
  }
  const double ro_delta = (ro_idle - ro_loaded) / n;
  // Full 6.4 A step: RO count shift ~ 6.4A * 0.1875 mOhm * 20435/V ~ 24.5.
  EXPECT_GT(ro_delta, 5.0);
  EXPECT_LT(ro_delta, 60.0);
  // Current channel: 6400 LSB step vs RO's ~25 counts -> ratio >> 100.
  EXPECT_GT(6400.0 / ro_delta, 100.0);
}

TEST(EndToEnd, DpuInferencePeriodVisibleInFpgaCurrent) {
  const dnn::Model model = dnn::build_model("MobileNet-V1");
  dpu::DpuAccelerator dpu;
  auto run = dpu.run(model, sim::TimeNs{0}, sim::seconds(3), 4);
  ASSERT_GT(run.inference_count, 10u);

  soc::Soc soc(soc::zcu102_config(3));
  soc.fabric().deploy(dpu.descriptor());
  soc.add_activity(run.activity);
  soc.finalize();

  core::Sampler attacker(soc);
  core::SamplerConfig sc;
  sc.sample_count = 70;
  const auto trace = attacker.collect(
      {power::Rail::FpgaLogic, core::Quantity::Current}, sim::milliseconds(40),
      sc);
  // Inference activity modulates the trace well beyond noise.
  const auto s = stats::summarize(trace.values());
  EXPECT_GT(s.max - s.min, 100.0);  // >100 mA swing
}

TEST(EndToEnd, RsaHammingWeightOrderingSurvivesWholePipeline) {
  const auto run_key = [](std::size_t hw, std::uint64_t seed) {
    crypto::RsaKey key;
    key.modulus = crypto::rsa1024_test_modulus();
    key.private_exponent = crypto::exponent_with_hamming_weight(1024, hw, seed);
    fpga::RsaCircuit circuit(fpga::RsaCircuitConfig{}, std::move(key));
    auto soc = std::make_unique<soc::Soc>(soc::zcu102_config(seed));
    soc->fabric().deploy(circuit.descriptor());
    soc->add_activity(
        circuit.schedule(sim::TimeNs{0}, sim::milliseconds(800)).activity);
    soc->finalize();
    core::Sampler attacker(*soc);
    core::SamplerConfig sc;
    sc.sample_count = 500;
    sc.period = sim::milliseconds(1);
    const auto trace = attacker.collect(
        {power::Rail::FpgaLogic, core::Quantity::Current},
        sim::milliseconds(40), sc);
    return stats::mean(trace.values());
  };
  const double low = run_key(64, 10);
  const double mid = run_key(512, 11);
  const double high = run_key(1024, 12);
  EXPECT_LT(low, mid);
  EXPECT_LT(mid, high);
}

TEST(EndToEnd, MitigationKillsTheAttackButNotRootMonitoring) {
  soc::SocConfig config = soc::zcu102_config(5);
  config.hwmon_policy.unprivileged_sensor_read = false;
  soc::Soc soc(config);
  soc.finalize();
  core::Sampler attacker(soc);
  core::SamplerConfig sc;
  sc.sample_count = 3;
  EXPECT_THROW(attacker.collect({power::Rail::FpgaLogic,
                                 core::Quantity::Current},
                                sim::milliseconds(40), sc),
               core::SamplingError);
  core::Sampler monitor(soc, core::Principal::root());
  EXPECT_NO_THROW(monitor.collect(
      {power::Rail::FpgaLogic, core::Quantity::Current},
      sim::milliseconds(40), sc));
}

TEST(EndToEnd, EverythingFitsOnTheZcu102Together) {
  // Victim DPU + RSA + attacker-visible RO baseline all deploy at once.
  soc::Soc soc(soc::zcu102_config(6));
  dpu::DpuAccelerator dpu;
  fpga::RingOscillatorBank ro(fpga::RingOscillatorConfig{}, 1);
  crypto::RsaKey key;
  key.modulus = crypto::rsa1024_test_modulus();
  key.private_exponent = crypto::exponent_with_hamming_weight(1024, 512, 1);
  fpga::RsaCircuit rsa(fpga::RsaCircuitConfig{}, std::move(key));

  fpga::Bitstream bs("combined");
  bs.add(dpu.descriptor());
  bs.add(ro.descriptor());
  bs.add(rsa.descriptor());
  EXPECT_NO_THROW(bs.program(soc.fabric()));
  EXPECT_TRUE(bs.contains_encrypted_ip());
}

}  // namespace
}  // namespace amperebleed
