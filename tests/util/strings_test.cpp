#include "amperebleed/util/strings.hpp"

#include <gtest/gtest.h>

namespace amperebleed::util {
namespace {

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a//b", '/');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, SingleFieldWithoutSeparator) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Split, EmptyStringYieldsOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitPath, DropsEmptyComponents) {
  const auto parts = split_path("/sys//class/hwmon/");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "sys");
  EXPECT_EQ(parts[1], "class");
  EXPECT_EQ(parts[2], "hwmon");
}

TEST(SplitPath, RootIsEmpty) {
  EXPECT_TRUE(split_path("/").empty());
  EXPECT_TRUE(split_path("").empty());
}

TEST(Join, RoundTripsWithSplit) {
  EXPECT_EQ(join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(join({}, "/"), "");
  EXPECT_EQ(join({"only"}, ", "), "only");
}

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \n"), "hello");
  EXPECT_EQ(trim("\t\r\n "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("curr1_input", "curr"));
  EXPECT_FALSE(starts_with("curr", "curr1"));
  EXPECT_TRUE(ends_with("curr1_input", "_input"));
  EXPECT_FALSE(ends_with("input", "_input"));
}

TEST(ParseLl, AcceptsSysfsStyleNumbers) {
  EXPECT_EQ(parse_ll("1234\n"), 1234);
  EXPECT_EQ(parse_ll("  -56 "), -56);
  EXPECT_EQ(parse_ll("+7"), 7);
  EXPECT_EQ(parse_ll("0"), 0);
}

TEST(ParseLl, RejectsGarbage) {
  EXPECT_FALSE(parse_ll("").has_value());
  EXPECT_FALSE(parse_ll("12a").has_value());
  EXPECT_FALSE(parse_ll("-").has_value());
  EXPECT_FALSE(parse_ll("1.5").has_value());
}

TEST(Format, PrintfSemantics) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(format("empty"), "empty");
}

}  // namespace
}  // namespace amperebleed::util
