#include "amperebleed/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace amperebleed::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1'000; ++i) {
    const double v = rng.uniform(-2.5, 4.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 4.5);
  }
}

TEST(Rng, UniformBelowCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.uniform_below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2'000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, GaussianMomentsMatchStandardNormal) {
  Rng rng(13);
  const int n = 200'000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, GaussianScaledMoments) {
  Rng rng(17);
  const int n = 100'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng parent(21);
  Rng c1 = parent.fork(0);
  Rng c2 = parent.fork(1);
  Rng c1_again = Rng(21).fork(0);
  EXPECT_EQ(c1.next(), c1_again.next());
  EXPECT_NE(c1.next(), c2.next());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(v);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), original.begin()));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
}

TEST(HashCombine, OrderMatters) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
}

}  // namespace
}  // namespace amperebleed::util
