// util::simd dispatch-layer behavior: name round-trips, aliases, detection
// consistency, clamping, and the ScopedTier RAII override.

#include "amperebleed/util/simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace simd = amperebleed::util::simd;

TEST(Simd, TierNamesRoundTrip) {
  for (const simd::SimdTier tier : simd::available_tiers()) {
    EXPECT_EQ(simd::tier_from_name(simd::tier_name(tier)), tier);
  }
}

TEST(Simd, AcceptsAliases) {
  EXPECT_EQ(simd::tier_from_name("off"), simd::SimdTier::kScalar);
  EXPECT_EQ(simd::tier_from_name("scalar"), simd::SimdTier::kScalar);
  EXPECT_EQ(simd::tier_from_name("neon"), simd::SimdTier::kInterleaved);
  EXPECT_EQ(simd::tier_from_name("interleaved"), simd::SimdTier::kInterleaved);
  EXPECT_EQ(simd::tier_from_name("auto"), simd::detect_best_tier());
}

TEST(Simd, RejectsUnknownNames) {
  EXPECT_THROW(simd::tier_from_name("sse9"), std::invalid_argument);
  EXPECT_THROW(simd::tier_from_name(""), std::invalid_argument);
  EXPECT_THROW(simd::tier_from_name("AVX2"), std::invalid_argument);
}

TEST(Simd, AvailableTiersAscendingAndContainBest) {
  const auto tiers = simd::available_tiers();
  ASSERT_GE(tiers.size(), 2u);
  EXPECT_EQ(tiers.front(), simd::SimdTier::kScalar);
  EXPECT_TRUE(std::is_sorted(tiers.begin(), tiers.end()));
  EXPECT_NE(std::find(tiers.begin(), tiers.end(), simd::detect_best_tier()),
            tiers.end());
}

TEST(Simd, SetActiveTierHonoursScalarAndClampsUnavailable) {
  const simd::SimdTier before = simd::active_tier();
  const simd::SimdTier installed =
      simd::set_active_tier(simd::SimdTier::kScalar);
  EXPECT_EQ(installed, simd::SimdTier::kScalar);
  EXPECT_EQ(simd::active_tier(), simd::SimdTier::kScalar);
  EXPECT_EQ(simd::active_tier_name(), "scalar");

  // Requesting AVX2 either installs it (host supports it) or clamps to the
  // best available tier — never fails, never installs an unrunnable tier.
  const simd::SimdTier avx2 = simd::set_active_tier(simd::SimdTier::kAvx2);
  const auto tiers = simd::available_tiers();
  EXPECT_NE(std::find(tiers.begin(), tiers.end(), avx2), tiers.end());

  simd::set_active_tier(before);
}

TEST(Simd, ScopedTierRestores) {
  const simd::SimdTier before = simd::active_tier();
  {
    simd::ScopedTier scoped(simd::SimdTier::kScalar);
    EXPECT_EQ(scoped.installed(), simd::SimdTier::kScalar);
    EXPECT_EQ(simd::active_tier(), simd::SimdTier::kScalar);
    {
      simd::ScopedTier nested(simd::SimdTier::kInterleaved);
      EXPECT_EQ(simd::active_tier(), simd::SimdTier::kInterleaved);
    }
    EXPECT_EQ(simd::active_tier(), simd::SimdTier::kScalar);
  }
  EXPECT_EQ(simd::active_tier(), before);
}
