#include "amperebleed/util/fs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

namespace amperebleed::util {
namespace {

class FsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  std::string path_ = ::testing::TempDir() + "fs_test_out.bin";
};

TEST_F(FsTest, AtomicWriteThenReadRoundTrips) {
  atomic_write_file(path_, std::string_view("hello\0world", 11));
  EXPECT_EQ(read_file(path_), std::string("hello\0world", 11));
  EXPECT_FALSE(path_exists(path_ + ".tmp"));
}

TEST_F(FsTest, AtomicWriteReplacesExistingContent) {
  atomic_write_file(path_, "old content");
  atomic_write_file(path_, "new");
  EXPECT_EQ(read_file(path_), "new");
}

TEST_F(FsTest, ObserverSeesAllPhasesInOrder) {
  std::vector<std::string> phases;
  atomic_write_file(path_, "observed", [&](std::string_view phase) {
    phases.emplace_back(phase);
  });
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0], "tmp-partial");
  EXPECT_EQ(phases[1], "tmp-synced");
  EXPECT_EQ(phases[2], "renamed");
}

// A throwing observer simulates a crash mid-write: the target keeps its old
// content and the torn temporary is left on disk (what recovery must clean).
TEST_F(FsTest, ThrowingObserverLeavesTargetUntouched) {
  atomic_write_file(path_, "original");
  struct Abort {};
  EXPECT_THROW(
      atomic_write_file(path_, "replacement",
                        [](std::string_view phase) {
                          if (phase == "tmp-synced") throw Abort{};
                        }),
      Abort);
  EXPECT_EQ(read_file(path_), "original");
  EXPECT_TRUE(path_exists(path_ + ".tmp"));
}

TEST_F(FsTest, ReadMissingFileThrows) {
  EXPECT_THROW((void)read_file(path_ + ".does-not-exist"),
               std::runtime_error);
}

TEST_F(FsTest, MakeDirsCreatesNestedAndTolerateExisting) {
  const std::string dir = ::testing::TempDir() + "fs_test_dirs/a/b/c";
  make_dirs(dir);
  EXPECT_TRUE(path_exists(dir));
  make_dirs(dir);  // idempotent
  EXPECT_TRUE(path_exists(dir));
}

TEST_F(FsTest, ListDirReturnsSortedNames) {
  const std::string dir = ::testing::TempDir() + "fs_test_list";
  make_dirs(dir);
  atomic_write_file(dir + "/bbb", "1");
  atomic_write_file(dir + "/aaa", "2");
  atomic_write_file(dir + "/ccc", "3");
  const std::vector<std::string> names = list_dir(dir);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(names[0], "aaa");
  for (const std::string& name : names) remove_file(dir + "/" + name);
}

TEST_F(FsTest, FsyncDirSyncsExistingDirectoryOnly) {
  const std::string dir = ::testing::TempDir() + "fs_test_sync";
  make_dirs(dir);
  fsync_dir(dir);  // no throw
  EXPECT_THROW(fsync_dir(dir + "/missing"), std::runtime_error);
}

TEST_F(FsTest, RemoveFileIsIdempotent) {
  atomic_write_file(path_, "x");
  remove_file(path_);
  EXPECT_FALSE(path_exists(path_));
  remove_file(path_);  // missing file is not an error
}

}  // namespace
}  // namespace amperebleed::util
