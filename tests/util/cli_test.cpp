#include "amperebleed/util/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace amperebleed::util {
namespace {

CliArgs parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()),
                 const_cast<char**>(argv.data()));
}

TEST(CliArgs, SpaceSeparatedValues) {
  const auto args = parse({"--samples", "500", "--csv", "out.csv"});
  EXPECT_EQ(args.get_int("samples", 0), 500);
  EXPECT_EQ(args.get_string("csv", ""), "out.csv");
}

TEST(CliArgs, EqualsSeparatedValues) {
  const auto args = parse({"--levels=42", "--ratio=2.5"});
  EXPECT_EQ(args.get_int("levels", 0), 42);
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 2.5);
}

TEST(CliArgs, BooleanFlags) {
  const auto args = parse({"--quick", "--models", "10"});
  EXPECT_TRUE(args.has("quick"));
  EXPECT_FALSE(args.has("slow"));
  EXPECT_EQ(args.get_int("quick", 0), 1);
  EXPECT_EQ(args.get_int("models", 0), 10);
}

TEST(CliArgs, FallbacksWhenAbsent) {
  const auto args = parse({});
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
  EXPECT_EQ(args.get_string("s", "d"), "d");
}

TEST(CliArgs, TrailingBooleanFlag) {
  const auto args = parse({"--a", "1", "--verbose"});
  EXPECT_TRUE(args.has("verbose"));
}

TEST(CliArgs, RejectsPositionalArguments) {
  EXPECT_THROW(parse({"positional"}), std::invalid_argument);
}

}  // namespace
}  // namespace amperebleed::util
