#include "amperebleed/util/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace amperebleed::util {
namespace {

CliArgs parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()),
                 const_cast<char**>(argv.data()));
}

TEST(CliArgs, SpaceSeparatedValues) {
  const auto args = parse({"--samples", "500", "--csv", "out.csv"});
  EXPECT_EQ(args.get_int("samples", 0), 500);
  EXPECT_EQ(args.get_string("csv", ""), "out.csv");
}

TEST(CliArgs, EqualsSeparatedValues) {
  const auto args = parse({"--levels=42", "--ratio=2.5"});
  EXPECT_EQ(args.get_int("levels", 0), 42);
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 2.5);
}

TEST(CliArgs, BooleanFlags) {
  const auto args = parse({"--quick", "--models", "10"});
  EXPECT_TRUE(args.has("quick"));
  EXPECT_FALSE(args.has("slow"));
  EXPECT_EQ(args.get_int("quick", 0), 1);
  EXPECT_EQ(args.get_int("models", 0), 10);
}

TEST(CliArgs, FallbacksWhenAbsent) {
  const auto args = parse({});
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
  EXPECT_EQ(args.get_string("s", "d"), "d");
}

TEST(CliArgs, TrailingBooleanFlag) {
  const auto args = parse({"--a", "1", "--verbose"});
  EXPECT_TRUE(args.has("verbose"));
}

TEST(CliArgs, RejectsPositionalArguments) {
  EXPECT_THROW(parse({"positional"}), std::invalid_argument);
}

TEST(CliArgs, RejectsTrailingGarbageOnNumericValues) {
  // "4abc" used to silently parse as 4 and "0.1x" as 0.1 — a typo'd flag
  // would quietly run the wrong experiment.
  const auto args = parse({"--threads", "4abc", "--rate", "0.1x"});
  EXPECT_THROW(args.get_int("threads", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double("rate", 0.0), std::invalid_argument);
  try {
    (void)args.get_int("threads", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("invalid value for --threads"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("4abc"), std::string::npos);
  }
}

TEST(CliArgs, RejectsNonNumericValues) {
  const auto args = parse({"--n", "abc", "--x", "fast"});
  EXPECT_THROW(args.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double("x", 0.0), std::invalid_argument);
}

TEST(CliArgs, HexAndFloatFormsStillParse) {
  // Strictness must not cost the formats benches rely on: hex fault seeds
  // (base-0 auto-detection) and exponent-form doubles.
  const auto args = parse({"--fault-seed", "0xfa17", "--eps", "1e-3",
                           "--neg", "-12"});
  EXPECT_EQ(args.get_int("fault-seed", 0), 0xfa17);
  EXPECT_DOUBLE_EQ(args.get_double("eps", 0.0), 1e-3);
  EXPECT_EQ(args.get_int("neg", 0), -12);
}

}  // namespace
}  // namespace amperebleed::util
