#include "amperebleed/util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace amperebleed::util {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  const std::size_t n = 1000;
  std::vector<int> hits(n, 0);
  parallel_for(n, [&](std::size_t i) { ++hits[i]; }, 4);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i], 1) << i;
  }
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<std::size_t> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ZeroAndOneItems) {
  int calls = 0;
  parallel_for(0, [&](std::size_t) { ++calls; }, 8);
  EXPECT_EQ(calls, 0);
  parallel_for(1, [&](std::size_t) { ++calls; }, 8);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  const std::size_t n = 200;
  std::vector<double> a(n);
  std::vector<double> b(n);
  const auto work = [](std::size_t i) {
    return static_cast<double>(i) * 1.5 + 1.0;
  };
  parallel_for(n, [&](std::size_t i) { a[i] = work(i); }, 1);
  parallel_for(n, [&](std::size_t i) { b[i] = work(i); }, 7);
  EXPECT_EQ(a, b);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(
          100,
          [](std::size_t i) {
            if (i == 42) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelFor, FailFastCancelsRemainingSweep) {
  // Run against a genuinely multi-threaded global pool regardless of the
  // host's core count, then restore the previous size.
  const std::size_t before = ThreadPool::global().size();
  ThreadPool::set_global_threads(4);
  std::atomic<bool> thrown{false};
  std::atomic<int> started_after_throw{0};
  EXPECT_THROW(
      parallel_for(2000,
                   [&](std::size_t i) {
                     if (i == 0) {
                       thrown = true;
                       throw std::invalid_argument("stop");
                     }
                     if (thrown) ++started_after_throw;
                   }),
      std::invalid_argument);
  // With 4 participants, at most the 3 non-throwing executors can have a
  // task in flight when the cancellation flag flips; everything else must
  // be skipped, not executed.
  EXPECT_LE(started_after_throw.load(), 3);
  ThreadPool::set_global_threads(before);
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock) {
  const std::size_t before = ThreadPool::global().size();
  ThreadPool::set_global_threads(4);
  std::atomic<int> inner{0};
  parallel_for(6, [&](std::size_t) {
    parallel_for(5, [&](std::size_t) { ++inner; });
  });
  EXPECT_EQ(inner.load(), 30);
  ThreadPool::set_global_threads(before);
}

TEST(ParallelFor, WorkSharingCoversUnevenLoads) {
  // Tasks with wildly different costs must all still complete.
  std::atomic<int> done{0};
  parallel_for(
      64,
      [&](std::size_t i) {
        volatile double x = 0.0;
        for (std::size_t k = 0; k < (i % 8) * 10'000; ++k) x = x + 1.0;
        ++done;
      },
      8);
  EXPECT_EQ(done.load(), 64);
}

}  // namespace
}  // namespace amperebleed::util
