#include "amperebleed/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "amperebleed/obs/obs.hpp"

namespace amperebleed::util {
namespace {

TEST(ThreadPool, DefaultSizeHonoursEnvironmentOverride) {
  ::setenv("AMPEREBLEED_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_size(), 3u);
  ::setenv("AMPEREBLEED_THREADS", "garbage", 1);
  EXPECT_GE(ThreadPool::default_size(), 1u);  // falls back to hardware
  ::setenv("AMPEREBLEED_THREADS", "0", 1);
  EXPECT_GE(ThreadPool::default_size(), 1u);
  ::unsetenv("AMPEREBLEED_THREADS");
  EXPECT_GE(ThreadPool::default_size(), 1u);
}

TEST(ThreadPool, SizeOneIsAnExactSerialLoop) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<std::size_t> order;
  const std::function<void(std::size_t)> fn = [&](std::size_t i) {
    order.push_back(i);
  };
  pool.run(6, fn);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(ThreadPool, RunVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 5000;
  std::vector<int> hits(n, 0);
  const std::function<void(std::size_t)> fn = [&](std::size_t i) {
    ++hits[i];  // each slot touched by exactly one task
  };
  pool.run(n, fn);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(ThreadPool, MaxParticipantsCapStillCompletesAllWork) {
  ThreadPool pool(8);
  const std::size_t n = 300;
  std::vector<int> hits(n, 0);
  const std::function<void(std::size_t)> fn = [&](std::size_t i) {
    ++hits[i];
  };
  pool.run(n, fn, /*max_participants=*/2);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(ThreadPool, NestedRegionsRunSeriallyInline) {
  ThreadPool pool(4);
  std::atomic<int> inner_calls{0};
  std::atomic<bool> saw_worker_flag{false};
  const std::function<void(std::size_t)> outer = [&](std::size_t) {
    if (ThreadPool::in_worker()) saw_worker_flag = true;
    // A nested region must not deadlock and must still visit every index.
    const std::function<void(std::size_t)> inner = [&](std::size_t) {
      ++inner_calls;
    };
    pool.run(10, inner);
  };
  pool.run(8, outer);
  EXPECT_EQ(inner_calls.load(), 80);
  EXPECT_TRUE(saw_worker_flag.load());
  EXPECT_FALSE(ThreadPool::in_worker());  // flag is scoped to task execution
}

TEST(ThreadPool, ExceptionIsRethrownOnCaller) {
  ThreadPool pool(4);
  const std::function<void(std::size_t)> fn = [](std::size_t i) {
    if (i == 7) throw std::runtime_error("boom");
  };
  EXPECT_THROW(pool.run(64, fn), std::runtime_error);
  // The pool survives a cancelled region and runs the next one normally.
  std::atomic<int> calls{0};
  const std::function<void(std::size_t)> ok = [&](std::size_t) { ++calls; };
  pool.run(32, ok);
  EXPECT_EQ(calls.load(), 32);
}

TEST(ThreadPool, CancellationStopsTasksAfterTheThrow) {
  // Fail-fast contract: once a task has thrown, at most the tasks already
  // in flight (one per other participant) may still start.
  ThreadPool pool(4);
  std::atomic<bool> thrown{false};
  std::atomic<int> started_after_throw{0};
  const std::function<void(std::size_t)> fn = [&](std::size_t i) {
    if (i == 0) {
      thrown = true;
      throw std::runtime_error("cancel the sweep");
    }
    if (thrown) ++started_after_throw;
  };
  EXPECT_THROW(pool.run(2000, fn), std::runtime_error);
  // 4 participants: the thrower plus at most 3 tasks that had already
  // passed their cancellation check when the flag flipped.
  EXPECT_LE(started_after_throw.load(), 3);
}

TEST(ThreadPool, ResizeChangesExecutorCount) {
  ThreadPool pool(1);
  pool.resize(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<int> hits(128, 0);
  const std::function<void(std::size_t)> fn = [&](std::size_t i) {
    ++hits[i];
  };
  pool.run(hits.size(), fn);
  for (int h : hits) EXPECT_EQ(h, 1);
  pool.resize(1);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, GlobalPoolResizableViaSetGlobalThreads) {
  const std::size_t before = ThreadPool::global().size();
  ThreadPool::set_global_threads(2);
  EXPECT_EQ(ThreadPool::global().size(), 2u);
  ThreadPool::set_global_threads(before);
  EXPECT_EQ(ThreadPool::global().size(), before);
}

TEST(ThreadPool, ObsRegionMetricsWhenEnabled) {
  obs::init();
  ThreadPool pool(2);
  const std::function<void(std::size_t)> fn = [](std::size_t) {};
  pool.run(50, fn);
  const auto& m = obs::metrics();
  EXPECT_EQ(m.counter_value("pool.tasks"), 50u);
  EXPECT_EQ(m.counter_value("pool.regions"), 1u);
  obs::shutdown();
}

TEST(ThreadPool, NoObsTrafficWhenDisabled) {
  // With obs off (the experiment default), a region must not register pool
  // counters: instrumentation never perturbs the uninstrumented path.
  ThreadPool pool(2);
  const std::function<void(std::size_t)> fn = [](std::size_t) {};
  pool.run(10, fn);
  obs::init();
  EXPECT_EQ(obs::metrics().counter_value("pool.tasks"), 0u);
  obs::shutdown();
}

}  // namespace
}  // namespace amperebleed::util
