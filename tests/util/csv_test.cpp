#include "amperebleed/util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace amperebleed::util {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "csv_test_out.csv";
};

TEST_F(CsvTest, WritesPlainRows) {
  {
    CsvWriter csv(path_);
    csv.row({"a", "b"});
    csv.row({"1", "2"});
  }
  EXPECT_EQ(read_all(path_), "a,b\n1,2\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter csv(path_);
    csv.row({"has,comma", "has\"quote", "plain"});
  }
  EXPECT_EQ(read_all(path_), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST_F(CsvTest, WritesDoublesAtFullPrecision) {
  {
    CsvWriter csv(path_);
    csv.row_doubles({0.1, 2.0});
  }
  const std::string contents = read_all(path_);
  EXPECT_NE(contents.find("0.1"), std::string::npos);
  EXPECT_NE(contents.find("2"), std::string::npos);
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvWriter::escape("q\"q"), "\"q\"\"q\"");
}

TEST(CsvWriterErrors, ThrowsOnUnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/deep/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace amperebleed::util
