#include "amperebleed/util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace amperebleed::util {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json::boolean(true).dump(), "true");
  EXPECT_EQ(Json::boolean(false).dump(), "false");
  EXPECT_EQ(Json::integer(-42).dump(), "-42");
  EXPECT_EQ(Json::number(2.5).dump(), "2.5");
  EXPECT_EQ(Json::string("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Json::number(std::numeric_limits<double>::infinity()).dump(),
            "null");
  EXPECT_EQ(Json::number(std::nan("")).dump(), "null");
}

TEST(Json, ArraysAndObjectsCompact) {
  Json arr = Json::array();
  arr.push_back(Json::integer(1));
  arr.push_back(Json::string("two"));
  EXPECT_EQ(arr.dump(), "[1,\"two\"]");
  EXPECT_EQ(arr.size(), 2u);
  EXPECT_TRUE(arr.is_array());

  Json obj = Json::object();
  obj.set("a", Json::integer(1));
  obj.set("b", arr);
  EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":[1,\"two\"]}");
}

TEST(Json, ObjectInsertionOrderAndReplace) {
  Json obj = Json::object();
  obj.set("z", Json::integer(1));
  obj.set("a", Json::integer(2));
  obj.set("z", Json::integer(3));  // replace, keep position
  EXPECT_EQ(obj.dump(), "{\"z\":3,\"a\":2}");
  EXPECT_EQ(obj.size(), 2u);
}

TEST(Json, TypeErrorsThrow) {
  Json scalar = Json::integer(1);
  EXPECT_THROW(scalar.push_back(Json()), std::logic_error);
  EXPECT_THROW(scalar.set("k", Json()), std::logic_error);
  Json arr = Json::array();
  EXPECT_THROW(arr.set("k", Json()), std::logic_error);
}

TEST(Json, Escaping) {
  EXPECT_EQ(Json::escape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(Json::escape("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(Json::escape("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(Json::escape(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(Json, PrettyPrinting) {
  Json obj = Json::object();
  obj.set("x", Json::integer(1));
  Json arr = Json::array();
  arr.push_back(Json::integer(2));
  obj.set("y", arr);
  const std::string pretty = obj.dump(2);
  EXPECT_EQ(pretty,
            "{\n  \"x\": 1,\n  \"y\": [\n    2\n  ]\n}");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::array().dump(2), "[]");
  EXPECT_EQ(Json::object().dump(2), "{}");
}

// ---------------------------------------------------------------------------
// Parser

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_boolean());
  EXPECT_FALSE(Json::parse("false").as_boolean());
  EXPECT_EQ(Json::parse("-42").as_integer(), -42);
  EXPECT_DOUBLE_EQ(Json::parse("2.5").as_number(), 2.5);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(Json::parse("  \t\n 7 \r\n").as_integer(), 7);
}

TEST(JsonParse, IntegerVsDoubleDetection) {
  EXPECT_TRUE(Json::parse("5").is_integer());
  EXPECT_FALSE(Json::parse("5.0").is_integer());
  EXPECT_TRUE(Json::parse("5.0").is_number());
  EXPECT_FALSE(Json::parse("1e3").is_integer());
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
  // as_number() accepts integers too.
  EXPECT_DOUBLE_EQ(Json::parse("5").as_number(), 5.0);
  // Beyond int64 range falls back to double instead of failing.
  EXPECT_FALSE(Json::parse("99999999999999999999").is_integer());
  EXPECT_GT(Json::parse("99999999999999999999").as_number(), 9e19);
}

TEST(JsonParse, ContainersAndLookup) {
  const Json doc = Json::parse(
      R"({"a": [1, 2.5, "x", null, {"deep": true}], "b": {"c": -1}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.keys(), (std::vector<std::string>{"a", "b"}));
  const Json* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->size(), 5u);
  EXPECT_EQ(a->at(0).as_integer(), 1);
  EXPECT_TRUE(a->at(3).is_null());
  EXPECT_TRUE(a->at(4).find("deep")->as_boolean());
  EXPECT_EQ(doc.find("b")->find("c")->as_integer(), -1);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(static_cast<void>(a->at(5)), std::out_of_range);
}

TEST(JsonParse, RoundTripsOwnOutput) {
  Json obj = Json::object();
  obj.set("name", Json::string("line\nbreak \"quoted\" back\\slash"));
  obj.set("pi", Json::number(3.141592653589793));
  obj.set("n", Json::integer(-7));
  Json arr = Json::array();
  arr.push_back(Json::boolean(true));
  arr.push_back(Json());
  obj.set("flags", arr);
  for (int indent : {0, 2}) {
    const Json back = Json::parse(obj.dump(indent));
    EXPECT_EQ(back.dump(), obj.dump());
  }
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\/d\n\t\r\b\f")").as_string(),
            "a\"b\\c/d\n\t\r\b\f");
  // Escaped code points across the UTF-8 encoding lengths (inputs are built
  // as backslash-u sequences so the parser's decoder is exercised).
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");      // 2-byte
  EXPECT_EQ(Json::parse("\"\\u20aC\"").as_string(), "\xe2\x82\xac");  // 3-byte
  // Surrogate pair: U+1F600 -> 4-byte UTF-8 (emoji).
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
  // Raw multibyte text passes through untouched.
  EXPECT_EQ(Json::parse("\"\xc3\xa9\"").as_string(), "\xc3\xa9");
}

TEST(JsonParse, ErrorsCarryOffsets) {
  const auto expect_error_at = [](std::string_view text, const char* what,
                                  std::size_t offset) {
    try {
      Json::parse(text);
      FAIL() << "expected parse failure for: " << text;
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find(what), std::string::npos) << msg;
      EXPECT_NE(msg.find("offset " + std::to_string(offset)),
                std::string::npos)
          << msg;
    }
  };
  expect_error_at("", "unexpected end of input", 0);
  expect_error_at("[1, 2", "unexpected end of input", 5);
  expect_error_at("{\"a\" 1}", "expected ':'", 5);
  expect_error_at("tru", "invalid literal", 0);
  expect_error_at("1 2", "trailing characters", 2);
  expect_error_at("\"abc", "unterminated string", 4);
  expect_error_at(R"("\q")", "invalid escape", 3);
  expect_error_at(R"("\ud800x")", "unpaired surrogate", 7);
  expect_error_at("-x", "invalid number", 1);
}

TEST(JsonParse, DepthLimit) {
  // 256 levels parse; past the limit the parser refuses instead of
  // overflowing the stack.
  const auto nested = [](int depth) {
    return std::string(static_cast<std::size_t>(depth), '[') + "1" +
           std::string(static_cast<std::size_t>(depth), ']');
  };
  EXPECT_NO_THROW(Json::parse(nested(256)));
  EXPECT_THROW(Json::parse(nested(300)), std::runtime_error);
}

}  // namespace
}  // namespace amperebleed::util
