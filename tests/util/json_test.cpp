#include "amperebleed/util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace amperebleed::util {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json::boolean(true).dump(), "true");
  EXPECT_EQ(Json::boolean(false).dump(), "false");
  EXPECT_EQ(Json::integer(-42).dump(), "-42");
  EXPECT_EQ(Json::number(2.5).dump(), "2.5");
  EXPECT_EQ(Json::string("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Json::number(std::numeric_limits<double>::infinity()).dump(),
            "null");
  EXPECT_EQ(Json::number(std::nan("")).dump(), "null");
}

TEST(Json, ArraysAndObjectsCompact) {
  Json arr = Json::array();
  arr.push_back(Json::integer(1));
  arr.push_back(Json::string("two"));
  EXPECT_EQ(arr.dump(), "[1,\"two\"]");
  EXPECT_EQ(arr.size(), 2u);
  EXPECT_TRUE(arr.is_array());

  Json obj = Json::object();
  obj.set("a", Json::integer(1));
  obj.set("b", arr);
  EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":[1,\"two\"]}");
}

TEST(Json, ObjectInsertionOrderAndReplace) {
  Json obj = Json::object();
  obj.set("z", Json::integer(1));
  obj.set("a", Json::integer(2));
  obj.set("z", Json::integer(3));  // replace, keep position
  EXPECT_EQ(obj.dump(), "{\"z\":3,\"a\":2}");
  EXPECT_EQ(obj.size(), 2u);
}

TEST(Json, TypeErrorsThrow) {
  Json scalar = Json::integer(1);
  EXPECT_THROW(scalar.push_back(Json()), std::logic_error);
  EXPECT_THROW(scalar.set("k", Json()), std::logic_error);
  Json arr = Json::array();
  EXPECT_THROW(arr.set("k", Json()), std::logic_error);
}

TEST(Json, Escaping) {
  EXPECT_EQ(Json::escape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(Json::escape("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(Json::escape("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(Json::escape(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(Json, PrettyPrinting) {
  Json obj = Json::object();
  obj.set("x", Json::integer(1));
  Json arr = Json::array();
  arr.push_back(Json::integer(2));
  obj.set("y", arr);
  const std::string pretty = obj.dump(2);
  EXPECT_EQ(pretty,
            "{\n  \"x\": 1,\n  \"y\": [\n    2\n  ]\n}");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::array().dump(2), "[]");
  EXPECT_EQ(Json::object().dump(2), "{}");
}

}  // namespace
}  // namespace amperebleed::util
