#include "amperebleed/stats/correlation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "amperebleed/util/rng.hpp"

namespace amperebleed::stats {
namespace {

TEST(Pearson, PerfectPositiveAndNegative) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y_up = {10.0, 20.0, 30.0, 40.0};
  const std::vector<double> y_down = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(x, y_up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, y_down), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesGivesZero) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> c = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson(x, c), 0.0);
  EXPECT_DOUBLE_EQ(pearson(c, x), 0.0);
}

TEST(Pearson, Validation) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> bad = {1.0};
  EXPECT_THROW(pearson(x, bad), std::invalid_argument);
  EXPECT_THROW(pearson(bad, bad), std::invalid_argument);
}

TEST(Pearson, SymmetricInArguments) {
  const std::vector<double> x = {1.0, 5.0, 2.0, 8.0, 3.0};
  const std::vector<double> y = {2.0, 4.0, 4.0, 9.0, 1.0};
  EXPECT_DOUBLE_EQ(pearson(x, y), pearson(y, x));
}

TEST(Pearson, InvariantUnderAffineTransform) {
  const std::vector<double> x = {1.0, 5.0, 2.0, 8.0, 3.0};
  const std::vector<double> y = {2.0, 4.0, 4.0, 9.0, 1.0};
  std::vector<double> y2;
  for (double v : y) y2.push_back(3.0 * v - 7.0);
  EXPECT_NEAR(pearson(x, y), pearson(x, y2), 1e-12);
}

TEST(Pearson, NoisyLinearRelationIsStrong) {
  util::Rng rng(123);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 1'000; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + rng.gaussian(0.0, 5.0));
  }
  EXPECT_GT(pearson(x, y), 0.999);
}

TEST(Spearman, MonotoneNonlinearIsPerfect) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.3 * i));  // monotone but nonlinear
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Spearman, HandlesTies) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {1.0, 1.0, 2.0, 2.0};
  EXPECT_GT(spearman(x, y), 0.8);
  EXPECT_LE(spearman(x, y), 1.0);
}

}  // namespace
}  // namespace amperebleed::stats
