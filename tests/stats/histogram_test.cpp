#include "amperebleed/stats/histogram.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace amperebleed::stats {
namespace {

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 10), std::invalid_argument);
}

TEST(Histogram, BinIndexing) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.bin_index(0.0), 0u);
  EXPECT_EQ(h.bin_index(0.99), 0u);
  EXPECT_EQ(h.bin_index(5.0), 5u);
  EXPECT_EQ(h.bin_index(9.99), 9u);
}

TEST(Histogram, OutOfRangeClampsIntoEdgeBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinBoundsAndCenters) {
  Histogram h(0.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(1), 1.5);
}

TEST(Histogram, DensitySumsToOne) {
  Histogram h(0.0, 1.0, 5);
  const std::vector<double> xs = {0.1, 0.3, 0.5, 0.7, 0.9, 0.95};
  h.add_all(xs);
  double total = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) total += h.density(b);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, EmptyDensityIsZero) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_DOUBLE_EQ(h.density(0), 0.0);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("1"), std::string::npos);
  EXPECT_NE(out.find("2"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

}  // namespace
}  // namespace amperebleed::stats
