#include "amperebleed/stats/spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "amperebleed/util/rng.hpp"

namespace amperebleed::stats {
namespace {

std::vector<double> sine(std::size_t n, double period, double noise_sigma,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(std::sin(2.0 * 3.14159265358979 * i / period) +
                 rng.gaussian(0.0, noise_sigma));
  }
  return xs;
}

TEST(Autocorrelation, LagZeroIsOne) {
  const auto xs = sine(200, 20.0, 0.1, 1);
  const auto r = autocorrelation(xs, 50);
  ASSERT_EQ(r.size(), 51u);
  EXPECT_NEAR(r[0], 1.0, 1e-12);
}

TEST(Autocorrelation, ConstantSeriesIsAllZero) {
  const std::vector<double> xs(100, 5.0);
  const auto r = autocorrelation(xs, 10);
  for (double v : r) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Autocorrelation, EmptyAndClamping) {
  EXPECT_TRUE(autocorrelation({}, 10).empty());
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_EQ(autocorrelation(xs, 100).size(), 3u);  // clamped to len-1
}

TEST(Autocorrelation, PeriodicSignalPeaksAtPeriod) {
  const auto xs = sine(400, 25.0, 0.05, 2);
  const auto r = autocorrelation(xs, 60);
  // r(25) should dominate intermediate lags.
  EXPECT_GT(r[25], 0.8);
  EXPECT_GT(r[25], r[12]);
}

TEST(DominantPeriod, RecoversSinePeriod) {
  const auto xs = sine(500, 30.0, 0.1, 3);
  const std::size_t p = dominant_period(xs, 100);
  EXPECT_NEAR(static_cast<double>(p), 30.0, 1.0);
}

TEST(DominantPeriod, SquareWavePeriod) {
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) {
    xs.push_back((i / 7) % 2 == 0 ? 1.0 : 0.0);  // period 14
  }
  EXPECT_EQ(dominant_period(xs, 60), 14u);
}

TEST(DominantPeriod, WhiteNoiseHasNone) {
  util::Rng rng(4);
  std::vector<double> xs;
  for (int i = 0; i < 400; ++i) xs.push_back(rng.gaussian());
  EXPECT_EQ(dominant_period(xs, 100, 0.3), 0u);
}

TEST(DominantPeriod, ShortInputIsSafe) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_EQ(dominant_period(xs, 10), 0u);
}

}  // namespace
}  // namespace amperebleed::stats
