#include "amperebleed/stats/regression.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "amperebleed/util/rng.hpp"

namespace amperebleed::stats {
namespace {

TEST(LinearFit, ExactLine) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y = {1.0, 3.0, 5.0, 7.0};
  const LinearFit f = linear_fit(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, ConstantXGivesZeroSlope) {
  const std::vector<double> x = {2.0, 2.0, 2.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  const LinearFit f = linear_fit(x, y);
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_DOUBLE_EQ(f.intercept, 2.0);
}

TEST(LinearFit, ConstantYFitsPerfectlyFlat) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {4.0, 4.0, 4.0};
  const LinearFit f = linear_fit(x, y);
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_DOUBLE_EQ(f.intercept, 4.0);
  EXPECT_DOUBLE_EQ(f.r_squared, 1.0);
}

TEST(LinearFit, Validation) {
  const std::vector<double> one = {1.0};
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_THROW(linear_fit(one, one), std::invalid_argument);
  EXPECT_THROW(linear_fit(two, one), std::invalid_argument);
}

TEST(LinearFit, RecoversSlopeUnderNoise) {
  util::Rng rng(77);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 2'000; ++i) {
    x.push_back(i);
    y.push_back(40.0 * i + 500.0 + rng.gaussian(0.0, 20.0));
  }
  const LinearFit f = linear_fit(x, y);
  EXPECT_NEAR(f.slope, 40.0, 0.05);
  EXPECT_NEAR(f.intercept, 500.0, 40.0);
  EXPECT_GT(f.r_squared, 0.999);
}

TEST(LinearFit, ResidualsOrthogonalToX) {
  // Property of least squares: sum of residuals and sum of x*residuals ~ 0.
  const std::vector<double> x = {0.5, 1.5, 2.0, 4.0, 9.0};
  const std::vector<double> y = {2.0, 1.0, 4.0, 3.0, 8.0};
  const LinearFit f = linear_fit(x, y);
  double sum_r = 0.0;
  double sum_xr = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (f.slope * x[i] + f.intercept);
    sum_r += r;
    sum_xr += x[i] * r;
  }
  EXPECT_NEAR(sum_r, 0.0, 1e-9);
  EXPECT_NEAR(sum_xr, 0.0, 1e-9);
}

}  // namespace
}  // namespace amperebleed::stats
