#include "amperebleed/stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace amperebleed::stats {
namespace {

TEST(Summarize, EmptyInputIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summarize, KnownValues) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.variance, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Mean, SingleElement) {
  const std::vector<double> xs = {3.25};
  EXPECT_DOUBLE_EQ(mean(xs), 3.25);
}

TEST(SampleVariance, BesselCorrection) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(variance(xs), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(sample_variance(xs), 1.0);
  EXPECT_DOUBLE_EQ(sample_variance(std::vector<double>{5.0}), 0.0);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(Quantile, Validation) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(xs, 1.1), std::invalid_argument);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Mad, RobustToOutliers) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 1000.0};
  EXPECT_DOUBLE_EQ(mad(xs), 1.0);
}

TEST(MeanAbsSuccessiveDiff, KnownSeries) {
  const std::vector<double> xs = {0.0, 40.0, 80.0, 120.0};
  EXPECT_DOUBLE_EQ(mean_abs_successive_diff(xs), 40.0);
  const std::vector<double> zig = {0.0, 1.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(mean_abs_successive_diff(zig), 1.0);
}

TEST(MeanAbsSuccessiveDiff, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(mean_abs_successive_diff({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_abs_successive_diff(std::vector<double>{5.0}), 0.0);
}

class QuantileMonotoneProperty : public ::testing::TestWithParam<double> {};

TEST_P(QuantileMonotoneProperty, QuantileIsMonotoneInQ) {
  const std::vector<double> xs = {5.0, -2.0, 7.5, 0.0, 3.0, 3.0, 9.0};
  const double q = GetParam();
  EXPECT_LE(quantile(xs, q * 0.5), quantile(xs, q));
  EXPECT_LE(quantile(xs, q), quantile(xs, 0.5 + q * 0.5));
}

INSTANTIATE_TEST_SUITE_P(Quantiles, QuantileMonotoneProperty,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 1.0));

}  // namespace
}  // namespace amperebleed::stats
