#include "amperebleed/stats/separability.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "amperebleed/util/rng.hpp"

namespace amperebleed::stats {
namespace {

std::vector<double> gaussian_samples(double mean, double sigma, int n,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(rng.gaussian(mean, sigma));
  return xs;
}

TEST(ThresholdAccuracy, DisjointClassesArePerfect) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {10.0, 11.0, 12.0};
  EXPECT_DOUBLE_EQ(threshold_accuracy(a, b), 1.0);
  EXPECT_DOUBLE_EQ(threshold_accuracy(b, a), 1.0);  // orientation-agnostic
}

TEST(ThresholdAccuracy, IdenticalClassesAreChance) {
  // fa == fb at every threshold, so balanced accuracy is exactly chance.
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(threshold_accuracy(a, a), 0.5);
}

TEST(ThresholdAccuracy, EmptyClassThrows) {
  const std::vector<double> a = {1.0};
  EXPECT_THROW(threshold_accuracy(a, {}), std::invalid_argument);
  EXPECT_THROW(threshold_accuracy({}, a), std::invalid_argument);
}

TEST(ThresholdAccuracy, GaussianOverlapMatchesTheory) {
  // Two unit-variance Gaussians d apart: best balanced accuracy = Phi(d/2).
  const auto a = gaussian_samples(0.0, 1.0, 20'000, 1);
  const auto b = gaussian_samples(2.0, 1.0, 20'000, 2);
  const double phi_1 = 0.8413;  // Phi(1.0)
  EXPECT_NEAR(threshold_accuracy(a, b), phi_1, 0.01);
}

TEST(Separable, ThresholdControlsDecision) {
  const auto a = gaussian_samples(0.0, 1.0, 5'000, 3);
  const auto b = gaussian_samples(4.0, 1.0, 5'000, 4);  // Phi(2) = 0.977
  EXPECT_TRUE(separable(a, b, 0.95));
  EXPECT_FALSE(separable(a, b, 0.999));
}

TEST(GroupIndistinguishable, WellSeparatedClassesGetDistinctGroups) {
  std::vector<std::vector<double>> classes;
  for (int k = 0; k < 5; ++k) {
    classes.push_back(gaussian_samples(k * 10.0, 0.5, 2'000, 10 + k));
  }
  const auto ids = group_indistinguishable(classes);
  EXPECT_EQ(ids, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(count_separable_groups(classes), 5u);
}

TEST(GroupIndistinguishable, OverlappingNeighboursMerge) {
  // Classes 0.5 sigma apart pairwise merge; every 3rd step is separable.
  std::vector<std::vector<double>> classes;
  for (int k = 0; k < 9; ++k) {
    classes.push_back(gaussian_samples(k * 1.0, 1.0, 4'000, 30 + k));
  }
  const auto groups = count_separable_groups(classes, 0.95);
  EXPECT_LT(groups, 9u);
  EXPECT_GE(groups, 2u);
  // Group ids must be nondecreasing.
  const auto ids = group_indistinguishable(classes, 0.95);
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_GE(ids[i], ids[i - 1]);
    EXPECT_LE(ids[i] - ids[i - 1], 1u);
  }
}

TEST(GroupIndistinguishable, EmptyAndSingleton) {
  EXPECT_EQ(count_separable_groups({}), 0u);
  std::vector<std::vector<double>> one = {{1.0, 2.0}};
  EXPECT_EQ(count_separable_groups(one), 1u);
}

TEST(CohensD, KnownEffectSize) {
  const auto a = gaussian_samples(0.0, 1.0, 50'000, 50);
  const auto b = gaussian_samples(1.0, 1.0, 50'000, 51);
  EXPECT_NEAR(cohens_d(a, b), 1.0, 0.03);
}

TEST(CohensD, DegenerateCases) {
  const std::vector<double> c1 = {2.0, 2.0};
  const std::vector<double> c2 = {3.0, 3.0};
  EXPECT_DOUBLE_EQ(cohens_d(c1, c1), 0.0);
  EXPECT_TRUE(std::isinf(cohens_d(c1, c2)));
  EXPECT_THROW(cohens_d(c1, {}), std::invalid_argument);
}

}  // namespace
}  // namespace amperebleed::stats
