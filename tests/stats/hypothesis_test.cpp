#include "amperebleed/stats/hypothesis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "amperebleed/util/rng.hpp"

namespace amperebleed::stats {
namespace {

std::vector<double> gaussians(double mean, double sigma, int n,
                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs;
  for (int i = 0; i < n; ++i) xs.push_back(rng.gaussian(mean, sigma));
  return xs;
}

TEST(IncompleteBeta, KnownValues) {
  // I_x(1,1) = x (uniform CDF).
  EXPECT_NEAR(incomplete_beta(1.0, 1.0, 0.3), 0.3, 1e-10);
  // I_x(2,2) = x^2 (3 - 2x).
  EXPECT_NEAR(incomplete_beta(2.0, 2.0, 0.5), 0.5, 1e-10);
  EXPECT_NEAR(incomplete_beta(2.0, 2.0, 0.25), 0.0625 * 2.5, 1e-10);
  // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(incomplete_beta(3.0, 5.0, 0.4),
              1.0 - incomplete_beta(5.0, 3.0, 0.6), 1e-10);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
  EXPECT_THROW(incomplete_beta(1.0, 1.0, 1.5), std::invalid_argument);
}

TEST(WelchT, IdenticalDistributionsGiveLargePValue) {
  const auto a = gaussians(5.0, 1.0, 400, 1);
  const auto b = gaussians(5.0, 1.0, 400, 2);
  const auto result = welch_t_test(a, b);
  EXPECT_GT(result.p_value, 0.01);
  EXPECT_LT(std::fabs(result.t), 3.0);
  EXPECT_GT(result.dof, 300.0);
}

TEST(WelchT, SeparatedMeansGiveTinyPValue) {
  const auto a = gaussians(0.0, 1.0, 200, 3);
  const auto b = gaussians(1.0, 1.0, 200, 4);
  const auto result = welch_t_test(a, b);
  EXPECT_LT(result.p_value, 1e-6);
  EXPECT_LT(result.t, 0.0);  // mean(a) < mean(b)
}

TEST(WelchT, HandlesUnequalVariancesAndSizes) {
  const auto a = gaussians(0.0, 0.2, 50, 5);
  const auto b = gaussians(0.0, 5.0, 500, 6);
  const auto result = welch_t_test(a, b);
  EXPECT_GT(result.p_value, 0.01);
  // Welch dof is pulled toward the noisier group's size.
  EXPECT_LT(result.dof, 600.0);
}

TEST(WelchT, DegenerateConstantSamples) {
  const std::vector<double> same = {2.0, 2.0, 2.0};
  const std::vector<double> other = {3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(welch_t_test(same, same).p_value, 1.0);
  EXPECT_DOUBLE_EQ(welch_t_test(same, other).p_value, 0.0);
  EXPECT_THROW(welch_t_test(std::vector<double>{1.0}, same),
               std::invalid_argument);
}

TEST(WelchT, TwoSidedPMatchesKnownCase) {
  // t = 2.0 with dof = 10 -> two-sided p ~ 0.0734 (tables).
  // Construct via the exposed beta identity instead of sampling.
  const double x = 10.0 / (10.0 + 4.0);
  EXPECT_NEAR(incomplete_beta(5.0, 0.5, x), 0.0734, 0.0005);
}

TEST(KsTest, IdenticalSamplesGiveZeroDistance) {
  const auto a = gaussians(0.0, 1.0, 300, 7);
  const auto result = ks_test(a, a);
  EXPECT_DOUBLE_EQ(result.d, 0.0);
  EXPECT_NEAR(result.p_value, 1.0, 1e-6);
}

TEST(KsTest, SameMeanDifferentShapeIsDetected) {
  // The t-test is blind to a pure variance change; KS is not.
  const auto narrow = gaussians(0.0, 0.5, 600, 8);
  const auto wide = gaussians(0.0, 2.0, 600, 9);
  EXPECT_GT(welch_t_test(narrow, wide).p_value, 0.01);
  EXPECT_LT(ks_test(narrow, wide).p_value, 1e-6);
}

TEST(KsTest, DisjointDistributionsMaxOutD) {
  const auto a = gaussians(0.0, 0.1, 100, 10);
  const auto b = gaussians(10.0, 0.1, 100, 11);
  const auto result = ks_test(a, b);
  EXPECT_DOUBLE_EQ(result.d, 1.0);
  EXPECT_LT(result.p_value, 1e-12);
}

TEST(KsTest, SameDistributionLargeP) {
  const auto a = gaussians(3.0, 2.0, 500, 12);
  const auto b = gaussians(3.0, 2.0, 500, 13);
  EXPECT_GT(ks_test(a, b).p_value, 0.01);
}

TEST(KsTest, EmptySampleThrows) {
  const std::vector<double> a = {1.0};
  EXPECT_THROW(ks_test(a, {}), std::invalid_argument);
}

TEST(MannWhitney, IdenticalDistributionsGiveLargePValue) {
  const auto a = gaussians(5.0, 1.0, 200, 21);
  const auto b = gaussians(5.0, 1.0, 200, 22);
  const auto result = mann_whitney_u(a, b);
  EXPECT_GT(result.p_value, 0.01);
  EXPECT_LT(std::fabs(result.z), 3.0);
}

TEST(MannWhitney, ShiftedDistributionsGiveTinyPValue) {
  const auto a = gaussians(0.0, 1.0, 100, 23);
  const auto b = gaussians(1.5, 1.0, 100, 24);
  const auto result = mann_whitney_u(a, b);
  EXPECT_LT(result.p_value, 1e-6);
  // a ranks below b -> U below its na*nb/2 midpoint -> negative z.
  EXPECT_LT(result.z, 0.0);
  EXPECT_LT(result.u, 100.0 * 100.0 / 2.0);
}

TEST(MannWhitney, RobustToOutliersWhereTTestIsNot) {
  // Rank statistics ignore magnitude: one absurd outlier must not move the
  // verdict on otherwise identical samples.
  auto a = gaussians(0.0, 1.0, 80, 25);
  const auto b = gaussians(0.0, 1.0, 80, 26);
  a[0] = 1e9;
  EXPECT_GT(mann_whitney_u(a, b).p_value, 0.01);
}

TEST(MannWhitney, HandlesHeavyTies) {
  // Discrete two-valued samples exercise the midrank + tie-correction path.
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 60; ++i) {
    a.push_back(i % 2 == 0 ? 0.0 : 1.0);
    b.push_back(i % 2 == 0 ? 0.0 : 1.0);
  }
  EXPECT_GT(mann_whitney_u(a, b).p_value, 0.5);

  // Shift the mix: b is mostly ones -> detectable despite ties.
  std::vector<double> c;
  for (int i = 0; i < 60; ++i) c.push_back(i % 6 == 0 ? 0.0 : 1.0);
  EXPECT_LT(mann_whitney_u(a, c).p_value, 0.01);
}

TEST(MannWhitney, DegenerateInputs) {
  const std::vector<double> same = {2.0, 2.0, 2.0, 2.0};
  // All values tied across both samples: variance collapses -> p = 1.
  EXPECT_DOUBLE_EQ(mann_whitney_u(same, same).p_value, 1.0);
  EXPECT_THROW(mann_whitney_u({}, same), std::invalid_argument);
  EXPECT_THROW(mann_whitney_u(same, {}), std::invalid_argument);
}

TEST(MannWhitney, KnownSmallSampleU) {
  // Textbook example: a = {1,2,3}, b = {4,5,6}. All of b beats all of a,
  // so U_a = 0 and the rank-sum of a is 6.
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, 5.0, 6.0};
  const auto result = mann_whitney_u(a, b);
  EXPECT_DOUBLE_EQ(result.u, 0.0);
  EXPECT_LT(result.z, 0.0);
  // Symmetry: swapping the samples mirrors U around na*nb.
  EXPECT_DOUBLE_EQ(mann_whitney_u(b, a).u, 9.0);
  EXPECT_NEAR(mann_whitney_u(b, a).p_value, result.p_value, 1e-12);
}

}  // namespace
}  // namespace amperebleed::stats
