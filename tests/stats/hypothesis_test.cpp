#include "amperebleed/stats/hypothesis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "amperebleed/util/rng.hpp"

namespace amperebleed::stats {
namespace {

std::vector<double> gaussians(double mean, double sigma, int n,
                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs;
  for (int i = 0; i < n; ++i) xs.push_back(rng.gaussian(mean, sigma));
  return xs;
}

TEST(IncompleteBeta, KnownValues) {
  // I_x(1,1) = x (uniform CDF).
  EXPECT_NEAR(incomplete_beta(1.0, 1.0, 0.3), 0.3, 1e-10);
  // I_x(2,2) = x^2 (3 - 2x).
  EXPECT_NEAR(incomplete_beta(2.0, 2.0, 0.5), 0.5, 1e-10);
  EXPECT_NEAR(incomplete_beta(2.0, 2.0, 0.25), 0.0625 * 2.5, 1e-10);
  // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(incomplete_beta(3.0, 5.0, 0.4),
              1.0 - incomplete_beta(5.0, 3.0, 0.6), 1e-10);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
  EXPECT_THROW(incomplete_beta(1.0, 1.0, 1.5), std::invalid_argument);
}

TEST(WelchT, IdenticalDistributionsGiveLargePValue) {
  const auto a = gaussians(5.0, 1.0, 400, 1);
  const auto b = gaussians(5.0, 1.0, 400, 2);
  const auto result = welch_t_test(a, b);
  EXPECT_GT(result.p_value, 0.01);
  EXPECT_LT(std::fabs(result.t), 3.0);
  EXPECT_GT(result.dof, 300.0);
}

TEST(WelchT, SeparatedMeansGiveTinyPValue) {
  const auto a = gaussians(0.0, 1.0, 200, 3);
  const auto b = gaussians(1.0, 1.0, 200, 4);
  const auto result = welch_t_test(a, b);
  EXPECT_LT(result.p_value, 1e-6);
  EXPECT_LT(result.t, 0.0);  // mean(a) < mean(b)
}

TEST(WelchT, HandlesUnequalVariancesAndSizes) {
  const auto a = gaussians(0.0, 0.2, 50, 5);
  const auto b = gaussians(0.0, 5.0, 500, 6);
  const auto result = welch_t_test(a, b);
  EXPECT_GT(result.p_value, 0.01);
  // Welch dof is pulled toward the noisier group's size.
  EXPECT_LT(result.dof, 600.0);
}

TEST(WelchT, DegenerateConstantSamples) {
  const std::vector<double> same = {2.0, 2.0, 2.0};
  const std::vector<double> other = {3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(welch_t_test(same, same).p_value, 1.0);
  EXPECT_DOUBLE_EQ(welch_t_test(same, other).p_value, 0.0);
  EXPECT_THROW(welch_t_test(std::vector<double>{1.0}, same),
               std::invalid_argument);
}

TEST(WelchT, TwoSidedPMatchesKnownCase) {
  // t = 2.0 with dof = 10 -> two-sided p ~ 0.0734 (tables).
  // Construct via the exposed beta identity instead of sampling.
  const double x = 10.0 / (10.0 + 4.0);
  EXPECT_NEAR(incomplete_beta(5.0, 0.5, x), 0.0734, 0.0005);
}

TEST(KsTest, IdenticalSamplesGiveZeroDistance) {
  const auto a = gaussians(0.0, 1.0, 300, 7);
  const auto result = ks_test(a, a);
  EXPECT_DOUBLE_EQ(result.d, 0.0);
  EXPECT_NEAR(result.p_value, 1.0, 1e-6);
}

TEST(KsTest, SameMeanDifferentShapeIsDetected) {
  // The t-test is blind to a pure variance change; KS is not.
  const auto narrow = gaussians(0.0, 0.5, 600, 8);
  const auto wide = gaussians(0.0, 2.0, 600, 9);
  EXPECT_GT(welch_t_test(narrow, wide).p_value, 0.01);
  EXPECT_LT(ks_test(narrow, wide).p_value, 1e-6);
}

TEST(KsTest, DisjointDistributionsMaxOutD) {
  const auto a = gaussians(0.0, 0.1, 100, 10);
  const auto b = gaussians(10.0, 0.1, 100, 11);
  const auto result = ks_test(a, b);
  EXPECT_DOUBLE_EQ(result.d, 1.0);
  EXPECT_LT(result.p_value, 1e-12);
}

TEST(KsTest, SameDistributionLargeP) {
  const auto a = gaussians(3.0, 2.0, 500, 12);
  const auto b = gaussians(3.0, 2.0, 500, 13);
  EXPECT_GT(ks_test(a, b).p_value, 0.01);
}

TEST(KsTest, EmptySampleThrows) {
  const std::vector<double> a = {1.0};
  EXPECT_THROW(ks_test(a, {}), std::invalid_argument);
}

TEST(MannWhitney, IdenticalDistributionsGiveLargePValue) {
  const auto a = gaussians(5.0, 1.0, 200, 21);
  const auto b = gaussians(5.0, 1.0, 200, 22);
  const auto result = mann_whitney_u(a, b);
  EXPECT_GT(result.p_value, 0.01);
  EXPECT_LT(std::fabs(result.z), 3.0);
}

TEST(MannWhitney, ShiftedDistributionsGiveTinyPValue) {
  const auto a = gaussians(0.0, 1.0, 100, 23);
  const auto b = gaussians(1.5, 1.0, 100, 24);
  const auto result = mann_whitney_u(a, b);
  EXPECT_LT(result.p_value, 1e-6);
  // a ranks below b -> U below its na*nb/2 midpoint -> negative z.
  EXPECT_LT(result.z, 0.0);
  EXPECT_LT(result.u, 100.0 * 100.0 / 2.0);
}

TEST(MannWhitney, RobustToOutliersWhereTTestIsNot) {
  // Rank statistics ignore magnitude: one absurd outlier must not move the
  // verdict on otherwise identical samples.
  auto a = gaussians(0.0, 1.0, 80, 25);
  const auto b = gaussians(0.0, 1.0, 80, 26);
  a[0] = 1e9;
  EXPECT_GT(mann_whitney_u(a, b).p_value, 0.01);
}

TEST(MannWhitney, HandlesHeavyTies) {
  // Discrete two-valued samples exercise the midrank + tie-correction path.
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 60; ++i) {
    a.push_back(i % 2 == 0 ? 0.0 : 1.0);
    b.push_back(i % 2 == 0 ? 0.0 : 1.0);
  }
  EXPECT_GT(mann_whitney_u(a, b).p_value, 0.5);

  // Shift the mix: b is mostly ones -> detectable despite ties.
  std::vector<double> c;
  for (int i = 0; i < 60; ++i) c.push_back(i % 6 == 0 ? 0.0 : 1.0);
  EXPECT_LT(mann_whitney_u(a, c).p_value, 0.01);
}

TEST(MannWhitney, DegenerateInputs) {
  const std::vector<double> same = {2.0, 2.0, 2.0, 2.0};
  // All values tied across both samples: variance collapses -> p = 1.
  EXPECT_DOUBLE_EQ(mann_whitney_u(same, same).p_value, 1.0);
  EXPECT_THROW(mann_whitney_u({}, same), std::invalid_argument);
  EXPECT_THROW(mann_whitney_u(same, {}), std::invalid_argument);
}

TEST(MannWhitney, KnownSmallSampleU) {
  // Textbook example: a = {1,2,3}, b = {4,5,6}. All of b beats all of a,
  // so U_a = 0 and the rank-sum of a is 6.
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, 5.0, 6.0};
  const auto result = mann_whitney_u(a, b);
  EXPECT_DOUBLE_EQ(result.u, 0.0);
  EXPECT_LT(result.z, 0.0);
  // Symmetry: swapping the samples mirrors U around na*nb.
  EXPECT_DOUBLE_EQ(mann_whitney_u(b, a).u, 9.0);
  EXPECT_NEAR(mann_whitney_u(b, a).p_value, result.p_value, 1e-12);
}

TEST(RegularizedGammaQ, MatchesChiSquareCriticalValues) {
  // Q(dof/2, x/2) is the chi-square survival function; the classic
  // critical-value table pins it down: P(chi2_1 > 3.841) = 0.05, etc.
  EXPECT_NEAR(regularized_gamma_q(0.5, 3.841 / 2.0), 0.05, 5e-4);
  EXPECT_NEAR(regularized_gamma_q(0.5, 6.635 / 2.0), 0.01, 5e-4);
  EXPECT_NEAR(regularized_gamma_q(1.0, 5.991 / 2.0), 0.05, 5e-4);
  EXPECT_NEAR(regularized_gamma_q(2.5, 11.070 / 2.0), 0.05, 5e-4);
  EXPECT_NEAR(regularized_gamma_q(5.0, 18.307 / 2.0), 0.05, 5e-4);
  // Exact identity: Q(1, x) = exp(-x).
  EXPECT_NEAR(regularized_gamma_q(1.0, 2.0), std::exp(-2.0), 1e-12);
  // Boundaries and domain errors.
  EXPECT_DOUBLE_EQ(regularized_gamma_q(3.0, 0.0), 1.0);
  EXPECT_THROW(regularized_gamma_q(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(regularized_gamma_q(1.0, -1.0), std::invalid_argument);
}

TEST(ChiSquareGof, PerfectFitGivesPOne) {
  const std::vector<double> o = {25.0, 25.0, 25.0, 25.0};
  const auto result = chi_square_gof(o, o);
  EXPECT_DOUBLE_EQ(result.chi2, 0.0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
  EXPECT_EQ(result.buckets_used, 4u);
  EXPECT_DOUBLE_EQ(result.dof, 3.0);
}

TEST(ChiSquareGof, KnownFairDieExample) {
  // Classic fair-die check: 60 rolls, observed {5,8,9,8,10,20} against a
  // uniform expectation of 10 per face. chi2 = 13.4, dof = 5,
  // p = Q(2.5, 6.7) ~ 0.0199.
  const std::vector<double> observed = {5.0, 8.0, 9.0, 8.0, 10.0, 20.0};
  const std::vector<double> expected(6, 10.0);
  const auto result = chi_square_gof(observed, expected);
  EXPECT_NEAR(result.chi2, 13.4, 1e-9);
  EXPECT_DOUBLE_EQ(result.dof, 5.0);
  EXPECT_NEAR(result.p_value, 0.0199, 5e-4);
}

TEST(ChiSquareGof, RescalesUnnormalizedExpected) {
  // Expected as priors (sums to 1) against 100 observations: same verdict
  // as pre-scaled counts.
  const std::vector<double> observed = {30.0, 30.0, 40.0};
  const std::vector<double> priors = {0.25, 0.25, 0.5};
  const std::vector<double> counts = {25.0, 25.0, 50.0};
  const auto from_priors = chi_square_gof(observed, priors);
  const auto from_counts = chi_square_gof(observed, counts);
  EXPECT_NEAR(from_priors.chi2, from_counts.chi2, 1e-9);
  EXPECT_NEAR(from_priors.p_value, from_counts.p_value, 1e-9);
}

TEST(ChiSquareGof, MergesSmallExpectedBuckets) {
  // Cochran's rule: buckets with expected < 5 merge with their neighbours.
  // Expected {2,2,2,2,12} -> {(2+2+2), (2+12)} after left-to-right merging
  // with the deficient accumulator folding forward.
  const std::vector<double> observed = {1.0, 3.0, 2.0, 2.0, 12.0};
  const std::vector<double> expected = {2.0, 2.0, 2.0, 2.0, 12.0};
  const auto result = chi_square_gof(observed, expected);
  EXPECT_EQ(result.buckets_used, 2u);
  EXPECT_DOUBLE_EQ(result.dof, 1.0);
  // Merged: observed {6, 14} vs expected {6, 14} -> perfect fit.
  EXPECT_DOUBLE_EQ(result.chi2, 0.0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(ChiSquareGof, DegeneratesToPOneWhenEverythingMerges) {
  // All-tiny expectations collapse to a single bucket: nothing to test.
  const std::vector<double> observed = {1.0, 2.0, 1.0};
  const std::vector<double> expected = {1.0, 1.0, 2.0};
  const auto result = chi_square_gof(observed, expected);
  EXPECT_EQ(result.buckets_used, 1u);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(ChiSquareGof, RejectsBadInput) {
  const std::vector<double> ok = {10.0, 10.0};
  EXPECT_THROW(chi_square_gof({}, {}), std::invalid_argument);
  EXPECT_THROW(chi_square_gof(ok, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(chi_square_gof(std::vector<double>{-1.0, 2.0}, ok),
               std::invalid_argument);
  EXPECT_THROW(chi_square_gof(ok, std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace amperebleed::stats
