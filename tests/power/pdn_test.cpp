#include "amperebleed/power/pdn.hpp"

#include <gtest/gtest.h>

namespace amperebleed::power {
namespace {

TEST(PdnModel, Validation) {
  PdnConfig bad;
  bad.v_min = 1.0;
  bad.v_max = 0.9;
  EXPECT_THROW(PdnModel{bad}, std::invalid_argument);
  PdnConfig gain;
  gain.stabilizer_gain = 1.5;
  EXPECT_THROW(PdnModel{gain}, std::invalid_argument);
  PdnConfig neg;
  neg.r_effective_ohms = -1.0;
  EXPECT_THROW(PdnModel{neg}, std::invalid_argument);
}

TEST(PdnModel, SteadyVoltageDropsWithLoad) {
  PdnConfig c;
  c.v_nominal = 0.85;
  c.r_effective_ohms = 0.015;
  c.stabilizer_gain = 0.0;  // legacy PDN: full droop visible
  c.idle_current_amps = 0.0;
  PdnModel pdn(c);
  EXPECT_DOUBLE_EQ(pdn.steady_voltage(0.0), 0.85);
  EXPECT_DOUBLE_EQ(pdn.steady_voltage(1.0), 0.85 - 0.015);
  EXPECT_GT(pdn.steady_voltage(0.5), pdn.steady_voltage(1.5));
}

TEST(PdnModel, StabilizerShrinksDroop) {
  PdnConfig legacy;
  legacy.stabilizer_gain = 0.0;
  PdnConfig modern = legacy;
  modern.stabilizer_gain = 0.9875;
  const double droop_legacy =
      legacy.v_nominal - PdnModel(legacy).steady_voltage(1.0);
  const double droop_modern =
      modern.v_nominal - PdnModel(modern).steady_voltage(1.0);
  EXPECT_NEAR(droop_modern / droop_legacy, 1.0 - 0.9875, 1e-9);
}

TEST(PdnModel, ClampsIntoBand) {
  PdnConfig c;
  c.v_nominal = 0.85;
  c.v_min = 0.825;
  c.v_max = 0.876;
  c.r_effective_ohms = 0.1;
  c.stabilizer_gain = 0.0;
  PdnModel pdn(c);
  EXPECT_DOUBLE_EQ(pdn.steady_voltage(100.0), 0.825);   // huge load
  EXPECT_DOUBLE_EQ(pdn.steady_voltage(-100.0), 0.876);  // back-feed clamped
}

TEST(PdnModel, IdleCurrentTrimsSetpoint) {
  PdnConfig c;
  c.stabilizer_gain = 0.0;
  c.r_effective_ohms = 0.01;
  c.idle_current_amps = 2.0;
  PdnModel pdn(c);
  EXPECT_DOUBLE_EQ(pdn.steady_voltage(2.0), c.v_nominal);
}

TEST(PdnModel, RawDroopEquation1) {
  PdnConfig c;
  c.r_effective_ohms = 0.015;
  c.l_effective_henries = 1e-9;
  PdnModel pdn(c);
  // V_drop = I*R + L*dI/dt
  EXPECT_DOUBLE_EQ(pdn.raw_droop(2.0, 0.0), 0.03);
  EXPECT_DOUBLE_EQ(pdn.raw_droop(0.0, 1e6), 1e-3);
  EXPECT_DOUBLE_EQ(pdn.raw_droop(2.0, 1e6), 0.031);
}

TEST(PdnModel, VoltageSignalTracksLoadSteps) {
  PdnConfig c;
  c.stabilizer_gain = 0.5;
  c.r_effective_ohms = 0.01;
  c.idle_current_amps = 1.0;
  PdnModel pdn(c);

  sim::PiecewiseConstant load(1.0);
  load.append(sim::milliseconds(10), 3.0);
  const auto v = pdn.voltage_signal(load);

  EXPECT_DOUBLE_EQ(v.value_at(sim::TimeNs{0}), c.v_nominal);
  // After the transient settles the steady droop applies.
  EXPECT_DOUBLE_EQ(v.value_at(sim::milliseconds(11)),
                   pdn.steady_voltage(3.0));
  // During the transient the voltage dips below the new steady level.
  EXPECT_LE(v.value_at(sim::milliseconds(10)), pdn.steady_voltage(3.0));
}

TEST(PdnModel, VoltageSignalTransientStaysInBand) {
  PdnConfig c;
  c.l_effective_henries = 1.0;  // absurdly large to force clamping
  PdnModel pdn(c);
  sim::PiecewiseConstant load(0.0);
  load.append(sim::milliseconds(1), 10.0);
  const auto v = pdn.voltage_signal(load);
  EXPECT_GE(v.min_over(sim::TimeNs{0}, sim::seconds(1)), c.v_min);
  EXPECT_LE(v.max_over(sim::TimeNs{0}, sim::seconds(1)), c.v_max);
}

TEST(PdnModel, BackToBackStepsDoNotThrow) {
  // Load changes spaced closer than the transient width must not violate
  // the signal's monotonic-append invariant.
  PdnConfig c;
  c.transient_width = sim::microseconds(10);
  PdnModel pdn(c);
  sim::PiecewiseConstant load(0.0);
  load.append(sim::microseconds(1), 1.0);
  load.append(sim::microseconds(3), 2.0);
  load.append(sim::microseconds(5), 1.5);
  EXPECT_NO_THROW(pdn.voltage_signal(load));
}

}  // namespace
}  // namespace amperebleed::power
