#include "amperebleed/power/noise_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace amperebleed::power {
namespace {

TEST(RailNoiseProcess, DeterministicForSeed) {
  RailNoiseConfig config;
  RailNoiseProcess a(config, 7);
  RailNoiseProcess b(config, 7);
  for (int i = 0; i < 20; ++i) {
    const auto sa = a.step(sim::milliseconds(1));
    const auto sb = b.step(sim::milliseconds(1));
    EXPECT_DOUBLE_EQ(sa.current_gain, sb.current_gain);
    EXPECT_DOUBLE_EQ(sa.current_offset_amps, sb.current_offset_amps);
    EXPECT_DOUBLE_EQ(sa.voltage_offset_volts, sb.voltage_offset_volts);
  }
}

TEST(RailNoiseProcess, WhiteNoiseMagnitudeMatchesConfig) {
  RailNoiseConfig config;
  config.current_white_amps = 0.01;
  config.current_drift_fraction = 0.0;  // isolate the white component
  config.voltage_drift_volts = 0.0;
  // OU with zero sigma still needs theta > 0; defaults are fine.
  RailNoiseProcess p(config, 11);
  const int n = 50'000;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    sum_sq += std::pow(p.step(sim::milliseconds(1)).current_offset_amps, 2);
  }
  EXPECT_NEAR(std::sqrt(sum_sq / n), 0.01, 0.001);
}

TEST(RailNoiseProcess, DriftGainStaysNearOne) {
  RailNoiseConfig config;
  config.current_drift_fraction = 0.005;
  RailNoiseProcess p(config, 13);
  double min_gain = 10.0;
  double max_gain = -10.0;
  for (int i = 0; i < 10'000; ++i) {
    const double g = p.step(sim::milliseconds(35)).current_gain;
    min_gain = std::min(min_gain, g);
    max_gain = std::max(max_gain, g);
  }
  // Gain wanders but stays within ~6 sigma of 1.
  EXPECT_GT(min_gain, 1.0 - 6 * 0.005);
  EXPECT_LT(max_gain, 1.0 + 6 * 0.005);
  EXPECT_NE(min_gain, max_gain);
}

TEST(RailNoiseProcess, VoltageDriftHasConfiguredStationarySpread) {
  RailNoiseConfig config;
  config.voltage_white_volts = 0.0;  // isolate the drift component
  config.voltage_drift_volts = 0.0001;
  config.voltage_drift_rate_hz = 10.0;  // fast reversion for quick mixing
  RailNoiseProcess p(config, 17);
  const int n = 20'000;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    // 500 ms >> 1/theta so samples are decorrelated.
    sum_sq += std::pow(p.step(sim::milliseconds(500)).voltage_offset_volts, 2);
  }
  EXPECT_NEAR(std::sqrt(sum_sq / n), 0.0001, 0.00001);
}

}  // namespace
}  // namespace amperebleed::power
