#include "amperebleed/power/power_model.hpp"

#include <gtest/gtest.h>

namespace amperebleed::power {
namespace {

TEST(ComponentCurrents, TotalSumsAllComponents) {
  ComponentCurrents c;
  c.logic_elements = 1.0;
  c.block_ram = 0.5;
  c.dsp = 0.25;
  c.clocks = 0.125;
  c.other = 0.0625;
  EXPECT_DOUBLE_EQ(c.total(), 1.9375);
}

TEST(ComponentCurrents, AdditionAndScaling) {
  ComponentCurrents a{1.0, 2.0, 3.0, 4.0, 5.0};
  ComponentCurrents b{0.5, 0.5, 0.5, 0.5, 0.5};
  const ComponentCurrents sum = a + b;
  EXPECT_DOUBLE_EQ(sum.logic_elements, 1.5);
  EXPECT_DOUBLE_EQ(sum.other, 5.5);
  const ComponentCurrents scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled.dsp, 6.0);
}

TEST(DynamicPower, Equation2) {
  // P_dyn = V_dd * sum(I) — the physics behind the attack.
  ComponentCurrents c{1.0, 0.0, 1.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(dynamic_power_watts(0.85, c), 1.7);
  EXPECT_DOUBLE_EQ(dynamic_power_watts(0.0, c), 0.0);
  EXPECT_THROW(dynamic_power_watts(-0.1, c), std::invalid_argument);
}

TEST(SwitchingCurrent, LinearInAllFactors) {
  const double base = switching_current_amps(1000.0, 40e-9, 300.0);
  EXPECT_DOUBLE_EQ(switching_current_amps(2000.0, 40e-9, 300.0), 2 * base);
  EXPECT_DOUBLE_EQ(switching_current_amps(1000.0, 80e-9, 300.0), 2 * base);
  EXPECT_DOUBLE_EQ(switching_current_amps(1000.0, 40e-9, 600.0), 2 * base);
  EXPECT_THROW(switching_current_amps(-1.0, 1.0, 1.0), std::invalid_argument);
}

TEST(LeakageCurrent, ScalesWithDeployment) {
  // 160k deployed virus instances at 4 uA leak 0.64 A — why Fig 2's current
  // does not start from zero.
  EXPECT_DOUBLE_EQ(leakage_current_amps(160'000.0, 4e-6), 0.64);
  EXPECT_DOUBLE_EQ(leakage_current_amps(0.0, 4e-6), 0.0);
  EXPECT_THROW(leakage_current_amps(1.0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace amperebleed::power
