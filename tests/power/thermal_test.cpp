#include "amperebleed/power/thermal.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace amperebleed::power {
namespace {

TEST(ThermalModel, Validation) {
  ThermalConfig bad;
  bad.tau_seconds = 0.0;
  EXPECT_THROW(ThermalModel{bad}, std::invalid_argument);
  ThermalConfig neg;
  neg.r_th_c_per_w = -1.0;
  EXPECT_THROW(ThermalModel{neg}, std::invalid_argument);
  ThermalConfig step;
  step.step = sim::TimeNs{0};
  EXPECT_THROW(ThermalModel{step}, std::invalid_argument);
}

TEST(ThermalModel, SteadyTemperatureIsAffine) {
  ThermalConfig c;
  c.ambient_celsius = 35.0;
  c.r_th_c_per_w = 2.0;
  ThermalModel model(c);
  EXPECT_DOUBLE_EQ(model.steady_temperature(0.0), 35.0);
  EXPECT_DOUBLE_EQ(model.steady_temperature(10.0), 55.0);
}

TEST(ThermalModel, ConstantPowerStaysAtEquilibrium) {
  ThermalModel model;
  sim::PiecewiseConstant power(5.0);
  const auto temp = model.temperature_signal(power, sim::seconds(20));
  const double expected = model.steady_temperature(5.0);
  EXPECT_NEAR(temp.value_at(sim::TimeNs{0}), expected, 1e-9);
  EXPECT_NEAR(temp.value_at(sim::seconds(19)), expected, 1e-6);
}

TEST(ThermalModel, StepResponseIsExponentialWithTau) {
  ThermalConfig c;
  c.tau_seconds = 4.0;
  c.r_th_c_per_w = 2.0;
  c.ambient_celsius = 30.0;
  ThermalModel model(c);
  sim::PiecewiseConstant power(0.0);
  power.append(sim::seconds(1), 10.0);  // +20 C step at t=1s
  const auto temp = model.temperature_signal(power, sim::seconds(40));
  // One time constant after the step: 63.2% of the way.
  const double at_tau = temp.value_at(sim::seconds(5));
  EXPECT_NEAR(at_tau, 30.0 + 20.0 * (1.0 - std::exp(-1.0)), 0.2);
  // Five time constants: essentially settled.
  EXPECT_NEAR(temp.value_at(sim::seconds(25)), 50.0, 0.2);
  // Before the step: at ambient equilibrium.
  EXPECT_NEAR(temp.value_at(sim::milliseconds(500)), 30.0, 1e-6);
}

TEST(ThermalModel, TemperatureLagsFastLoadChanges) {
  // A 100 ms power burst barely moves an 8 s time constant.
  ThermalModel model;
  sim::PiecewiseConstant power(2.0);
  power.append(sim::seconds(2), 12.0);
  power.append(sim::seconds(2) + sim::milliseconds(100), 2.0);
  const auto temp = model.temperature_signal(power, sim::seconds(5));
  const double before = temp.value_at(sim::seconds(2));
  const double peak = temp.max_over(sim::seconds(2), sim::seconds(5));
  // Steady delta would be 22 C; the burst achieves ~1.2% of it.
  EXPECT_LT(peak - before, 0.6);
  EXPECT_GT(peak - before, 0.05);
}

TEST(ThermalModel, NegativeEndRejected) {
  ThermalModel model;
  sim::PiecewiseConstant power(1.0);
  EXPECT_THROW(model.temperature_signal(power, sim::TimeNs{-1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace amperebleed::power
