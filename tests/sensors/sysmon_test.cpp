#include "amperebleed/sensors/sysmon.hpp"

#include <gtest/gtest.h>

namespace amperebleed::sensors {
namespace {

SysmonConfig quiet() {
  SysmonConfig c;
  c.temp_noise_celsius = 0.0;
  return c;
}

TEST(Sysmon, Validation) {
  SysmonConfig bad;
  bad.conversion_period = sim::TimeNs{0};
  EXPECT_THROW(Sysmon(bad, 1), std::invalid_argument);
  SysmonConfig scale;
  scale.temp_scale = 0.0;
  EXPECT_THROW(Sysmon(scale, 1), std::invalid_argument);
}

TEST(Sysmon, RequiresBinding) {
  Sysmon dev(quiet(), 1);
  EXPECT_THROW(dev.advance_to(sim::milliseconds(10)), std::logic_error);
  EXPECT_THROW(dev.bind(nullptr), std::invalid_argument);
}

TEST(Sysmon, MeasuresConstantTemperature) {
  sim::PiecewiseConstant temp(52.5);
  Sysmon dev(quiet(), 1);
  dev.bind(&temp);
  dev.advance_to(sim::milliseconds(10));
  EXPECT_GT(dev.conversions_completed(), 5u);
  // SYSMONE4 transfer quantization is ~7.7 mC — well inside 0.01 C.
  EXPECT_NEAR(dev.temperature_celsius(), 52.5, 0.01);
}

TEST(Sysmon, QuantizesToTransferFunction) {
  sim::PiecewiseConstant temp(40.0);
  Sysmon dev(quiet(), 2);
  dev.bind(&temp);
  dev.advance_to(sim::milliseconds(5));
  const double scale = dev.config().temp_scale;
  const double recovered =
      dev.raw_code() * scale + dev.config().temp_offset;
  EXPECT_DOUBLE_EQ(dev.temperature_celsius(), recovered);
}

TEST(Sysmon, TracksChangingTemperature) {
  sim::PiecewiseConstant temp(40.0);
  temp.append(sim::milliseconds(50), 60.0);
  Sysmon dev(quiet(), 3);
  dev.bind(&temp);
  dev.advance_to(sim::milliseconds(40));
  EXPECT_NEAR(dev.temperature_celsius(), 40.0, 0.01);
  dev.advance_to(sim::milliseconds(100));
  EXPECT_NEAR(dev.temperature_celsius(), 60.0, 0.01);
}

TEST(Sysmon, MonotonicTime) {
  sim::PiecewiseConstant temp(40.0);
  Sysmon dev(quiet(), 4);
  dev.bind(&temp);
  dev.advance_to(sim::milliseconds(20));
  EXPECT_THROW(dev.advance_to(sim::milliseconds(19)), std::invalid_argument);
}

TEST(Sysmon, NoiseIsSeededDeterministically) {
  SysmonConfig noisy;
  noisy.temp_noise_celsius = 0.5;
  sim::PiecewiseConstant temp(45.0);
  Sysmon a(noisy, 7);
  Sysmon b(noisy, 7);
  a.bind(&temp);
  b.bind(&temp);
  a.advance_to(sim::milliseconds(30));
  b.advance_to(sim::milliseconds(30));
  EXPECT_EQ(a.raw_code(), b.raw_code());
}

}  // namespace
}  // namespace amperebleed::sensors
