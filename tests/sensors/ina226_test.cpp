#include "amperebleed/sensors/ina226.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "amperebleed/power/noise_model.hpp"

namespace amperebleed::sensors {
namespace {

power::RailNoiseConfig no_noise() {
  power::RailNoiseConfig n;
  n.current_white_amps = 0.0;
  n.current_drift_fraction = 0.0;
  n.voltage_white_volts = 0.0;
  n.voltage_drift_volts = 0.0;
  n.thermal_nonlinearity_per_amp = 0.0;
  return n;
}

struct Bench {
  sim::PiecewiseConstant current{0.0};
  sim::PiecewiseConstant voltage{0.85};
};

TEST(Ina226, Validation) {
  Ina226Config bad;
  bad.shunt_ohms = 0.0;
  EXPECT_THROW(Ina226(bad, no_noise(), 1), std::invalid_argument);
  Ina226Config lsb;
  lsb.current_lsb_amps = 0.0;
  EXPECT_THROW(Ina226(lsb, no_noise(), 1), std::invalid_argument);
  Ina226Config avg;
  avg.avg_count = 0;
  EXPECT_THROW(Ina226(avg, no_noise(), 1), std::invalid_argument);
}

TEST(Ina226, CalibrationRegisterPerDatasheet) {
  // CAL = 0.00512 / (1 mA * 5 mOhm) = 1024.
  Ina226 dev(Ina226Config{}, no_noise(), 1);
  EXPECT_EQ(dev.read_register(Ina226Register::Calibration), 1024);
}

TEST(Ina226, UpdateIntervalIsAvgTimesConversions) {
  Ina226 dev(Ina226Config{}, no_noise(), 1);
  // 16 * (1.1 ms + 1.1 ms) = 35.2 ms — the paper's default hwmon interval.
  EXPECT_EQ(dev.update_interval(), sim::microseconds(35'200));
}

TEST(Ina226, IdentificationRegisters) {
  Ina226 dev(Ina226Config{}, no_noise(), 1);
  EXPECT_EQ(dev.read_register(Ina226Register::ManufacturerId), 0x5449);
  EXPECT_EQ(dev.read_register(Ina226Register::DieId), 0x2260);
}

TEST(Ina226, MeasuresConstantCurrentExactly) {
  Bench bench;
  bench.current = sim::PiecewiseConstant(1.234);
  Ina226 dev(Ina226Config{}, no_noise(), 1);
  dev.bind(&bench.current, &bench.voltage);
  dev.advance_to(sim::milliseconds(40));
  EXPECT_EQ(dev.conversions_completed(), 1u);
  EXPECT_NEAR(dev.current_amps(), 1.234, 0.001);  // quantized at 1 mA
  EXPECT_NEAR(dev.bus_voltage_volts(), 0.85, 0.00125);
}

TEST(Ina226, CurrentQuantizedToLsb) {
  // 0.4 mA true load: the shunt ADC sees 2 uV -> code 1 (2.5 uV LSB), and
  // the current register rounds to one 1 mA LSB — sub-LSB detail is gone.
  Bench bench;
  bench.current = sim::PiecewiseConstant(0.0004);
  Ina226 dev(Ina226Config{}, no_noise(), 1);
  dev.bind(&bench.current, &bench.voltage);
  dev.advance_to(sim::milliseconds(40));
  EXPECT_DOUBLE_EQ(dev.current_amps(), 0.001);
  // Readings are always integer multiples of the current LSB.
  const double code = dev.current_amps() / dev.current_lsb_amps();
  EXPECT_DOUBLE_EQ(code, std::round(code));
}

TEST(Ina226, PowerRegisterIsCurrentTimesBusOver20000) {
  Bench bench;
  bench.current = sim::PiecewiseConstant(2.0);
  Ina226 dev(Ina226Config{}, no_noise(), 1);
  dev.bind(&bench.current, &bench.voltage);
  dev.advance_to(sim::milliseconds(40));
  const auto current_code =
      static_cast<std::int16_t>(dev.read_register(Ina226Register::Current));
  const auto bus_code = dev.read_register(Ina226Register::BusVoltage);
  const auto power_code = dev.read_register(Ina226Register::Power);
  EXPECT_EQ(power_code,
            static_cast<std::uint16_t>(std::llround(
                static_cast<double>(current_code) * bus_code / 20000.0)));
  // Engineering units: P = I*V with 25 mW LSB.
  EXPECT_NEAR(dev.power_watts(), 2.0 * 0.85, 0.025);
  EXPECT_DOUBLE_EQ(dev.power_lsb_watts(), 0.025);
}

TEST(Ina226, PowerLsbIsCoarserThanCurrentLsb) {
  // The resolution cliff the paper exploits: 25x.
  Ina226 dev(Ina226Config{}, no_noise(), 1);
  EXPECT_DOUBLE_EQ(dev.power_lsb_watts() / (dev.current_lsb_amps() * 0.85),
                   0.025 / 0.00085);
  EXPECT_DOUBLE_EQ(dev.power_lsb_watts(), 25.0 * dev.current_lsb_amps());
}

TEST(Ina226, NoConversionBeforeFirstIntervalCompletes) {
  Bench bench;
  bench.current = sim::PiecewiseConstant(1.0);
  Ina226 dev(Ina226Config{}, no_noise(), 1);
  dev.bind(&bench.current, &bench.voltage);
  dev.advance_to(sim::milliseconds(30));  // < 35.2 ms
  EXPECT_EQ(dev.conversions_completed(), 0u);
  EXPECT_DOUBLE_EQ(dev.current_amps(), 0.0);
}

TEST(Ina226, RegistersHoldBetweenConversions) {
  Bench bench;
  bench.current = sim::PiecewiseConstant(1.0);
  bench.current.append(sim::milliseconds(36), 3.0);
  Ina226 dev(Ina226Config{}, no_noise(), 1);
  dev.bind(&bench.current, &bench.voltage);
  dev.advance_to(sim::milliseconds(36));
  const double first = dev.current_amps();
  dev.advance_to(sim::milliseconds(50));  // mid second conversion
  EXPECT_DOUBLE_EQ(dev.current_amps(), first);
  dev.advance_to(sim::milliseconds(71));  // second conversion done
  EXPECT_GT(dev.current_amps(), first);
}

TEST(Ina226, ConversionAveragesTheWindow) {
  Bench bench;
  // 1 A for the first half of the conversion window, 3 A for the second.
  bench.current = sim::PiecewiseConstant(1.0);
  bench.current.append(sim::microseconds(17'600), 3.0);
  Ina226 dev(Ina226Config{}, no_noise(), 1);
  dev.bind(&bench.current, &bench.voltage);
  dev.advance_to(sim::milliseconds(36));
  EXPECT_NEAR(dev.current_amps(), 2.0, 0.05);
}

TEST(Ina226, TimeCannotGoBackwards) {
  Bench bench;
  Ina226 dev(Ina226Config{}, no_noise(), 1);
  dev.bind(&bench.current, &bench.voltage);
  dev.advance_to(sim::milliseconds(100));
  EXPECT_THROW(dev.advance_to(sim::milliseconds(99)), std::invalid_argument);
}

TEST(Ina226, AdvanceRequiresBinding) {
  Ina226 dev(Ina226Config{}, no_noise(), 1);
  EXPECT_THROW(dev.advance_to(sim::milliseconds(40)), std::logic_error);
  Bench bench;
  EXPECT_THROW(dev.bind(nullptr, &bench.voltage), std::invalid_argument);
}

TEST(Ina226, SetTimingChangesUpdateInterval) {
  Bench bench;
  Ina226 dev(Ina226Config{}, no_noise(), 1);
  dev.bind(&bench.current, &bench.voltage);
  dev.set_timing(1, sim::microseconds(1100), sim::microseconds(1100));
  EXPECT_EQ(dev.update_interval(), sim::microseconds(2200));
  dev.advance_to(sim::milliseconds(40));
  EXPECT_GT(dev.conversions_completed(), 10u);
  EXPECT_THROW(dev.set_timing(0, sim::microseconds(1), sim::microseconds(1)),
               std::invalid_argument);
}

TEST(Ina226, DataRegisterWritesIgnored) {
  Bench bench;
  bench.current = sim::PiecewiseConstant(1.0);
  Ina226 dev(Ina226Config{}, no_noise(), 1);
  dev.bind(&bench.current, &bench.voltage);
  dev.advance_to(sim::milliseconds(40));
  const auto before = dev.read_register(Ina226Register::Current);
  dev.write_register(Ina226Register::Current, 0xdead);
  EXPECT_EQ(dev.read_register(Ina226Register::Current), before);
}

TEST(Ina226, ConfigAndCalibrationWritable) {
  Ina226 dev(Ina226Config{}, no_noise(), 1);
  dev.write_register(Ina226Register::Configuration, 0x1234);
  EXPECT_EQ(dev.read_register(Ina226Register::Configuration), 0x1234);
  dev.write_register(Ina226Register::Calibration, 2048);
  EXPECT_EQ(dev.read_register(Ina226Register::Calibration), 2048);
}

TEST(Ina226, SaturatesAtRegisterLimits) {
  Bench bench;
  bench.current = sim::PiecewiseConstant(1000.0);  // absurd load
  Ina226 dev(Ina226Config{}, no_noise(), 1);
  dev.bind(&bench.current, &bench.voltage);
  dev.advance_to(sim::milliseconds(40));
  EXPECT_LE(dev.current_amps(), 32.767 + 1e-9);
}

class InaAveragingProperty : public ::testing::TestWithParam<std::uint16_t> {};

TEST_P(InaAveragingProperty, UpdateIntervalScalesWithAvg) {
  Ina226Config c;
  c.avg_count = GetParam();
  Ina226 dev(c, no_noise(), 1);
  EXPECT_EQ(dev.update_interval().ns,
            static_cast<std::int64_t>(GetParam()) * 2'200'000);
}

INSTANTIATE_TEST_SUITE_P(AvgCounts, InaAveragingProperty,
                         ::testing::Values(1, 4, 16, 64, 128, 256, 512, 1024));

}  // namespace
}  // namespace amperebleed::sensors
