#include "amperebleed/sensors/i2c.hpp"

#include <gtest/gtest.h>

#include "amperebleed/power/noise_model.hpp"

namespace amperebleed::sensors {
namespace {

class FakeDevice final : public I2cDevice {
 public:
  std::uint16_t read_word(std::uint8_t reg) override {
    last_read = reg;
    return static_cast<std::uint16_t>(0x1000 + reg);
  }
  void write_word(std::uint8_t reg, std::uint16_t value) override {
    last_write = {reg, value};
  }
  std::uint8_t last_read = 0xff;
  std::pair<std::uint8_t, std::uint16_t> last_write{0xff, 0};
};

TEST(I2cBus, AttachAndTransact) {
  I2cBus bus;
  FakeDevice dev;
  bus.attach(0x40, dev);
  EXPECT_TRUE(bus.probe(0x40));
  EXPECT_FALSE(bus.probe(0x41));
  EXPECT_EQ(bus.read_word(0x40, 0x04), 0x1004);
  bus.write_word(0x40, 0x05, 0xbeef);
  EXPECT_EQ(dev.last_write.first, 0x05);
  EXPECT_EQ(dev.last_write.second, 0xbeef);
  EXPECT_EQ(bus.transactions(), 2u);
}

TEST(I2cBus, NackOnMissingDevice) {
  I2cBus bus;
  EXPECT_THROW(bus.read_word(0x40, 0x00), I2cError);
  EXPECT_THROW(bus.write_word(0x40, 0x00, 1), I2cError);
}

TEST(I2cBus, ReservedAndConflictingAddressesRejected) {
  I2cBus bus;
  FakeDevice a;
  FakeDevice b;
  EXPECT_THROW(bus.attach(0x03, a), std::invalid_argument);
  EXPECT_THROW(bus.attach(0x7c, a), std::invalid_argument);
  bus.attach(0x40, a);
  EXPECT_THROW(bus.attach(0x40, b), std::invalid_argument);
}

TEST(I2cBus, ScanListsSortedAddresses) {
  I2cBus bus;
  FakeDevice a;
  FakeDevice b;
  FakeDevice c;
  bus.attach(0x44, a);
  bus.attach(0x40, b);
  bus.attach(0x4f, c);
  EXPECT_EQ(bus.scan(), (std::vector<std::uint8_t>{0x40, 0x44, 0x4f}));
}

TEST(Ina226Adapter, RoutesRegisterAccess) {
  power::RailNoiseConfig quiet;
  quiet.current_white_amps = 0.0;
  quiet.current_drift_fraction = 0.0;
  quiet.voltage_white_volts = 0.0;
  quiet.voltage_drift_volts = 0.0;
  quiet.thermal_nonlinearity_per_amp = 0.0;
  Ina226 dev(Ina226Config{}, quiet, 1);
  sim::PiecewiseConstant current(2.0);
  sim::PiecewiseConstant voltage(0.85);
  dev.bind(&current, &voltage);

  int hook_calls = 0;
  Ina226I2cAdapter adapter(dev, [&]() {
    ++hook_calls;
    dev.advance_to(sim::milliseconds(40));
  });
  I2cBus bus;
  bus.attach(0x40, adapter);

  // Identification registers through the bus.
  EXPECT_EQ(bus.read_word(0x40, 0xFE), 0x5449);
  // Current register: 2 A at 1 mA LSB -> 2000 counts.
  EXPECT_EQ(bus.read_word(0x40, 0x04), 2000);
  EXPECT_EQ(hook_calls, 2);

  // Calibration write through the bus.
  bus.write_word(0x40, 0x05, 512);
  EXPECT_EQ(dev.read_register(Ina226Register::Calibration), 512);
}

}  // namespace
}  // namespace amperebleed::sensors
