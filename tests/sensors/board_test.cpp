#include "amperebleed/sensors/board.hpp"

#include <gtest/gtest.h>

#include <set>

namespace amperebleed::sensors {
namespace {

TEST(BoardCatalog, EightBoardsOfTableOne) {
  const auto& catalog = board_catalog();
  EXPECT_EQ(catalog.size(), 8u);
  std::set<std::string> names;
  for (const auto& b : catalog) names.insert(b.name);
  for (const char* expected : {"ZCU102", "ZCU111", "ZCU216", "ZCU1285",
                               "VEK280", "VCK190", "VHK158", "VPK180"}) {
    EXPECT_EQ(names.count(expected), 1u) << expected;
  }
}

TEST(BoardCatalog, EveryBoardHasIna226Sensors) {
  for (const auto& b : board_catalog()) {
    EXPECT_GT(b.ina226_count, 0) << b.name;
  }
}

TEST(BoardCatalog, FamilyVoltageBandsMatchTableOne) {
  for (const auto& b : board_catalog()) {
    if (b.family == FpgaFamily::ZynqUltraScalePlus) {
      EXPECT_DOUBLE_EQ(b.fpga_voltage_min, 0.825) << b.name;
      EXPECT_DOUBLE_EQ(b.fpga_voltage_max, 0.876) << b.name;
      EXPECT_EQ(b.cpu_model, "Cortex-A53") << b.name;
    } else {
      EXPECT_DOUBLE_EQ(b.fpga_voltage_min, 0.775) << b.name;
      EXPECT_DOUBLE_EQ(b.fpga_voltage_max, 0.825) << b.name;
      EXPECT_EQ(b.cpu_model, "Cortex-A72") << b.name;
    }
  }
}

TEST(BoardSpec, Zcu102RowMatchesPaper) {
  const BoardSpec& b = board_spec("ZCU102");
  EXPECT_EQ(b.ina226_count, 18);
  EXPECT_EQ(b.dram_gb, 4);
  EXPECT_EQ(b.price_usd, 3'234);
}

TEST(BoardSpec, UnknownBoardThrows) {
  EXPECT_THROW(board_spec("ZCU999"), std::invalid_argument);
}

TEST(SensitiveSensors, FourTableTwoRows) {
  const auto& sensors = zcu102_sensitive_sensors();
  EXPECT_EQ(sensors.size(), power::kRailCount);
  EXPECT_EQ(zcu102_sensor(power::Rail::FpdCpu).designator, "ina226_u76");
  EXPECT_EQ(zcu102_sensor(power::Rail::LpdCpu).designator, "ina226_u77");
  EXPECT_EQ(zcu102_sensor(power::Rail::FpgaLogic).designator, "ina226_u79");
  EXPECT_EQ(zcu102_sensor(power::Rail::Ddr).designator, "ina226_u93");
}

TEST(SensitiveSensors, RailMappingConsistent) {
  for (const auto& s : zcu102_sensitive_sensors()) {
    EXPECT_EQ(zcu102_sensor(s.rail).designator, s.designator);
    EXPECT_GT(s.shunt_ohms, 0.0);
    EXPECT_FALSE(s.description.empty());
  }
}

TEST(FamilyNames, Render) {
  EXPECT_EQ(fpga_family_name(FpgaFamily::ZynqUltraScalePlus),
            "Zynq UltraScale+");
  EXPECT_EQ(fpga_family_name(FpgaFamily::Versal), "Versal");
}

}  // namespace
}  // namespace amperebleed::sensors
