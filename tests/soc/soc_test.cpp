#include "amperebleed/soc/soc.hpp"

#include <gtest/gtest.h>

#include "amperebleed/util/strings.hpp"

namespace amperebleed::soc {
namespace {

TEST(SocConfig, Zcu102Defaults) {
  const SocConfig c = zcu102_config();
  const auto fpga = power::rail_index(power::Rail::FpgaLogic);
  EXPECT_DOUBLE_EQ(c.pdn[fpga].v_min, 0.825);
  EXPECT_DOUBLE_EQ(c.pdn[fpga].v_max, 0.876);
  const auto ddr = power::rail_index(power::Rail::Ddr);
  EXPECT_DOUBLE_EQ(c.pdn[ddr].v_nominal, 1.2);
  for (std::size_t i = 0; i < power::kRailCount; ++i) {
    EXPECT_GT(c.idle_current_amps[i], 0.0);
    EXPECT_DOUBLE_EQ(c.sensor[i].current_lsb_amps, 0.001);
    // The regulator trims to the idle draw so idle voltage == nominal.
    EXPECT_DOUBLE_EQ(c.pdn[i].idle_current_amps, c.idle_current_amps[i]);
  }
}

TEST(Soc, LifecycleEnforced) {
  Soc soc(zcu102_config());
  EXPECT_FALSE(soc.finalized());
  EXPECT_THROW(soc.advance_to(sim::seconds(1)), std::logic_error);
  EXPECT_THROW(static_cast<void>(soc.sensor(power::Rail::FpgaLogic)),
               std::logic_error);
  EXPECT_THROW(static_cast<void>(soc.rail_current(power::Rail::FpgaLogic)),
               std::logic_error);
  soc.finalize();
  EXPECT_TRUE(soc.finalized());
  EXPECT_THROW(soc.finalize(), std::logic_error);
  const power::RailActivity empty_activity;
  EXPECT_THROW(soc.add_activity(empty_activity), std::logic_error);
}

TEST(Soc, TimeIsMonotonic) {
  Soc soc(zcu102_config());
  soc.finalize();
  soc.advance_to(sim::seconds(1));
  EXPECT_EQ(soc.now(), sim::seconds(1));
  EXPECT_THROW(soc.advance_to(sim::milliseconds(999)), std::invalid_argument);
}

TEST(Soc, BaselineCurrentsWithoutWorkloads) {
  const SocConfig config = zcu102_config();
  Soc soc(config);
  soc.finalize();
  for (power::Rail rail : power::kAllRails) {
    EXPECT_DOUBLE_EQ(soc.rail_current(rail).value_at(sim::TimeNs{0}),
                     config.idle_current_amps[power::rail_index(rail)]);
  }
}

TEST(Soc, ActivityAddsToBaseline) {
  const SocConfig config = zcu102_config();
  Soc soc(config);
  power::RailActivity load;
  load.on(power::Rail::FpgaLogic).append(sim::milliseconds(10), 2.0);
  soc.add_activity(load);
  soc.finalize();
  const double idle =
      config.idle_current_amps[power::rail_index(power::Rail::FpgaLogic)];
  EXPECT_DOUBLE_EQ(
      soc.rail_current(power::Rail::FpgaLogic).value_at(sim::TimeNs{0}), idle);
  EXPECT_DOUBLE_EQ(
      soc.rail_current(power::Rail::FpgaLogic).value_at(sim::milliseconds(20)),
      idle + 2.0);
}

TEST(Soc, MultipleActivitiesAccumulate) {
  Soc soc(zcu102_config());
  power::RailActivity a;
  a.on(power::Rail::Ddr).append(sim::milliseconds(1), 1.0);
  power::RailActivity b;
  b.on(power::Rail::Ddr).append(sim::milliseconds(2), 0.5);
  soc.add_activity(a);
  soc.add_activity(b);
  soc.finalize();
  const double idle = zcu102_config().idle_current_amps[power::rail_index(
      power::Rail::Ddr)];
  EXPECT_DOUBLE_EQ(soc.rail_current(power::Rail::Ddr).value_at(sim::seconds(1)),
                   idle + 1.5);
}

TEST(Soc, VoltageStaysInsideStabilizerBand) {
  Soc soc(zcu102_config());
  power::RailActivity load;
  load.on(power::Rail::FpgaLogic).append(sim::milliseconds(1), 7.0);  // heavy
  soc.add_activity(load);
  soc.finalize();
  const auto& v = soc.rail_voltage(power::Rail::FpgaLogic);
  EXPECT_GE(v.min_over(sim::TimeNs{0}, sim::seconds(1)), 0.825);
  EXPECT_LE(v.max_over(sim::TimeNs{0}, sim::seconds(1)), 0.876);
  // And the droop is visible (voltage under load < idle voltage).
  EXPECT_LT(v.value_at(sim::milliseconds(100)), v.value_at(sim::TimeNs{0}));
}

TEST(Soc, SensorsReportThroughHwmon) {
  Soc soc(zcu102_config());
  power::RailActivity load;
  load.on(power::Rail::FpgaLogic).append(sim::microseconds(1), 1.0);
  soc.add_activity(load);
  soc.finalize();
  soc.advance_to(sim::milliseconds(40));

  const int idx = soc.hwmon_index(power::Rail::FpgaLogic);
  const auto r =
      soc.hwmon().fs().read(soc.hwmon().attr_path(idx, "curr1_input"), false);
  ASSERT_TRUE(r.ok());
  const auto ma = util::parse_ll(r.data);
  ASSERT_TRUE(ma.has_value());
  // Idle 0.52 A + 1.0 A load = ~1520 mA, within noise/quantization slack.
  EXPECT_NEAR(static_cast<double>(*ma), 1520.0, 30.0);
}

TEST(Soc, AllFourRailsGetHwmonDevices) {
  Soc soc(zcu102_config());
  soc.finalize();
  EXPECT_EQ(soc.hwmon().device_labels().size(), power::kRailCount);
  for (power::Rail rail : power::kAllRails) {
    EXPECT_GE(soc.hwmon_index(rail), 0);
  }
  EXPECT_EQ(soc.hwmon().find_device("ina226_u79"),
            soc.hwmon_index(power::Rail::FpgaLogic));
}

TEST(Soc, DeterministicSensorReadingsPerSeed) {
  const auto run = [](std::uint64_t seed) {
    Soc soc(zcu102_config(seed));
    power::RailActivity load;
    load.on(power::Rail::FpgaLogic).append(sim::milliseconds(5), 3.0);
    soc.add_activity(load);
    soc.finalize();
    soc.advance_to(sim::milliseconds(200));
    return soc.sensor(power::Rail::FpgaLogic).current_amps();
  };
  EXPECT_DOUBLE_EQ(run(7), run(7));
}

TEST(SocConfig, Vck190VariantMatchesTableOne) {
  const SocConfig c = vck190_config();
  const auto pl = power::rail_index(power::Rail::FpgaLogic);
  EXPECT_DOUBLE_EQ(c.pdn[pl].v_min, 0.775);
  EXPECT_DOUBLE_EQ(c.pdn[pl].v_max, 0.825);
  EXPECT_DOUBLE_EQ(c.pdn[pl].v_nominal, 0.800);
  EXPECT_GT(c.fabric.resources.luts, zcu102_config().fabric.resources.luts);
  for (std::size_t i = 0; i < power::kRailCount; ++i) {
    EXPECT_DOUBLE_EQ(c.pdn[i].idle_current_amps, c.idle_current_amps[i]);
  }
}

TEST(Soc, AttackWorksOnVersalToo) {
  // The paper's generalization claim: same sensors, same hwmon path, so the
  // current channel leaks identically on a Versal-class SoC.
  Soc soc(vck190_config(11));
  power::RailActivity load;
  load.on(power::Rail::FpgaLogic).append(sim::milliseconds(5), 2.0);
  soc.add_activity(load);
  soc.finalize();
  soc.advance_to(sim::milliseconds(80));
  const double amps = soc.sensor(power::Rail::FpgaLogic).current_amps();
  EXPECT_NEAR(amps, 0.71 + 2.0, 0.1);
  // And the fabric voltage sits inside the Versal band.
  const double volts = soc.sensor(power::Rail::FpgaLogic).bus_voltage_volts();
  EXPECT_GE(volts, 0.775 - 0.00125);
  EXPECT_LE(volts, 0.825 + 0.00125);
}

TEST(Soc, I2cBusCarriesTheSameSensors) {
  Soc soc(zcu102_config(21));
  power::RailActivity load;
  load.on(power::Rail::FpgaLogic).append(sim::microseconds(1), 1.0);
  soc.add_activity(load);
  soc.finalize();
  soc.advance_to(sim::milliseconds(80));

  auto& bus = soc.i2c();
  // Four INAs at 0x40..0x43 (rail order).
  EXPECT_EQ(bus.scan().size(), power::kRailCount);
  const auto fpga_addr = static_cast<std::uint8_t>(
      Soc::kIna226BaseAddress + power::rail_index(power::Rail::FpgaLogic));
  // Raw CURRENT register via I2C == hwmon's curr1_input (same registers).
  const auto code = static_cast<std::int16_t>(bus.read_word(fpga_addr, 0x04));
  const double hwmon_ma = soc.sensor(power::Rail::FpgaLogic).current_amps() * 1e3;
  EXPECT_DOUBLE_EQ(static_cast<double>(code), hwmon_ma);
  EXPECT_THROW(bus.read_word(0x50, 0x00), sensors::I2cError);
}

TEST(Soc, SysmonOptInProvidesTemperature) {
  SocConfig config = zcu102_config(22);
  config.with_sysmon = true;
  Soc soc(config);
  power::RailActivity load;
  load.on(power::Rail::FpgaLogic).append(sim::milliseconds(1), 5.0);
  soc.add_activity(load);
  soc.finalize();
  soc.advance_to(sim::seconds(30));
  // 5 A * 0.85 V ~ 4.2 W above idle -> noticeably above ambient by 30 s.
  const double temp = soc.sysmon().temperature_celsius();
  EXPECT_GT(temp, config.thermal.ambient_celsius + 2.0);
  EXPECT_LT(temp, 95.0);
  // The device is visible through hwmon as well.
  const auto r = soc.hwmon().fs().read(
      soc.hwmon().attr_path(soc.sysmon_hwmon_index(), "temp1_input"), false);
  ASSERT_TRUE(r.ok());
}

TEST(Soc, SysmonDisabledByDefault) {
  Soc soc(zcu102_config(23));
  soc.finalize();
  EXPECT_THROW(static_cast<void>(soc.sysmon()), std::logic_error);
  EXPECT_THROW(static_cast<void>(soc.die_temperature()), std::logic_error);
  EXPECT_THROW(static_cast<void>(soc.sysmon_hwmon_index()), std::logic_error);
}

TEST(Soc, FabricDeploymentsTracked) {
  Soc soc(zcu102_config());
  soc.fabric().deploy({"victim", {1000, 1000, 10, 1}, true});
  EXPECT_TRUE(soc.fabric().is_deployed("victim"));
}

}  // namespace
}  // namespace amperebleed::soc
