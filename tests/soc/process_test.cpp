#include "amperebleed/soc/process.hpp"

#include <gtest/gtest.h>

namespace amperebleed::soc {
namespace {

TEST(CpuSchedule, SingleIntervalLoadsFpdRail) {
  CpuSchedule sched;
  sched.run({"victim", 0, false}, sim::milliseconds(10), sim::milliseconds(20));
  const auto activity = sched.activity();
  const auto& fpd = activity.on(power::Rail::FpdCpu);
  EXPECT_DOUBLE_EQ(fpd.value_at(sim::milliseconds(5)), 0.0);
  EXPECT_DOUBLE_EQ(fpd.value_at(sim::milliseconds(15)), 0.35);
  EXPECT_DOUBLE_EQ(fpd.value_at(sim::milliseconds(25)), 0.0);
}

TEST(CpuSchedule, UtilizationScalesCurrent) {
  CpuSchedule sched;
  sched.run({"sampler", 3, false}, sim::TimeNs{0}, sim::seconds(1), 0.25);
  const auto activity = sched.activity();
  EXPECT_DOUBLE_EQ(
      activity.on(power::Rail::FpdCpu).value_at(sim::milliseconds(1)),
      0.25 * 0.35);
}

TEST(CpuSchedule, ConcurrentCoresSum) {
  CpuSchedule sched;
  sched.run({"a", 0, false}, sim::TimeNs{0}, sim::milliseconds(10));
  sched.run({"b", 1, false}, sim::milliseconds(5), sim::milliseconds(15));
  const auto activity = sched.activity();
  const auto& fpd = activity.on(power::Rail::FpdCpu);
  EXPECT_DOUBLE_EQ(fpd.value_at(sim::milliseconds(2)), 0.35);
  EXPECT_DOUBLE_EQ(fpd.value_at(sim::milliseconds(7)), 0.70);
  EXPECT_DOUBLE_EQ(fpd.value_at(sim::milliseconds(12)), 0.35);
  EXPECT_DOUBLE_EQ(fpd.value_at(sim::milliseconds(20)), 0.0);
}

TEST(CpuSchedule, BackToBackIntervalsOnSameCore) {
  CpuSchedule sched;
  sched.run({"a", 2, false}, sim::TimeNs{0}, sim::milliseconds(10));
  sched.run({"a", 2, false}, sim::milliseconds(10), sim::milliseconds(20));
  const auto activity = sched.activity();
  const auto& fpd = activity.on(power::Rail::FpdCpu);
  EXPECT_DOUBLE_EQ(fpd.value_at(sim::milliseconds(10)), 0.35);
}

TEST(CpuSchedule, OverlapOnSameCoreRejected) {
  CpuSchedule sched;
  sched.run({"a", 0, false}, sim::TimeNs{0}, sim::milliseconds(10));
  EXPECT_THROW(
      sched.run({"b", 0, false}, sim::milliseconds(5), sim::milliseconds(15)),
      std::invalid_argument);
}

TEST(CpuSchedule, Validation) {
  CpuSchedule sched;
  EXPECT_THROW(
      sched.run({"x", 4, false}, sim::TimeNs{0}, sim::seconds(1)),
      std::invalid_argument);  // core out of range on a quad-core part
  EXPECT_THROW(sched.run({"x", 0, false}, sim::seconds(1), sim::seconds(1)),
               std::invalid_argument);
  EXPECT_THROW(
      sched.run({"x", 0, false}, sim::TimeNs{0}, sim::seconds(1), 1.5),
      std::invalid_argument);
  CpuPowerParams bad;
  bad.core_count = 0;
  EXPECT_THROW(CpuSchedule{bad}, std::invalid_argument);
}

TEST(CpuSchedule, EmptyScheduleIsSilent) {
  CpuSchedule sched;
  const auto activity = sched.activity();
  const auto& fpd = activity.on(power::Rail::FpdCpu);
  EXPECT_EQ(fpd.segment_count(), 0u);
  EXPECT_DOUBLE_EQ(fpd.value_at(sim::seconds(5)), 0.0);
}

}  // namespace
}  // namespace amperebleed::soc
