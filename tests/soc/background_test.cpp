#include <gtest/gtest.h>

#include "amperebleed/soc/process.hpp"

namespace amperebleed::soc {
namespace {

TEST(BackgroundActivity, ProducesBurstsOnFpdAndDdr) {
  BackgroundActivityParams params;
  const auto activity =
      make_background_os_activity(params, sim::seconds(2), 1);
  const auto& fpd = activity.on(power::Rail::FpdCpu);
  const auto& ddr = activity.on(power::Rail::Ddr);
  // ~15 bursts/s over 2 s -> tens of segments.
  EXPECT_GT(fpd.segment_count(), 10u);
  EXPECT_GT(ddr.segment_count(), 10u);
  EXPECT_DOUBLE_EQ(fpd.max_over(sim::TimeNs{0}, sim::seconds(2)),
                   params.cpu_burst_current_amps);
  EXPECT_DOUBLE_EQ(fpd.min_over(sim::TimeNs{0}, sim::seconds(2)), 0.0);
}

TEST(BackgroundActivity, TimerTickOnLpd) {
  BackgroundActivityParams params;
  params.burst_rate_hz = 0.0;  // isolate the tick
  const auto activity =
      make_background_os_activity(params, sim::milliseconds(105), 2);
  const auto& lpd = activity.on(power::Rail::LpdCpu);
  // Ticks at 10, 20, ..., 100 ms -> 10 ticks, 2 segments each.
  EXPECT_EQ(lpd.segment_count(), 20u);
  EXPECT_DOUBLE_EQ(lpd.value_at(sim::milliseconds(10)),
                   params.lpd_tick_current_amps);
  EXPECT_DOUBLE_EQ(lpd.value_at(sim::milliseconds(11)), 0.0);
}

TEST(BackgroundActivity, MeanLoadMatchesDutyCycle) {
  BackgroundActivityParams params;
  params.lpd_tick_period = sim::TimeNs{0};  // disable the tick
  const auto activity =
      make_background_os_activity(params, sim::seconds(60), 3);
  const auto& fpd = activity.on(power::Rail::FpdCpu);
  // Expected duty: rate * mean_duration; back-to-back merging and the
  // exponential-tail clamping make this approximate.
  const double mean = fpd.mean(sim::TimeNs{0}, sim::seconds(60));
  const double expected = params.burst_rate_hz *
                          params.mean_burst_duration.seconds() *
                          params.cpu_burst_current_amps;
  EXPECT_NEAR(mean, expected, 0.5 * expected);
}

TEST(BackgroundActivity, DeterministicPerSeed) {
  BackgroundActivityParams params;
  const auto a = make_background_os_activity(params, sim::seconds(1), 9);
  const auto b = make_background_os_activity(params, sim::seconds(1), 9);
  const auto c = make_background_os_activity(params, sim::seconds(1), 10);
  EXPECT_EQ(a.on(power::Rail::FpdCpu).segment_count(),
            b.on(power::Rail::FpdCpu).segment_count());
  EXPECT_NE(a.on(power::Rail::FpdCpu).segment_count(),
            c.on(power::Rail::FpdCpu).segment_count());
}

TEST(BackgroundActivity, ZeroRateIsSilentOnCpuRails) {
  BackgroundActivityParams params;
  params.burst_rate_hz = 0.0;
  params.lpd_tick_period = sim::TimeNs{0};
  const auto activity =
      make_background_os_activity(params, sim::seconds(1), 4);
  EXPECT_EQ(activity.on(power::Rail::FpdCpu).segment_count(), 0u);
  EXPECT_EQ(activity.on(power::Rail::LpdCpu).segment_count(), 0u);
  EXPECT_EQ(activity.on(power::Rail::Ddr).segment_count(), 0u);
}

TEST(BackgroundActivity, NegativeEndRejected) {
  EXPECT_THROW(
      make_background_os_activity({}, sim::TimeNs{-1}, 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace amperebleed::soc
