#include "amperebleed/obs/span.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "amperebleed/obs/obs.hpp"
#include "amperebleed/util/json.hpp"

namespace amperebleed::obs {
namespace {

TEST(SpanTracer, RecordsExplicitEvents) {
  SpanTracer tracer;
  TraceEvent e;
  e.name = "work";
  e.category = "test";
  e.ts_us = 10.0;
  e.dur_us = 5.0;
  e.tid = 7;
  tracer.add_event(e);
  EXPECT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(SpanTracer, VirtualSpansUseSimClockMicroseconds) {
  SpanTracer tracer;
  tracer.add_virtual_span("layer", "dpu", sim::milliseconds(2),
                          sim::milliseconds(3), {{"index", 4.0}});
  const auto doc = util::Json::parse(tracer.to_chrome_json().dump());
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Find the "layer" event among any metadata records.
  const util::Json* layer = nullptr;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const auto* name = events->at(i).find("name");
    if (name != nullptr && name->as_string() == "layer") {
      layer = &events->at(i);
    }
  }
  ASSERT_NE(layer, nullptr);
  EXPECT_DOUBLE_EQ(layer->find("ts")->as_number(), 2'000.0);
  EXPECT_DOUBLE_EQ(layer->find("dur")->as_number(), 3'000.0);
  EXPECT_EQ(layer->find("ph")->as_string(), "X");
  // Virtual-time events live on pid 2.
  EXPECT_EQ(layer->find("pid")->as_integer(), 2);
  const auto* jargs = layer->find("args");
  ASSERT_NE(jargs, nullptr);
  ASSERT_NE(jargs->find("index"), nullptr);
  EXPECT_DOUBLE_EQ(jargs->find("index")->as_number(), 4.0);
}

TEST(SpanTracer, ChromeJsonHasEnvelopeAndProcessMetadata) {
  SpanTracer tracer;
  TraceEvent wall;
  wall.name = "host";
  wall.clock = SpanClock::Wall;
  tracer.add_event(wall);
  tracer.add_virtual_span("sim", "", sim::TimeNs{0}, sim::microseconds(1));

  const auto doc = util::Json::parse(tracer.to_chrome_json().dump());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ms");
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Both clock-domain process-name metadata records plus the two spans.
  std::set<long long> pids;
  bool saw_metadata = false;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const auto& ev = events->at(i);
    pids.insert(static_cast<long long>(ev.find("pid")->as_integer()));
    if (ev.find("ph")->as_string() == "M") saw_metadata = true;
  }
  EXPECT_TRUE(saw_metadata);
  EXPECT_TRUE(pids.count(1));  // wall clock domain
  EXPECT_TRUE(pids.count(2));  // virtual clock domain
}

TEST(SpanTracer, BoundedCapacityCountsDrops) {
  SpanTracer tracer(2);
  for (int i = 0; i < 5; ++i) {
    TraceEvent e;
    e.name = "e";
    tracer.add_event(e);
  }
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(ScopedSpan, RecordsOnDestruction) {
  SpanTracer tracer;
  {
    ScopedSpan span(&tracer, "fit", "ml");
    span.set_arg("trees", 100.0);
    span.set_virtual_ns(sim::milliseconds(7));
    EXPECT_TRUE(span.active());
  }
  ASSERT_EQ(tracer.size(), 1u);
  const auto doc = util::Json::parse(tracer.to_chrome_json().dump());
  const auto* events = doc.find("traceEvents");
  const util::Json* fit = nullptr;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const auto* name = events->at(i).find("name");
    if (name != nullptr && name->as_string() == "fit") fit = &events->at(i);
  }
  ASSERT_NE(fit, nullptr);
  EXPECT_EQ(fit->find("pid")->as_integer(), 1);  // wall-clock domain
  EXPECT_EQ(fit->find("cat")->as_string(), "ml");
  const auto* jargs = fit->find("args");
  ASSERT_NE(jargs, nullptr);
  EXPECT_DOUBLE_EQ(jargs->find("trees")->as_number(), 100.0);
  // Cross-clock reference: virtual ns recorded on the wall event.
  ASSERT_NE(jargs->find("virtual_ns"), nullptr);
  EXPECT_DOUBLE_EQ(jargs->find("virtual_ns")->as_number(),
                   static_cast<double>(sim::milliseconds(7).ns));
}

TEST(ScopedSpan, FinishRecordsOnceAndDeactivates) {
  SpanTracer tracer;
  ScopedSpan span(&tracer, "once");
  span.finish();
  EXPECT_FALSE(span.active());
  span.finish();  // idempotent
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(ScopedSpan, MoveTransfersOwnership) {
  SpanTracer tracer;
  {
    ScopedSpan a(&tracer, "moved");
    ScopedSpan b(std::move(a));
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(b.active());
  }
  EXPECT_EQ(tracer.size(), 1u);  // recorded exactly once
}

TEST(ScopedSpan, DefaultConstructedIsInert) {
  ScopedSpan span;
  EXPECT_FALSE(span.active());
  span.set_arg("k", 1.0);  // must be safe no-ops
  span.finish();
}

TEST(ScopedSpan, GlobalHelperInertWhenTracingDisabled) {
  shutdown();
  {
    auto span = obs::span("never", "test");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(tracer().size(), 0u);
}

TEST(ScopedSpan, GlobalHelperRecordsWhenEnabled) {
  init();
  {
    auto span = obs::span("global_span_test", "test");
    EXPECT_TRUE(span.active());
  }
  EXPECT_GE(tracer().size(), 1u);
  shutdown();
}

TEST(SpanTracer, ThreadsGetDistinctTids) {
  const std::uint64_t main_tid = current_thread_tid();
  EXPECT_EQ(current_thread_tid(), main_tid);  // stable per thread
  std::uint64_t worker_tid = main_tid;
  std::thread worker([&worker_tid]() { worker_tid = current_thread_tid(); });
  worker.join();
  EXPECT_NE(worker_tid, main_tid);
}

TEST(SpanTracer, ConcurrentAddsAreAllRecorded) {
  SpanTracer tracer;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracer]() {
      for (int i = 0; i < kPerThread; ++i) {
        TraceEvent e;
        e.name = "c";
        e.tid = current_thread_tid();
        tracer.add_event(e);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(tracer.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(tracer.dropped(), 0u);
}

}  // namespace
}  // namespace amperebleed::obs
