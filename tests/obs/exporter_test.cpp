#include "amperebleed/obs/exporter.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "amperebleed/obs/obs.hpp"
#include "amperebleed/util/json.hpp"

namespace amperebleed::obs {
namespace {

ExportEvent make_event(double value,
                       ExportEvent::Kind kind = ExportEvent::Kind::CounterAdd,
                       const char* name = "test.metric") {
  ExportEvent e;
  e.kind = kind;
  e.set_name(name);
  e.value = value;
  e.ts_ns = detail::export_clock_ns();
  return e;
}

TEST(ExportEvent, NameTruncatesAndTerminates) {
  ExportEvent e;
  const std::string longname(200, 'x');
  e.set_name(longname.c_str());
  EXPECT_EQ(std::string(e.name).size(), ExportEvent::kMaxName);
  e.set_name(nullptr);
  EXPECT_EQ(std::string(e.name), "");
}

TEST(EventRing, RoundsCapacityUpToPowerOfTwo) {
  EventRing ring(100);
  EXPECT_EQ(ring.capacity(), 128u);
  EventRing tiny(0);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(EventRing, FifoOrderSingleThread) {
  EventRing ring(16);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ring.try_push(make_event(i)));
  }
  EXPECT_EQ(ring.approx_size(), 10u);
  std::vector<ExportEvent> out;
  EXPECT_EQ(ring.drain(out, 1000), 10u);
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)].value, i);
  }
  EXPECT_EQ(ring.approx_size(), 0u);
}

TEST(EventRing, OverflowNeverBlocksAndCountsDrops) {
  EventRing ring(8);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_push(make_event(i)));
  }
  EXPECT_FALSE(ring.try_push(make_event(99)));
  EXPECT_FALSE(ring.try_push(make_event(100)));
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(ring.pushed(), 8u);

  // Draining frees slots; pushes succeed again and order is preserved.
  std::vector<ExportEvent> out;
  EXPECT_EQ(ring.drain(out, 4), 4u);
  EXPECT_TRUE(ring.try_push(make_event(8)));
  out.clear();
  EXPECT_EQ(ring.drain(out, 100), 5u);
  EXPECT_DOUBLE_EQ(out.front().value, 4.0);
  EXPECT_DOUBLE_EQ(out.back().value, 8.0);
}

// The TSan workout the CI sanitizer matrix runs: 8 producers hammer the ring
// while one consumer drains concurrently. Checks total conservation
// (received + dropped == pushed) and per-producer FIFO order.
TEST(EventRing, EightProducersConcurrentDrainConservesEvents) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 20'000;
  EventRing ring(1 << 10);  // small on purpose: forces overflow under load

  std::atomic<bool> start{false};
  std::atomic<int> done{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p]() {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerProducer; ++i) {
        // Encode producer id + sequence so the consumer can check order.
        ring.try_push(make_event(static_cast<double>(p) * 1e9 + i));
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }

  std::vector<ExportEvent> received;
  received.reserve(static_cast<std::size_t>(kProducers) * kPerProducer);
  std::thread consumer([&]() {
    std::vector<ExportEvent> batch;
    while (done.load(std::memory_order_acquire) < kProducers ||
           ring.approx_size() > 0) {
      batch.clear();
      if (ring.drain(batch, 512) == 0) {
        std::this_thread::yield();
        continue;
      }
      received.insert(received.end(), batch.begin(), batch.end());
    }
  });

  start.store(true, std::memory_order_release);
  for (auto& t : producers) t.join();
  consumer.join();

  const std::uint64_t total =
      static_cast<std::uint64_t>(kProducers) * kPerProducer;
  EXPECT_EQ(ring.pushed() + ring.dropped(), total);
  EXPECT_EQ(received.size(), ring.pushed());

  // Per-producer sequences must arrive strictly increasing (drops allowed).
  std::map<int, double> last_seq;
  for (const auto& event : received) {
    const int producer = static_cast<int>(event.value / 1e9);
    const double seq = event.value - producer * 1e9;
    const auto it = last_seq.find(producer);
    if (it != last_seq.end()) {
      EXPECT_LT(it->second, seq) << "producer " << producer;
    }
    last_seq[producer] = seq;
  }
  // At least one producer must have landed events. (All eight are not
  // guaranteed: on a small machine a producer's entire burst can run while
  // the ring is full and the consumer is descheduled.)
  EXPECT_GE(last_seq.size(), 1u);
  EXPECT_LE(last_seq.size(), static_cast<std::size_t>(kProducers));
}

TEST(Exporter, StartStopDrainsEverythingGracefully) {
  MetricsRegistry registry;
  ExporterConfig config;
  config.flush_interval_ms = 5;
  config.attach_global_hook = false;
  Exporter exporter(registry, config);
  auto* collector = new CollectorSink();
  exporter.add_sink(std::unique_ptr<ExportSink>(collector));
  exporter.start();
  EXPECT_TRUE(exporter.running());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&exporter]() {
      for (int i = 0; i < kPerThread; ++i) {
        exporter.ring().try_push(make_event(i, ExportEvent::Kind::GaugeSet));
      }
    });
  }
  for (auto& w : workers) w.join();
  exporter.stop();  // must drain the backlog before joining
  EXPECT_FALSE(exporter.running());

  const auto stats = exporter.stats();
  EXPECT_EQ(stats.events_exported + stats.events_dropped,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(collector->events().size(), stats.events_exported);
  EXPECT_GE(collector->flush_count(), 1u);

  // Accounting was published into the registry.
  EXPECT_EQ(registry.counter_value("obs_exporter_events_total"),
            stats.events_exported);
  if (stats.events_dropped > 0) {
    EXPECT_EQ(registry.counter_value("obs_exporter_dropped_total"),
              stats.events_dropped);
  }
  EXPECT_GE(registry.counter_value("obs_exporter_flushes_total"), 1u);

  // stop() again is a no-op.
  exporter.stop();
}

TEST(Exporter, GlobalHookFeedsObsHelpers) {
  obs::init();
  ExporterConfig config;
  config.flush_interval_ms = 1000;  // rely on flush_now / stop, not timing
  Exporter exporter(obs::metrics(), config);
  auto* collector = new CollectorSink();
  exporter.add_sink(std::unique_ptr<ExportSink>(collector));
  exporter.start();

  obs::count("exporter_hook.counter", 3);
  obs::gauge_set("exporter_hook.gauge", 1.5);
  obs::observe("exporter_hook.histogram", 42.0);
  { auto span = obs::span("exporter_hook.span"); }

  exporter.stop();
  obs::shutdown();

  bool saw_counter = false;
  bool saw_gauge = false;
  bool saw_histogram = false;
  bool saw_span = false;
  for (const auto& event : collector->events()) {
    const std::string name = event.name;
    if (name == "exporter_hook.counter") {
      saw_counter = true;
      EXPECT_EQ(event.kind, ExportEvent::Kind::CounterAdd);
      EXPECT_DOUBLE_EQ(event.value, 3.0);
    } else if (name == "exporter_hook.gauge") {
      saw_gauge = true;
      EXPECT_EQ(event.kind, ExportEvent::Kind::GaugeSet);
    } else if (name == "exporter_hook.histogram") {
      saw_histogram = true;
      EXPECT_EQ(event.kind, ExportEvent::Kind::HistogramObserve);
    } else if (name == "exporter_hook.span") {
      saw_span = true;
      EXPECT_EQ(event.kind, ExportEvent::Kind::SpanEnd);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_histogram);
  EXPECT_TRUE(saw_span);
}

TEST(Exporter, HookDetachedWhenNotRunning) {
  EXPECT_EQ(detail::g_export_ring.load(), nullptr);
  obs::init();
  obs::count("no_exporter.counter");  // must not crash, nothing attached
  obs::shutdown();
  EXPECT_EQ(detail::g_export_ring.load(), nullptr);
}

TEST(SnapshotSink, WritesAtomicJsonSnapshot) {
  MetricsRegistry registry;
  registry.counter("snap.counter").inc(7);
  registry.gauge("snap.gauge").set(2.5);

  const std::string path =
      testing::TempDir() + "/amperebleed_snapshot_test.json";
  std::remove(path.c_str());

  ExporterConfig config;
  config.flush_interval_ms = 60'000;  // only explicit flushes
  config.attach_global_hook = false;
  Exporter exporter(registry, config);
  auto* sink = new SnapshotSink(path, /*keep_recent=*/4);
  exporter.add_sink(std::unique_ptr<ExportSink>(sink));

  for (int i = 0; i < 10; ++i) {
    exporter.ring().try_push(make_event(i));
  }
  exporter.flush_now();

  EXPECT_EQ(sink->writes(), 1u);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const util::Json doc = util::Json::parse(text);
  ASSERT_NE(doc.find("exporter"), nullptr);
  EXPECT_EQ(doc.find("exporter")->find("events_exported")->as_integer(), 10);
  ASSERT_NE(doc.find("metrics"), nullptr);
  EXPECT_EQ(doc.find("metrics")
                ->find("counters")
                ->find("snap.counter")
                ->as_integer(),
            7);
  // keep_recent bounds the event tail.
  ASSERT_NE(doc.find("recent_events"), nullptr);
  EXPECT_EQ(doc.find("recent_events")->size(), 4u);
  // No torn temp file left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(Exporter, RejectsSinkChangesWhileRunning) {
  MetricsRegistry registry;
  ExporterConfig config;
  config.attach_global_hook = false;
  Exporter exporter(registry, config);
  exporter.start();
  EXPECT_THROW(exporter.add_sink(std::make_unique<CollectorSink>()),
               std::logic_error);
  exporter.stop();
}

}  // namespace
}  // namespace amperebleed::obs
