#include "amperebleed/obs/slo.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "amperebleed/core/sampler.hpp"
#include "amperebleed/faults/faults.hpp"
#include "amperebleed/obs/obs.hpp"
#include "amperebleed/power/activity.hpp"
#include "amperebleed/soc/soc.hpp"

namespace amperebleed::obs {
namespace {

HistogramConfig two_bucket_config() {
  HistogramConfig config;
  config.bucket_bounds = {10.0, 100.0};
  config.quantiles = {};
  return config;
}

SloObjective objective(double threshold = 10.0, double target = 0.9) {
  SloObjective obj;
  obj.name = "test_slo";
  obj.histogram = "h";
  obj.threshold = threshold;
  obj.target = target;
  return obj;
}

TEST(HistogramGoodTotal, BucketBoundSemantics) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", two_bucket_config());
  h.observe(5.0);     // bucket le=10   -> good at threshold 10
  h.observe(50.0);    // bucket le=100  -> bad at threshold 10
  h.observe(1e9);     // +Inf overflow  -> never good
  std::uint64_t good = 0;
  std::uint64_t total = 0;
  histogram_good_total(h, 10.0, good, total);
  EXPECT_EQ(good, 1u);
  EXPECT_EQ(total, 3u);
  histogram_good_total(h, 100.0, good, total);
  EXPECT_EQ(good, 2u);  // overflow still excluded
  EXPECT_EQ(total, 3u);
}

TEST(Slo, CleanHistoryBurnsZero) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", two_bucket_config());
  Slo slo(objective());
  for (int i = 0; i < 10; ++i) h.observe(5.0);
  const SloStatus s = slo.evaluate(reg, 10.0);
  EXPECT_EQ(s.good, 10u);
  EXPECT_EQ(s.total, 10u);
  EXPECT_DOUBLE_EQ(s.compliance, 1.0);
  EXPECT_DOUBLE_EQ(s.fast_burn, 0.0);
  EXPECT_DOUBLE_EQ(s.slow_burn, 0.0);
  EXPECT_FALSE(s.breached);
}

TEST(Slo, BurnRateIsBadFractionOverBudget) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", two_bucket_config());
  Slo slo(objective(10.0, 0.9));  // budget = 0.1
  for (int i = 0; i < 10; ++i) h.observe(5.0);
  slo.evaluate(reg, 10.0);
  for (int i = 0; i < 10; ++i) h.observe(50.0);
  // Window spans the whole history (clamped to the t=0 origin): 10 bad of
  // 20 -> bad fraction 0.5 -> burn 0.5 / 0.1 = 5.
  const SloStatus s = slo.evaluate(reg, 20.0);
  EXPECT_EQ(s.good, 10u);
  EXPECT_EQ(s.total, 20u);
  EXPECT_DOUBLE_EQ(s.compliance, 0.5);
  EXPECT_DOUBLE_EQ(s.fast_burn, 5.0);
  EXPECT_DOUBLE_EQ(s.slow_burn, 5.0);
  EXPECT_FALSE(s.fast_alert);  // 5 < 14.4
  EXPECT_FALSE(s.breached);
}

TEST(Slo, FastWindowForgetsOldBadness) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", two_bucket_config());
  Slo slo(objective(10.0, 0.9));
  for (int i = 0; i < 100; ++i) h.observe(50.0);  // all bad
  slo.evaluate(reg, 1000.0);
  // 400 s later with no new observations: the 300 s fast window holds
  // nothing (burn 0), while the 3600 s slow window still reaches the
  // origin and sees bad fraction 1.0 -> burn 10.
  const SloStatus s = slo.evaluate(reg, 1400.0);
  EXPECT_DOUBLE_EQ(s.fast_burn, 0.0);
  EXPECT_DOUBLE_EQ(s.slow_burn, 10.0);
  EXPECT_FALSE(s.fast_alert);
  EXPECT_TRUE(s.slow_alert);  // 10 > 6
  EXPECT_FALSE(s.breached);   // page needs BOTH windows
}

TEST(Slo, TotalViolationPagesBothWindows) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", two_bucket_config());
  Slo slo(objective(10.0, 0.99));  // budget = 0.01
  for (int i = 0; i < 50; ++i) h.observe(5.0);
  for (int i = 0; i < 50; ++i) h.observe(50.0);
  // Bad fraction 0.5 against a 0.01 budget: burn 50 in both windows.
  const SloStatus s = slo.evaluate(reg, 100.0);
  EXPECT_NEAR(s.fast_burn, 50.0, 1e-9);
  EXPECT_NEAR(s.slow_burn, 50.0, 1e-9);
  EXPECT_TRUE(s.fast_alert);
  EXPECT_TRUE(s.slow_alert);
  EXPECT_TRUE(s.breached);
}

TEST(Slo, MissingHistogramCountsNothing) {
  MetricsRegistry reg;
  Slo slo(objective());
  const SloStatus s = slo.evaluate(reg, 5.0);
  EXPECT_EQ(s.total, 0u);
  EXPECT_DOUBLE_EQ(s.compliance, 1.0);
  EXPECT_DOUBLE_EQ(s.fast_burn, 0.0);
}

TEST(SloRegistry, AddReplacesByNameAndAdvancesClock) {
  SloRegistry registry;
  registry.add(objective());
  registry.add(objective(100.0));  // same name: replace, not duplicate
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(registry.has("test_slo"));
  EXPECT_FALSE(registry.has("other"));
  registry.advance(2.5);
  registry.advance(-1.0);  // ignored
  EXPECT_DOUBLE_EQ(registry.now_s(), 2.5);
  registry.reset();
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_DOUBLE_EQ(registry.now_s(), 0.0);
}

TEST(SloRegistry, JsonCarriesEveryObjective) {
  SloRegistry registry;
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", two_bucket_config());
  h.observe(5.0);
  registry.add(objective());
  registry.advance(7.0);
  const auto doc = util::Json::parse(registry.to_json(reg).dump());
  EXPECT_DOUBLE_EQ(doc.find("now_s")->as_number(), 7.0);
  const auto* objectives = doc.find("objectives");
  ASSERT_NE(objectives, nullptr);
  ASSERT_EQ(objectives->size(), 1u);
  const auto& entry = objectives->at(0);
  EXPECT_EQ(entry.find("name")->as_string(), "test_slo");
  EXPECT_DOUBLE_EQ(entry.find("compliance")->as_number(), 1.0);
  ASSERT_NE(entry.find("fast_burn"), nullptr);
  ASSERT_NE(entry.find("breached"), nullptr);
}

// ---------------------------------------------------------------------------
// End to end: the sampler's virtual-time SLI under injected faults.

constexpr core::Channel kFpgaCurrent{power::Rail::FpgaLogic,
                                     core::Quantity::Current};

std::unique_ptr<soc::Soc> make_soc(std::uint64_t seed = 1) {
  auto soc = std::make_unique<soc::Soc>(soc::zcu102_config(seed));
  power::RailActivity load;
  load.on(power::Rail::FpgaLogic).append(sim::microseconds(1), 1.0);
  soc->add_activity(load);
  soc->finalize();
  return soc;
}

SloObjective acquire_objective() {
  SloObjective obj;
  obj.name = "acquire_virtual_latency";
  obj.histogram = "sampler.sample_acquire_vns";
  obj.threshold = 1e3;  // virtual ns; clean samples consume 0
  obj.target = 0.99;
  return obj;
}

TEST(SloEndToEnd, CleanAcquisitionIsFullyCompliant) {
  init();
  reset_data();
  slos().add(acquire_objective());

  auto soc = make_soc();
  core::Sampler sampler(*soc);
  core::SamplerConfig config;
  config.sample_count = 50;
  static_cast<void>(
      sampler.collect(kFpgaCurrent, sim::milliseconds(40), config));

  // The collection advanced the virtual clock...
  EXPECT_GT(slos().now_s(), 0.0);
  // ...and every sample consumed zero virtual ns beyond the cadence.
  const auto statuses = slos().evaluate_all(metrics());
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].total, 50u);
  EXPECT_DOUBLE_EQ(statuses[0].compliance, 1.0);
  EXPECT_DOUBLE_EQ(statuses[0].fast_burn, 0.0);
  EXPECT_FALSE(statuses[0].breached);
  shutdown();
}

TEST(SloEndToEnd, TransientFaultBackoffViolatesTheObjective) {
  init();
  reset_data();
  slos().add(acquire_objective());

  auto soc = make_soc();
  // Transient read faults force retry backoff: the recovery consumes real
  // virtual time, which is exactly what the acquire-latency SLI meters.
  faults::FaultInjector injector(faults::FaultPlan::transient_only(3, 0.25));
  injector.attach(soc->hwmon().fs());
  core::Sampler sampler(*soc);
  core::ResilienceConfig resilience;
  resilience.enabled = true;
  sampler.set_resilience(resilience);
  core::SamplerConfig config;
  config.sample_count = 50;
  static_cast<void>(
      sampler.collect(kFpgaCurrent, sim::milliseconds(40), config));

  ASSERT_GT(sampler.stats().retries, 0u);
  const auto statuses = slos().evaluate_all(metrics());
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].total, 50u);
  // Backoff waits pushed some samples past the threshold: compliance
  // dropped below target and the budget burns faster than sustainable.
  EXPECT_LT(statuses[0].compliance, 0.99);
  EXPECT_GT(statuses[0].fast_burn, 1.0);
  shutdown();
}

}  // namespace
}  // namespace amperebleed::obs
