#include "amperebleed/obs/audit.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "amperebleed/obs/obs.hpp"
#include "amperebleed/util/json.hpp"

namespace amperebleed::obs {
namespace {

constexpr const char* kPath = "/sys/class/hwmon/hwmon0/curr1_input";

/// Script `n` accesses for `principal` at a fixed period starting at `start`.
void replay(AccessAuditLog& log, sim::TimeNs& clock, sim::TimeNs start,
            sim::TimeNs period, int n, const std::string& principal,
            const char* path = kPath,
            AccessOutcome outcome = AccessOutcome::Ok) {
  for (int i = 0; i < n; ++i) {
    clock = sim::TimeNs{start.ns + period.ns * i};
    log.record(path, false, outcome, principal);
  }
}

TEST(AccessOutcomeName, AllNamed) {
  EXPECT_EQ(access_outcome_name(AccessOutcome::Ok), "ok");
  EXPECT_EQ(access_outcome_name(AccessOutcome::Denied), "denied");
  EXPECT_EQ(access_outcome_name(AccessOutcome::Error), "error");
}

TEST(PrincipalScope, NestsAndRestores) {
  EXPECT_TRUE(PrincipalScope::current().empty());
  {
    PrincipalScope outer("daemon");
    EXPECT_EQ(PrincipalScope::current(), "daemon");
    {
      PrincipalScope inner("attacker");
      EXPECT_EQ(PrincipalScope::current(), "attacker");
    }
    EXPECT_EQ(PrincipalScope::current(), "daemon");
  }
  EXPECT_TRUE(PrincipalScope::current().empty());
}

TEST(PrincipalScope, IsThreadLocal) {
  PrincipalScope scope("main");
  std::string seen = "unset";
  std::thread worker([&seen]() { seen = PrincipalScope::current(); });
  worker.join();
  EXPECT_TRUE(seen.empty());
  EXPECT_EQ(PrincipalScope::current(), "main");
}

TEST(AccessAuditLog, AggregatesPerPrincipalAndPath) {
  AccessAuditLog log;
  log.record("a", false, AccessOutcome::Ok, "u1");
  log.record("a", false, AccessOutcome::Ok, "u1");
  log.record("a", false, AccessOutcome::Denied, "u1");
  log.record("b", true, AccessOutcome::Error, "u2");
  EXPECT_EQ(log.total_accesses(), 4u);
  EXPECT_EQ(log.total_denials(), 1u);

  const auto stats = log.stats();
  ASSERT_EQ(stats.size(), 2u);  // (u1,a) and (u2,b), sorted by principal
  EXPECT_EQ(stats[0].principal, "u1");
  EXPECT_EQ(stats[0].path, "a");
  EXPECT_EQ(stats[0].ok, 2u);
  EXPECT_EQ(stats[0].denied, 1u);
  EXPECT_EQ(stats[0].total(), 3u);
  EXPECT_EQ(stats[1].principal, "u2");
  EXPECT_EQ(stats[1].error, 1u);
}

TEST(AccessAuditLog, FallsBackToPrivilegeDerivedPrincipal) {
  AccessAuditLog log;
  log.record("p", false, AccessOutcome::Ok);  // no scope active -> "user"
  log.record("p", true, AccessOutcome::Ok);   // -> "root"
  {
    PrincipalScope scope("governor");
    log.record("p", false, AccessOutcome::Ok);
  }
  std::set<std::string> principals;
  for (const auto& s : log.stats()) principals.insert(s.principal);
  EXPECT_EQ(principals, (std::set<std::string>{"user", "root", "governor"}));
}

TEST(AccessAuditLog, TimestampsComeFromInjectedClock) {
  AccessAuditLog log;
  sim::TimeNs clock{0};
  log.record("p", false, AccessOutcome::Ok);  // before clock: t = -1
  log.set_clock([&clock]() { return clock; });
  clock = sim::milliseconds(35);
  log.record("p", false, AccessOutcome::Ok);
  log.clear_clock();
  log.record("p", false, AccessOutcome::Ok);

  const auto events = log.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_LT(events[0].t.ns, 0);
  EXPECT_EQ(events[1].t.ns, sim::milliseconds(35).ns);
  EXPECT_LT(events[2].t.ns, 0);
  EXPECT_EQ(log.path_name(events[0].path_id), "p");
}

TEST(AccessAuditLog, BoundedEventStreamKeepsAggregates) {
  AccessAuditLog log(2);
  for (int i = 0; i < 5; ++i) log.record("p", false, AccessOutcome::Ok, "u");
  EXPECT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.dropped(), 3u);
  // Aggregation still sees every access even after the ring fills.
  EXPECT_EQ(log.total_accesses(), 5u);
  ASSERT_EQ(log.stats().size(), 1u);
  EXPECT_EQ(log.stats()[0].ok, 5u);
}

TEST(AccessAuditLog, JsonSnapshotParsesBack) {
  AccessAuditLog log;
  log.record("a", false, AccessOutcome::Ok, "u1");
  log.record("a", false, AccessOutcome::Denied, "u1");
  const auto doc = util::Json::parse(log.to_json().dump());
  ASSERT_TRUE(doc.is_object());
  const auto* totals = doc.find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(totals->find("accesses")->as_integer(), 2);
  EXPECT_EQ(totals->find("denials")->as_integer(), 1);
  EXPECT_EQ(totals->find("dropped_events")->as_integer(), 0);
  const auto* by = doc.find("by_principal_path");
  ASSERT_NE(by, nullptr);
  ASSERT_TRUE(by->is_array());
  ASSERT_EQ(by->size(), 1u);
  EXPECT_EQ(by->at(0).find("principal")->as_string(), "u1");
  EXPECT_EQ(by->at(0).find("path")->as_string(), "a");
  EXPECT_EQ(by->at(0).find("denied")->as_integer(), 1);
  EXPECT_EQ(doc.find("recorded_events")->as_integer(), 2);
}

TEST(AccessAuditLog, ClearResetsEverything) {
  AccessAuditLog log;
  log.record("a", false, AccessOutcome::Denied, "u");
  log.clear();
  EXPECT_EQ(log.total_accesses(), 0u);
  EXPECT_EQ(log.total_denials(), 0u);
  EXPECT_TRUE(log.events().empty());
  EXPECT_TRUE(log.stats().empty());
}

TEST(AccessAuditLog, ConcurrentRecordsAreLossless) {
  AccessAuditLog log;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&log, t]() {
      const std::string principal = "u" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        log.record("p", false, AccessOutcome::Ok, principal);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(log.total_accesses(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(log.stats().size(), static_cast<std::size_t>(kThreads));
}

// ---------------------------------------------------------------------------
// Rate detector on scripted access patterns.

TEST(RateDetector, FlagsFastPollerNotSlowDaemon) {
  AccessAuditLog log;
  sim::TimeNs clock{0};
  log.set_clock([&clock]() { return clock; });

  // Benign daemon: 1 Hz for 10 s. Attacker: 35 ms cadence (28.6 Hz) for 10 s.
  replay(log, clock, sim::TimeNs{0}, sim::seconds(1), 10, "daemon");
  replay(log, clock, sim::TimeNs{0}, sim::milliseconds(35), 286, "attacker");

  RateDetectorConfig config;  // 10 r/s over 3 consecutive 1 s windows
  const auto report = detect_rate_anomalies(log, config);
  ASSERT_EQ(report.principals.size(), 2u);

  const auto* daemon = report.find("daemon");
  ASSERT_NE(daemon, nullptr);
  EXPECT_FALSE(daemon->flagged);
  EXPECT_EQ(daemon->hot_windows, 0u);
  EXPECT_LT(daemon->detection_time.ns, 0);
  EXPECT_LE(daemon->peak_path_rate_hz, 2.0);

  const auto* attacker = report.find("attacker");
  ASSERT_NE(attacker, nullptr);
  EXPECT_TRUE(attacker->flagged);
  EXPECT_GE(attacker->peak_path_rate_hz, 28.0);
  EXPECT_GE(attacker->hot_windows, 3u);
  // Flagged after the third consecutive hot 1 s window.
  EXPECT_EQ(attacker->detection_time.ns, sim::seconds(3).ns);
}

TEST(RateDetector, RequiresConsecutiveHotWindows) {
  AccessAuditLog log;
  sim::TimeNs clock{0};
  log.set_clock([&clock]() { return clock; });

  // One hot 1 s burst (20 reads), then silence: below the 3-window rule.
  replay(log, clock, sim::TimeNs{0}, sim::milliseconds(50), 20, "bursty");
  // Hot in windows 0,1 then cold in 2, hot in 3,4 — never 3 in a row.
  replay(log, clock, sim::seconds(10), sim::milliseconds(50), 40, "gappy");
  replay(log, clock, sim::seconds(13), sim::milliseconds(50), 40, "gappy");

  RateDetectorConfig config;
  const auto report = detect_rate_anomalies(log, config);
  const auto* bursty = report.find("bursty");
  ASSERT_NE(bursty, nullptr);
  EXPECT_FALSE(bursty->flagged);
  EXPECT_EQ(bursty->hot_windows, 1u);
  const auto* gappy = report.find("gappy");
  ASSERT_NE(gappy, nullptr);
  EXPECT_FALSE(gappy->flagged);
  EXPECT_EQ(gappy->hot_windows, 4u);

  // Lowering the consecutive requirement to 2 flags the gappy poller.
  config.consecutive_windows = 2;
  EXPECT_TRUE(detect_rate_anomalies(log, config).find("gappy")->flagged);
}

TEST(RateDetector, PerPathRatesDoNotSumAcrossPaths) {
  AccessAuditLog log;
  sim::TimeNs clock{0};
  log.set_clock([&clock]() { return clock; });
  // 4 paths at 4 r/s each: 16 r/s aggregate, but no single path above 10.
  for (int p = 0; p < 4; ++p) {
    const std::string path = "rail" + std::to_string(p);
    replay(log, clock, sim::milliseconds(10 * p), sim::milliseconds(250), 20,
           "health", path.c_str());
  }
  RateDetectorConfig config;
  const auto report = detect_rate_anomalies(log, config);
  const auto* health = report.find("health");
  ASSERT_NE(health, nullptr);
  EXPECT_FALSE(health->flagged);
  EXPECT_LE(health->peak_path_rate_hz, 5.0);
}

TEST(RateDetector, IgnoresUntimestampedEvents) {
  AccessAuditLog log;  // no clock: every event carries t = -1
  for (int i = 0; i < 1'000; ++i) {
    log.record("p", false, AccessOutcome::Ok, "u");
  }
  const auto report = detect_rate_anomalies(log, RateDetectorConfig{});
  EXPECT_TRUE(report.principals.empty());
}

TEST(RateDetector, EvaluationSeparatesScriptedActors) {
  AccessAuditLog log;
  sim::TimeNs clock{0};
  log.set_clock([&clock]() { return clock; });
  replay(log, clock, sim::TimeNs{0}, sim::seconds(1), 30, "daemon");
  replay(log, clock, sim::milliseconds(3), sim::milliseconds(500), 60,
         "governor");
  replay(log, clock, sim::milliseconds(7), sim::milliseconds(35), 857,
         "attacker-35ms");
  replay(log, clock, sim::milliseconds(11), sim::milliseconds(1), 30'000,
         "attacker-1khz");

  RateDetectorConfig config;
  const auto eval =
      evaluate_detector(log, config, {"attacker-35ms", "attacker-1khz"});
  EXPECT_GT(eval.tpr(), 0.9);
  EXPECT_EQ(eval.fpr(), 0.0);
  EXPECT_EQ(eval.fp, 0u);
  EXPECT_GT(eval.tp, 0u);
  EXPECT_GT(eval.tn, 0u);

  // An absurdly high threshold misses everyone: TPR collapses, FPR stays 0.
  config.threshold_reads_per_s = 5'000.0;
  const auto blind =
      evaluate_detector(log, config, {"attacker-35ms", "attacker-1khz"});
  EXPECT_EQ(blind.tpr(), 0.0);
  EXPECT_EQ(blind.fpr(), 0.0);
}

TEST(ObsAudit, GlobalHelperRespectsAuditSwitch) {
  shutdown();
  audit_access("p", false, AccessOutcome::Ok);
  EXPECT_EQ(audit_log().total_accesses(), 0u);

  ObsConfig config;
  config.enabled = true;
  config.audit = false;
  init(config);
  audit_access("p", false, AccessOutcome::Ok);
  EXPECT_EQ(audit_log().total_accesses(), 0u);
  shutdown();

  init();
  audit_access("p", false, AccessOutcome::Denied);
  EXPECT_EQ(audit_log().total_accesses(), 1u);
  EXPECT_EQ(audit_log().total_denials(), 1u);
  shutdown();
  EXPECT_EQ(audit_log().total_accesses(), 0u);
}

}  // namespace
}  // namespace amperebleed::obs
