#include "amperebleed/obs/run_record.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "amperebleed/util/json.hpp"

namespace amperebleed::obs {
namespace {

TEST(RunEnvironment, CurrentIsPopulatedAndCached) {
  const RunEnvironment& env = RunEnvironment::current();
  EXPECT_FALSE(env.git_sha.empty());
  EXPECT_FALSE(env.hostname.empty());
  EXPECT_FALSE(env.build_type.empty());
  // Cached: repeated calls hand back the same object.
  EXPECT_EQ(&RunEnvironment::current(), &env);
}

TEST(RunRecord, JsonCarriesProvenanceEnvBlock) {
  RunRecord record("fig2_characterization");
  const util::Json doc = record.to_json();
  EXPECT_EQ(doc.find("bench")->as_string(), "fig2_characterization");
  EXPECT_GE(doc.find("wall_seconds")->as_number(), 0.0);
  EXPECT_GT(doc.find("unix_time")->as_integer(), 0);

  const util::Json* env = doc.find("env");
  ASSERT_NE(env, nullptr);
  EXPECT_EQ(env->find("git_sha")->as_string(),
            RunEnvironment::current().git_sha);
  EXPECT_EQ(env->find("hostname")->as_string(),
            RunEnvironment::current().hostname);
  EXPECT_EQ(env->find("build_type")->as_string(),
            RunEnvironment::current().build_type);
}

TEST(RunRecord, NumbersTextAndOverwrite) {
  RunRecord record("bench");
  record.set_number("accuracy", 0.5);
  record.set_number("accuracy", 0.91);  // last write wins
  record.set_integer("traces", 1000);
  record.set_text("note", "quick");

  const util::Json doc = record.to_json();
  EXPECT_DOUBLE_EQ(doc.find("numbers")->find("accuracy")->as_number(), 0.91);
  EXPECT_EQ(doc.find("numbers")->find("traces")->as_integer(), 1000);
  EXPECT_EQ(doc.find("text")->find("note")->as_string(), "quick");
  // No samples recorded -> no "samples" key at all.
  EXPECT_EQ(doc.find("samples"), nullptr);
}

TEST(RunRecord, SamplesRoundTripForMannWhitney) {
  RunRecord record("bench");
  for (double v : {10.0, 12.0, 11.0}) record.add_sample("wall_ms", v);
  record.add_sample("snr_db", 20.5);

  const util::Json reparsed = util::Json::parse(record.to_json().dump(2));
  const util::Json* samples = reparsed.find("samples");
  ASSERT_NE(samples, nullptr);
  const util::Json* wall = samples->find("wall_ms");
  ASSERT_NE(wall, nullptr);
  ASSERT_EQ(wall->size(), 3u);
  EXPECT_DOUBLE_EQ(wall->at(0).as_number(), 10.0);
  EXPECT_DOUBLE_EQ(wall->at(2).as_number(), 11.0);
  EXPECT_EQ(samples->find("snr_db")->size(), 1u);
}

TEST(RunRecord, WriteAndDefaultPath) {
  RunRecord record("unit_test_bench");
  record.set_number("x", 1.0);
  EXPECT_EQ(record.default_path(), "BENCH_unit_test_bench.json");

  const std::string path =
      testing::TempDir() + "/amperebleed_run_record_test.json";
  std::remove(path.c_str());
  record.write(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const util::Json doc = util::Json::parse(text);
  EXPECT_EQ(doc.find("bench")->as_string(), "unit_test_bench");
  EXPECT_DOUBLE_EQ(doc.find("numbers")->find("x")->as_number(), 1.0);
  std::remove(path.c_str());
}

// The /runrecord endpoint serializes from the HTTP serve thread while the
// bench mutates; this is the TSan-visible contract.
TEST(RunRecord, ConcurrentMutationAndSerializationIsSafe) {
  RunRecord record("hammer");
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&record, t]() {
      for (int i = 0; i < 2000; ++i) {
        record.set_number("metric_" + std::to_string(t),
                          static_cast<double>(i));
        record.add_sample("samples_" + std::to_string(t),
                          static_cast<double>(i));
      }
    });
  }
  std::thread reader([&record]() {
    for (int i = 0; i < 200; ++i) {
      const util::Json doc = record.to_json();
      EXPECT_EQ(doc.find("bench")->as_string(), "hammer");
    }
  });
  for (auto& w : writers) w.join();
  reader.join();

  const util::Json doc = record.to_json();
  for (int t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(
        doc.find("numbers")->find("metric_" + std::to_string(t))->as_number(),
        1999.0);
    EXPECT_EQ(doc.find("samples")->find("samples_" + std::to_string(t))->size(),
              2000u);
  }
}

}  // namespace
}  // namespace amperebleed::obs
