#include "amperebleed/obs/profile.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "amperebleed/obs/obs.hpp"

namespace amperebleed::obs {
namespace {

TraceEvent wall_span(std::uint64_t span_id, std::uint64_t parent_id,
                     const std::string& name, double dur_us) {
  TraceEvent e;
  e.name = name;
  e.phase = 'X';
  e.clock = SpanClock::Wall;
  e.trace_id = 1;
  e.span_id = span_id;
  e.parent_id = parent_id;
  e.dur_us = dur_us;
  return e;
}

TEST(StageName, CoversEveryStage) {
  EXPECT_STREQ(stage_name(Stage::Acquire), "acquire");
  EXPECT_STREQ(stage_name(Stage::Preprocess), "preprocess");
  EXPECT_STREQ(stage_name(Stage::Features), "features");
  EXPECT_STREQ(stage_name(Stage::Classify), "classify");
}

TEST(PipelineTimeline, RecordsCountsAndExtremes) {
  PipelineTimeline timeline;
  timeline.record(Stage::Acquire, 5e3, 11);
  timeline.record(Stage::Acquire, 2e3, 12);
  timeline.record(Stage::Acquire, 9e6, 13);
  const auto stats = timeline.stage_stats(Stage::Acquire);
  EXPECT_EQ(stats.count, 3u);
  EXPECT_DOUBLE_EQ(stats.total_ns, 5e3 + 2e3 + 9e6);
  EXPECT_DOUBLE_EQ(stats.min_ns, 2e3);
  EXPECT_DOUBLE_EQ(stats.max_ns, 9e6);
  // Untouched stages stay empty.
  EXPECT_EQ(timeline.stage_stats(Stage::Classify).count, 0u);
}

TEST(PipelineTimeline, BucketsKeepLastExemplar) {
  PipelineTimeline timeline;
  timeline.record(Stage::Classify, 500.0, 21);  // first bucket (le 1e3)
  timeline.record(Stage::Classify, 600.0, 22);  // same bucket, new exemplar
  timeline.record(Stage::Classify, 700.0, 0);   // tracing off: keeps 22
  const auto stats = timeline.stage_stats(Stage::Classify);
  ASSERT_FALSE(stats.buckets.empty());
  EXPECT_DOUBLE_EQ(stats.buckets[0].upper_ns, 1e3);
  EXPECT_EQ(stats.buckets[0].count, 3u);
  EXPECT_EQ(stats.buckets[0].exemplar_span_id, 22u);
  EXPECT_DOUBLE_EQ(stats.buckets[0].exemplar_ns, 600.0);
}

TEST(PipelineTimeline, OverflowBucketCatchesOutliers) {
  PipelineTimeline timeline;
  timeline.record(Stage::Features, 1e12, 31);  // way past the last bound
  const auto stats = timeline.stage_stats(Stage::Features);
  ASSERT_FALSE(stats.buckets.empty());
  const auto& overflow = stats.buckets.back();
  EXPECT_TRUE(std::isinf(overflow.upper_ns));
  EXPECT_EQ(overflow.count, 1u);
  EXPECT_EQ(overflow.exemplar_span_id, 31u);
}

TEST(PipelineTimeline, JsonListsEveryStage) {
  PipelineTimeline timeline;
  timeline.record(Stage::Acquire, 1e4, 0);
  const auto doc = util::Json::parse(timeline.to_json().dump());
  for (const char* stage : {"acquire", "preprocess", "features", "classify"}) {
    const auto* entry = doc.find(stage);
    ASSERT_NE(entry, nullptr) << stage;
    ASSERT_NE(entry->find("count"), nullptr);
    ASSERT_NE(entry->find("buckets"), nullptr);
  }
  EXPECT_EQ(doc.find("acquire")->find("count")->as_integer(), 1);
  EXPECT_EQ(doc.find("classify")->find("count")->as_integer(), 0);
}

TEST(CollapsedStacks, FoldsBySelfTime) {
  SpanTracer tracer;
  tracer.add_event(wall_span(1, 0, "root", 100.0));
  tracer.add_event(wall_span(2, 1, "child", 40.0));
  tracer.add_event(wall_span(3, 2, "grand", 10.0));
  EXPECT_EQ(collapsed_stacks_text(tracer),
            "root 60\n"
            "root;child 30\n"
            "root;child;grand 10\n");
}

TEST(CollapsedStacks, SiblingsMergeIntoOneLine) {
  SpanTracer tracer;
  tracer.add_event(wall_span(1, 0, "root", 100.0));
  tracer.add_event(wall_span(2, 1, "task", 30.0));
  tracer.add_event(wall_span(3, 1, "task", 25.0));
  EXPECT_EQ(collapsed_stacks_text(tracer),
            "root 45\n"
            "root;task 55\n");
}

TEST(CollapsedStacks, ParallelChildrenClampParentSelfAtZero) {
  // Two pool tasks overlapping in wall time can sum past the parent's own
  // duration; the parent's self time clamps at zero instead of going
  // negative.
  SpanTracer tracer;
  tracer.add_event(wall_span(1, 0, "root", 50.0));
  tracer.add_event(wall_span(2, 1, "task", 40.0));
  tracer.add_event(wall_span(3, 1, "task", 40.0));
  EXPECT_EQ(collapsed_stacks_text(tracer),
            "root 0\n"
            "root;task 80\n");
}

TEST(CollapsedStacks, OrphanSpansStartTheirOwnStack) {
  SpanTracer tracer;
  tracer.add_event(wall_span(2, 99, "orphan", 5.0));  // parent never finished
  EXPECT_EQ(collapsed_stacks_text(tracer), "orphan 5\n");
}

TEST(CollapsedStacks, IgnoresFlowAndVirtualEvents) {
  SpanTracer tracer;
  tracer.add_event(wall_span(1, 0, "root", 10.0));
  tracer.add_flow_event('s', 7, "parallel_for");
  tracer.add_flow_event('f', 7, "parallel_for");
  tracer.add_virtual_span("sim", "", sim::TimeNs{0}, sim::microseconds(5));
  EXPECT_EQ(collapsed_stacks_text(tracer), "root 10\n");
}

TEST(CollapsedStacks, WriteThrowsOnBadPath) {
  SpanTracer tracer;
  EXPECT_THROW(
      write_collapsed_stacks(tracer, "/nonexistent-dir-xyz/profile.txt"),
      std::runtime_error);
}

TEST(CollapsedStacks, WritesFile) {
  SpanTracer tracer;
  tracer.add_event(wall_span(1, 0, "root", 3.0));
  const std::string path = "collapsed_stacks_test_out.txt";
  write_collapsed_stacks(tracer, path);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "root 3\n");
  std::remove(path.c_str());
}

TEST(StageSpan, InertWhenObsDisabled) {
  shutdown();
  {
    StageSpan stage(Stage::Acquire);
    EXPECT_FALSE(stage.span().active());
  }
  EXPECT_EQ(timeline().stage_stats(Stage::Acquire).count, 0u);
}

TEST(StageSpan, RecordsTimelineHistogramAndSpan) {
  init();
  reset_data();
  { StageSpan stage(Stage::Preprocess); }
  const auto stats = timeline().stage_stats(Stage::Preprocess);
  EXPECT_EQ(stats.count, 1u);
  const auto* h = metrics().find_histogram("pipeline.stage.preprocess_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  // The trace span doubles as the bucket exemplar.
  bool saw_span = false;
  std::uint64_t span_id = 0;
  for (const auto& e : tracer().events_snapshot()) {
    if (e.name == "pipeline.preprocess") {
      saw_span = true;
      span_id = e.span_id;
    }
  }
  EXPECT_TRUE(saw_span);
  std::uint64_t exemplar = 0;
  for (const auto& bucket : stats.buckets) {
    if (bucket.exemplar_span_id != 0) exemplar = bucket.exemplar_span_id;
  }
  EXPECT_EQ(exemplar, span_id);
  shutdown();
}

TEST(StageSpan, ResetDataClearsTimeline) {
  init();
  { StageSpan stage(Stage::Classify); }
  EXPECT_EQ(timeline().stage_stats(Stage::Classify).count, 1u);
  reset_data();
  EXPECT_EQ(timeline().stage_stats(Stage::Classify).count, 0u);
  shutdown();
}

}  // namespace
}  // namespace amperebleed::obs
