#include "amperebleed/obs/drift.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "amperebleed/core/online.hpp"
#include "amperebleed/ml/dataset.hpp"
#include "amperebleed/util/rng.hpp"
#include "amperebleed/util/thread_pool.hpp"

namespace amperebleed::obs {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

/// Restores the previous global pool size even when an assertion fails.
class PoolSizeGuard {
 public:
  PoolSizeGuard() : before_(util::ThreadPool::global().size()) {}
  ~PoolSizeGuard() { util::ThreadPool::set_global_threads(before_); }

 private:
  std::size_t before_;
};

TEST(StreamingSketch, ObserveTracksCountsAndMoments) {
  StreamingSketch s(0.0, 8.0, 8);
  for (double v : {0.5, 1.5, 1.5, 7.5}) s.observe(v);
  EXPECT_EQ(s.total(), 4u);
  EXPECT_EQ(s.counts()[0], 1u);
  EXPECT_EQ(s.counts()[1], 2u);
  EXPECT_EQ(s.counts()[7], 1u);
  EXPECT_DOUBLE_EQ(s.mean(), (0.5 + 1.5 + 1.5 + 7.5) / 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
  EXPECT_GT(s.variance(), 0.0);
}

TEST(StreamingSketch, OutOfRangeValuesLandInEdgeBins) {
  StreamingSketch s(0.0, 1.0, 4);
  s.observe(-100.0);
  s.observe(100.0);
  s.observe(1.0);  // exactly hi: clamped into the last bin
  EXPECT_EQ(s.counts()[0], 1u);
  EXPECT_EQ(s.counts()[3], 2u);
  EXPECT_EQ(s.total(), 3u);
  // Moments keep the raw values (the signal that data walked out of range).
  EXPECT_DOUBLE_EQ(s.min(), -100.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(StreamingSketch, MergeAddsCountsAndRequiresSameLayout) {
  StreamingSketch a(0.0, 4.0, 4);
  StreamingSketch b(0.0, 4.0, 4);
  a.observe(0.5);
  b.observe(2.5);
  b.observe(3.5);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.counts()[0], 1u);
  EXPECT_EQ(a.counts()[2], 1u);
  EXPECT_EQ(a.counts()[3], 1u);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 3.5);

  StreamingSketch other_range(0.0, 8.0, 4);
  StreamingSketch other_bins(0.0, 4.0, 8);
  EXPECT_THROW(a.merge(other_range), std::invalid_argument);
  EXPECT_THROW(a.merge(other_bins), std::invalid_argument);
}

TEST(StreamingSketch, ClearKeepsLayoutZeroesData) {
  StreamingSketch s(-1.0, 1.0, 4);
  s.observe(0.25);
  s.clear();
  EXPECT_EQ(s.total(), 0u);
  EXPECT_EQ(s.bins(), 4u);
  EXPECT_DOUBLE_EQ(s.lo(), -1.0);
  EXPECT_DOUBLE_EQ(s.hi(), 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(StreamingSketch, FractionsAreSmoothedAndSumToOne) {
  StreamingSketch s(0.0, 2.0, 2);
  // Empty sketch: smoothing yields the uniform distribution.
  const auto uniform = s.fractions();
  ASSERT_EQ(uniform.size(), 2u);
  EXPECT_DOUBLE_EQ(uniform[0], 0.5);
  EXPECT_DOUBLE_EQ(uniform[1], 0.5);

  for (int i = 0; i < 3; ++i) s.observe(0.5);
  const auto skewed = s.fractions(0.5);
  // (3 + 0.5) / (3 + 2*0.5) and (0 + 0.5) / 4.
  EXPECT_DOUBLE_EQ(skewed[0], 3.5 / 4.0);
  EXPECT_DOUBLE_EQ(skewed[1], 0.5 / 4.0);
  EXPECT_DOUBLE_EQ(skewed[0] + skewed[1], 1.0);
  // Smoothing keeps every fraction strictly positive (no log(0) in PSI).
  EXPECT_GT(skewed[1], 0.0);
}

TEST(StreamingSketch, JsonRoundTripIsExact) {
  // Dyadic values survive the %.12g dump exactly, so round-trip equality
  // can use operator== rather than tolerances.
  StreamingSketch s(-2.0, 2.0, 4);
  for (double v : {-1.5, -0.5, 0.25, 1.75, 3.0}) s.observe(v);
  const StreamingSketch restored = StreamingSketch::from_json(s.to_json());
  EXPECT_EQ(restored, s);
}

TEST(Psi, ZeroForIdenticalDistributionsPositiveForShifted) {
  StreamingSketch ref(0.0, 8.0, 8);
  StreamingSketch same(0.0, 8.0, 8);
  StreamingSketch shifted(0.0, 8.0, 8);
  for (int i = 0; i < 256; ++i) {
    const double v = static_cast<double>(i % 8) + 0.5;
    ref.observe(v);
    same.observe(v);
    shifted.observe(v + 4.0);  // half the mass clamps into the top bin
  }
  EXPECT_NEAR(population_stability_index(ref, same), 0.0, 1e-12);
  EXPECT_GT(population_stability_index(ref, shifted), 0.25);

  StreamingSketch mismatched(0.0, 4.0, 8);
  EXPECT_THROW(population_stability_index(ref, mismatched),
               std::invalid_argument);
}

ml::Dataset gaussian_dataset(std::uint64_t seed, std::size_t rows_per_class,
                             std::size_t dims = 4) {
  util::Rng rng(seed);
  ml::Dataset d(dims);
  for (int cls = 0; cls < 3; ++cls) {
    for (std::size_t r = 0; r < rows_per_class; ++r) {
      std::vector<double> row;
      row.reserve(dims);
      for (std::size_t f = 0; f < dims; ++f) {
        row.push_back(rng.gaussian(cls * 3.0, 1.0));
      }
      d.add(row, cls);
    }
  }
  return d;
}

TEST(ReferenceProfile, FromDatasetCapturesShapeAndPriors) {
  const ml::Dataset data = gaussian_dataset(0x11, 20);
  const ReferenceProfile profile = ReferenceProfile::from_dataset(data);
  EXPECT_EQ(profile.dims(), 4u);
  EXPECT_EQ(profile.rows, 60u);
  ASSERT_EQ(profile.class_counts.size(), 3u);
  for (const std::uint64_t c : profile.class_counts) EXPECT_EQ(c, 20u);
  for (std::size_t f = 0; f < profile.dims(); ++f) {
    EXPECT_EQ(profile.feature_sketches[f].total(), 60u);
    EXPECT_FALSE(profile.feature_samples[f].empty());
    EXPECT_LE(profile.feature_samples[f].size(),
              ReferenceProfile::kMaxSubsample);
  }
}

TEST(ReferenceProfile, CaptureIsDeterministic) {
  const ml::Dataset data = gaussian_dataset(0x22, 16);
  const ReferenceProfile a = ReferenceProfile::from_dataset(data);
  const ReferenceProfile b = ReferenceProfile::from_dataset(data);
  EXPECT_EQ(a, b);
}

TEST(ReferenceProfile, JsonRoundTripPreservesStructure) {
  const ml::Dataset data = gaussian_dataset(0x33, 12);
  const ReferenceProfile profile = ReferenceProfile::from_dataset(data);
  const ReferenceProfile restored =
      ReferenceProfile::from_json(profile.to_json());
  // Doubles pass through a %.12g dump, so compare the re-serialized forms:
  // if parse/dump is stable, the round trip lost nothing it can express.
  EXPECT_EQ(restored.to_json().dump(), profile.to_json().dump());
  EXPECT_EQ(restored.dims(), profile.dims());
  EXPECT_EQ(restored.rows, profile.rows);
  EXPECT_EQ(restored.class_counts, profile.class_counts);
  for (std::size_t f = 0; f < profile.dims(); ++f) {
    EXPECT_EQ(restored.feature_sketches[f].counts(),
              profile.feature_sketches[f].counts());
    ASSERT_EQ(restored.feature_samples[f].size(),
              profile.feature_samples[f].size());
  }
}

/// A profile whose single dimension is uniform on [0, 8) with equal priors —
/// the state-machine tests drive it with hand-built windows.
ReferenceProfile uniform_profile() {
  ml::Dataset d(1);
  for (int i = 0; i < 64; ++i) {
    const double v = static_cast<double>(i % 8) + 0.5;
    d.add(std::vector<double>{v}, i % 2);
  }
  return ReferenceProfile::from_dataset(d);
}

DriftConfig tight_config() {
  DriftConfig cfg;
  cfg.enabled = true;
  cfg.name = "test_monitor";
  cfg.window = 16;
  cfg.stride = 8;
  cfg.confirm = 2;
  cfg.clear = 2;
  return cfg;
}

// Cycles through the reference support exactly, so any full window
// reproduces the enrollment distribution (PSI ~ 0 with one dimension; a
// random feed would ride the (bins-1)/window small-sample bias right up to
// the warning threshold).
void feed_matching(DriftMonitor& m, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(i % 8) + 0.5;
    m.observe(std::vector<double>{v}, static_cast<int>(i % 2), 0.9);
  }
}

void feed_shifted(DriftMonitor& m, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    // Far outside the reference range: everything clamps into the top bin.
    m.observe(std::vector<double>{1000.0 + static_cast<double>(i)}, 0, 0.9);
  }
}

TEST(DriftMonitor, StaysOkOnMatchingData) {
  DriftMonitor monitor(uniform_profile(), tight_config());
  feed_matching(monitor, 128);
  const DriftReport report = monitor.report();
  EXPECT_EQ(report.state, DriftState::Ok);
  EXPECT_EQ(report.observations, 128u);
  EXPECT_GT(report.evaluations, 0u);
  EXPECT_EQ(report.warnings, 0u);
  EXPECT_EQ(report.drifts, 0u);
  EXPECT_EQ(report.first_warning_obs, -1);
}

TEST(DriftMonitor, NoEvaluationBeforeWindowFills) {
  DriftMonitor monitor(uniform_profile(), tight_config());
  feed_shifted(monitor, 15);  // window = 16
  EXPECT_EQ(monitor.report().evaluations, 0u);
  EXPECT_EQ(monitor.state(), DriftState::Ok);
}

TEST(DriftMonitor, EscalatesAfterConfirmConsecutiveBreaches) {
  DriftMonitor monitor(uniform_profile(), tight_config());
  feed_shifted(monitor, 16);  // first evaluation: breach streak 1
  EXPECT_EQ(monitor.state(), DriftState::Ok);
  feed_shifted(monitor, 8);  // second evaluation: streak 2 -> escalate
  const DriftReport report = monitor.report();
  EXPECT_NE(report.state, DriftState::Ok);
  EXPECT_EQ(report.first_warning_obs, 24);
  EXPECT_GE(report.last.psi_mean, 0.5);
}

TEST(DriftMonitor, DriftedIsStickyUntilReset) {
  DriftMonitor monitor(uniform_profile(), tight_config());
  feed_shifted(monitor, 64);
  ASSERT_EQ(monitor.state(), DriftState::Drifted);
  // Plenty of clean evaluations: Drifted never self-clears.
  feed_matching(monitor, 128);
  EXPECT_EQ(monitor.state(), DriftState::Drifted);
  monitor.reset_window();
  const DriftReport fresh = monitor.report();
  EXPECT_EQ(fresh.state, DriftState::Ok);
  EXPECT_EQ(fresh.observations, 0u);
  EXPECT_EQ(fresh.evaluations, 0u);
  EXPECT_EQ(fresh.first_drifted_obs, -1);
}

TEST(DriftMonitor, WarningClearsAfterCleanEvaluations) {
  // Thresholds where the shifted window stops at Warning (psi_drifted
  // unreachably high), so the Warning -> Ok path is exercised.
  DriftConfig cfg = tight_config();
  cfg.psi_drifted = 1e9;
  cfg.ks_alpha_drifted = 0.0;
  cfg.chi2_alpha_drifted = 0.0;
  DriftMonitor monitor(uniform_profile(), cfg);
  feed_shifted(monitor, 24);
  ASSERT_EQ(monitor.state(), DriftState::Warning);
  EXPECT_EQ(monitor.report().warnings, 1u);
  // Matching data refills the window; after `clear` clean evaluations the
  // monitor de-escalates.
  feed_matching(monitor, 64);
  EXPECT_EQ(monitor.state(), DriftState::Ok);
}

TEST(DriftMonitor, ReportJsonHasStableShape) {
  DriftMonitor monitor(uniform_profile(), tight_config());
  feed_matching(monitor, 32);
  const util::Json doc = monitor.report().to_json();
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("name"), nullptr);
  EXPECT_EQ(doc.find("name")->as_string(), "test_monitor");
  ASSERT_NE(doc.find("state"), nullptr);
  EXPECT_EQ(doc.find("state")->as_string(), "ok");
  for (const char* key : {"observations", "evaluations", "warnings", "drifts",
                          "first_warning_obs", "first_drifted_obs"}) {
    ASSERT_NE(doc.find(key), nullptr) << key;
    EXPECT_TRUE(doc.find(key)->is_integer()) << key;
  }
  const util::Json* last = doc.find("last");
  ASSERT_NE(last, nullptr);
  for (const char* key : {"psi_mean", "psi_max", "ks_min_p", "class_p",
                          "confidence_mean"}) {
    ASSERT_NE(last->find(key), nullptr) << key;
    EXPECT_TRUE(last->find(key)->is_number()) << key;
  }
}

core::Trace drift_probe(int cls, std::uint64_t seed, double scale,
                        std::size_t len = 40) {
  util::Rng rng(seed);
  core::Trace t({}, sim::TimeNs{0}, sim::milliseconds(35));
  for (std::size_t i = 0; i < len; ++i) {
    const double ripple = (i % (2 + static_cast<std::size_t>(cls))) * 5.0;
    t.push((100.0 * cls + ripple + rng.gaussian(0.0, 2.0)) * scale);
  }
  return t;
}

core::OnlineFingerprinter drifting_service() {
  core::OnlineFingerprinterConfig config;
  config.forest.n_trees = 20;
  config.drift.enabled = true;
  config.drift.window = 12;
  config.drift.stride = 4;
  config.drift.confirm = 2;
  core::OnlineFingerprinter service(config);
  const char* names[] = {"net-a", "net-b", "net-c"};
  for (int cls = 0; cls < 3; ++cls) {
    for (std::uint64_t r = 0; r < 8; ++r) {
      service.enroll(drift_probe(cls, cls * 100 + r, 1.0), names[cls]);
    }
  }
  service.train();
  return service;
}

TEST(DriftMonitor, FingerprinterReportBitIdenticalAcrossThreadCounts) {
  PoolSizeGuard guard;
  std::vector<std::string> dumps;
  for (std::size_t threads : kThreadCounts) {
    util::ThreadPool::set_global_threads(threads);
    auto service = drifting_service();
    ASSERT_NE(service.drift_monitor(), nullptr);
    std::vector<core::Trace> probes;
    for (int i = 0; i < 24; ++i) {
      // First half in-distribution, second half amplitude-shifted.
      const double scale = i < 12 ? 1.0 : 1.6;
      probes.push_back(drift_probe(i % 3, 9000 + i, scale));
    }
    const auto verdicts = service.classify_many(probes);
    ASSERT_EQ(verdicts.size(), probes.size());
    dumps.push_back(service.drift_monitor()->report().to_json().dump());
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(dumps[0], dumps[2]);
}

TEST(DriftMonitor, FingerprinterWithoutDriftHasNoMonitor) {
  core::OnlineFingerprinterConfig config;
  config.forest.n_trees = 10;
  core::OnlineFingerprinter service(config);
  for (int cls = 0; cls < 2; ++cls) {
    for (std::uint64_t r = 0; r < 4; ++r) {
      service.enroll(drift_probe(cls, cls * 10 + r, 1.0),
                     cls == 0 ? "a" : "b");
    }
  }
  service.train();
  EXPECT_EQ(service.drift_monitor(), nullptr);
  service.reset_drift_window();  // no-op, must not crash
  EXPECT_TRUE(service.classify(drift_probe(0, 77, 1.0)).known);
}

}  // namespace
}  // namespace amperebleed::obs
