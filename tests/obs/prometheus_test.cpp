#include "amperebleed/obs/prometheus.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace amperebleed::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(PrometheusName, SanitizesInvalidRunes) {
  EXPECT_EQ(prometheus_metric_name("sampler.reads"), "sampler_reads");
  EXPECT_EQ(prometheus_metric_name("a-b c/d"), "a_b_c_d");
  EXPECT_EQ(prometheus_metric_name("ok_name:sub"), "ok_name:sub");
  // A leading digit is invalid even though digits are fine afterwards.
  EXPECT_EQ(prometheus_metric_name("9lives"), "_lives");
  EXPECT_EQ(prometheus_metric_name("lives9"), "lives9");
  EXPECT_EQ(prometheus_metric_name(""), "_");
}

TEST(PrometheusEscape, EscapesQuoteBackslashNewline) {
  EXPECT_EQ(prometheus_escape_label_value("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(prometheus_escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape_label_value("a\nb"), "a\\nb");
  EXPECT_EQ(prometheus_escape_label_value("\\\"\n"), "\\\\\\\"\\n");
  EXPECT_EQ(prometheus_escape_label_value(""), "");
}

TEST(PrometheusText, NonFiniteGaugesUseExpositionTokens) {
  MetricsRegistry registry;
  registry.gauge("g_nan").set(std::numeric_limits<double>::quiet_NaN());
  registry.gauge("g_pinf").set(std::numeric_limits<double>::infinity());
  registry.gauge("g_ninf").set(-std::numeric_limits<double>::infinity());
  const std::string text = to_prometheus_text(registry);
  EXPECT_NE(text.find("g_nan NaN\n"), std::string::npos);
  EXPECT_NE(text.find("g_pinf +Inf\n"), std::string::npos);
  EXPECT_NE(text.find("g_ninf -Inf\n"), std::string::npos);
  // The printf spellings must not leak through.
  EXPECT_EQ(text.find("nan\n"), std::string::npos);
  EXPECT_EQ(text.find(" inf"), std::string::npos);
}

TEST(PrometheusText, EmptyHistogramRendersZeroSamples) {
  MetricsRegistry registry;
  static_cast<void>(registry.histogram("empty.hist"));
  const std::string text = to_prometheus_text(registry);
  EXPECT_NE(text.find("# TYPE empty_hist histogram"), std::string::npos);
  EXPECT_NE(text.find("empty_hist_count 0\n"), std::string::npos);
  EXPECT_NE(text.find("empty_hist_sum 0\n"), std::string::npos);
  EXPECT_NE(text.find("empty_hist_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
}

TEST(PrometheusText, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  HistogramConfig config;
  config.bucket_bounds = {10.0, 100.0};
  config.quantiles = {};
  Histogram& h = registry.histogram("lat", config);
  h.observe(5.0);
  h.observe(50.0);
  h.observe(1e6);
  const std::string text = to_prometheus_text(registry);
  EXPECT_NE(text.find("lat_bucket{le=\"10\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"100\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 3\n"), std::string::npos);
}

// Line-level grammar check: every non-comment, non-empty line must be
// `name[{labels}] value` with a valid metric name and a parseable value.
void expect_grammar_valid(const std::string& text) {
  for (const std::string& line : lines_of(text)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string series = line.substr(0, space);
    const std::string value = line.substr(space + 1);

    // Value: a decimal or one of the special tokens.
    if (value != "NaN" && value != "+Inf" && value != "-Inf") {
      std::size_t parsed = 0;
      EXPECT_NO_THROW(static_cast<void>(std::stod(value, &parsed))) << line;
      EXPECT_EQ(parsed, value.size()) << line;
    }

    // Optional {label="value"} block; quotes must be balanced.
    const std::size_t brace = series.find('{');
    if (brace != std::string::npos) {
      ASSERT_EQ(series.back(), '}') << line;
      const std::string labels = series.substr(brace + 1,
                                               series.size() - brace - 2);
      std::size_t quotes = 0;
      for (std::size_t i = 0; i < labels.size(); ++i) {
        if (labels[i] == '"' && (i == 0 || labels[i - 1] != '\\')) ++quotes;
      }
      EXPECT_EQ(quotes % 2, 0u) << line;
      series = series.substr(0, brace);
    }

    // Metric name: [a-zA-Z_:][a-zA-Z0-9_:]*
    ASSERT_FALSE(series.empty()) << line;
    const auto name_ok = [](char c, bool first) {
      const auto uc = static_cast<unsigned char>(c);
      return std::isalpha(uc) != 0 || c == '_' || c == ':' ||
             (!first && std::isdigit(uc) != 0);
    };
    EXPECT_TRUE(name_ok(series[0], true)) << line;
    for (std::size_t i = 1; i < series.size(); ++i) {
      EXPECT_TRUE(name_ok(series[i], false)) << line;
    }
  }
}

TEST(PrometheusText, FullRegistryIsGrammarValid) {
  MetricsRegistry registry;
  registry.counter("requests.total").inc(3);
  registry.gauge("temp.c").set(42.5);
  registry.gauge("weird gauge-name/9").set(
      std::numeric_limits<double>::quiet_NaN());
  Histogram& h = registry.histogram("lat.ns");
  h.observe(150.0);
  h.observe(1e9);
  static_cast<void>(registry.histogram("empty.h"));
  expect_grammar_valid(to_prometheus_text(registry));
}

}  // namespace
}  // namespace amperebleed::obs
