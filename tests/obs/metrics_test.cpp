#include "amperebleed/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "amperebleed/obs/obs.hpp"
#include "amperebleed/util/json.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::obs {
namespace {

TEST(Counter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c]() {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAndConcurrentAdd) {
  Gauge g;
  g.set(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g]() {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_DOUBLE_EQ(g.value(), 5.0 + kThreads * kPerThread);
}

TEST(P2Quantile, ExactForSmallSamples) {
  P2Quantile q(0.5);
  for (double v : {5.0, 1.0, 3.0}) q.observe(v);
  EXPECT_DOUBLE_EQ(q.estimate(), 3.0);  // exact median of {1,3,5}
}

TEST(P2Quantile, TracksUniformQuantilesWithinTolerance) {
  // Compare the streaming estimate against the exact empirical quantile on
  // a deterministic uniform stream.
  util::Rng rng(0x9e2);
  std::vector<double> values;
  values.reserve(20'000);
  P2Quantile p50(0.5);
  P2Quantile p90(0.9);
  P2Quantile p99(0.99);
  for (int i = 0; i < 20'000; ++i) {
    const double v = rng.uniform(0.0, 1000.0);
    values.push_back(v);
    p50.observe(v);
    p90.observe(v);
    p99.observe(v);
  }
  std::sort(values.begin(), values.end());
  const auto exact = [&](double q) {
    return values[static_cast<std::size_t>(q * (values.size() - 1))];
  };
  // P-square on a smooth distribution stays within a few percent of range.
  EXPECT_NEAR(p50.estimate(), exact(0.5), 20.0);
  EXPECT_NEAR(p90.estimate(), exact(0.9), 20.0);
  EXPECT_NEAR(p99.estimate(), exact(0.99), 20.0);
}

TEST(Histogram, BucketCountsAndSummary) {
  HistogramConfig config;
  config.bucket_bounds = {1.0, 10.0, 100.0};
  Histogram h(config);
  for (double v : {0.5, 5.0, 50.0, 500.0, 0.25}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.75);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(buckets[0], 2u);      // <= 1
  EXPECT_EQ(buckets[1], 1u);      // <= 10
  EXPECT_EQ(buckets[2], 1u);      // <= 100
  EXPECT_EQ(buckets[3], 1u);      // overflow
}

TEST(Histogram, EmptySummaries) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_TRUE(std::isinf(h.min()));
  EXPECT_TRUE(std::isinf(h.max()));
}

TEST(Histogram, ExponentialBucketsLayout) {
  const auto config = exponential_buckets(100.0, 4.0, 3);
  ASSERT_EQ(config.bucket_bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(config.bucket_bounds[0], 100.0);
  EXPECT_DOUBLE_EQ(config.bucket_bounds[1], 400.0);
  EXPECT_DOUBLE_EQ(config.bucket_bounds[2], 1600.0);
}

TEST(MetricsRegistry, StableReferencesAndLookup) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(reg.counter_value("x"), 3u);
  EXPECT_EQ(reg.counter_value("missing"), 0u);
  EXPECT_TRUE(reg.has_counter("x"));
  EXPECT_FALSE(reg.has_counter("missing"));
}

TEST(MetricsRegistry, ConcurrentRegistrationAndIncrement) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg]() {
      for (int i = 0; i < kPerThread; ++i) {
        reg.counter("shared").inc();
        reg.histogram("lat").observe(static_cast<double>(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter_value("shared"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(reg.histogram("lat").count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, JsonSnapshotParsesBack) {
  MetricsRegistry reg;
  reg.counter("reads").inc(7);
  reg.gauge("temp").set(42.5);
  reg.histogram("lat").observe(150.0);
  const auto parsed = util::Json::parse(reg.to_json().dump());
  ASSERT_TRUE(parsed.is_object());
  const auto* counters = parsed.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("reads"), nullptr);
  EXPECT_EQ(counters->find("reads")->as_integer(), 7);
  const auto* hist = parsed.find("histograms");
  ASSERT_NE(hist, nullptr);
  const auto* lat = hist->find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("count")->as_integer(), 1);
  const auto* buckets = lat->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  ASSERT_GT(buckets->size(), 0u);
  EXPECT_NE(buckets->at(0).find("le"), nullptr);
}

TEST(MetricsRegistry, CsvSnapshotHasHeaderAndRows) {
  MetricsRegistry reg;
  reg.counter("reads").inc(2);
  const std::string csv = reg.to_csv();
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,reads,value,2"), std::string::npos);
}

TEST(MetricsRegistry, ResetClearsEverything) {
  MetricsRegistry reg;
  reg.counter("x").inc();
  reg.reset();
  EXPECT_FALSE(reg.has_counter("x"));
  EXPECT_EQ(reg.instrument_count(), 0u);
}

TEST(ObsContext, DisabledByDefaultAndHelpersNoOp) {
  shutdown();
  EXPECT_FALSE(metrics_enabled());
  EXPECT_FALSE(tracing_enabled());
  EXPECT_FALSE(audit_enabled());
  count("never");  // must not create anything while disabled
  EXPECT_FALSE(metrics().has_counter("never"));
}

TEST(ObsContext, InitEnablesAndShutdownClears) {
  init();
  EXPECT_TRUE(metrics_enabled());
  count("obs_ctx_test", 4);
  EXPECT_EQ(metrics().counter_value("obs_ctx_test"), 4u);
  shutdown();
  EXPECT_FALSE(metrics_enabled());
  EXPECT_FALSE(metrics().has_counter("obs_ctx_test"));
}

TEST(ObsContext, SubLayerSwitches) {
  ObsConfig config;
  config.enabled = true;
  config.tracing = false;
  config.audit = false;
  init(config);
  EXPECT_TRUE(metrics_enabled());
  EXPECT_FALSE(tracing_enabled());
  EXPECT_FALSE(audit_enabled());
  shutdown();
}

}  // namespace
}  // namespace amperebleed::obs
