#include "amperebleed/obs/http_exporter.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include "amperebleed/obs/metrics.hpp"
#include "amperebleed/obs/prometheus.hpp"
#include "amperebleed/obs/run_record.hpp"
#include "amperebleed/util/json.hpp"

namespace amperebleed::obs {
namespace {

// Minimal blocking HTTP client against 127.0.0.1:port.
std::string http_get(int port, const std::string& path,
                     const std::string& method = "GET") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect to 127.0.0.1:" << port << " failed";
    return "";
  }
  const std::string request =
      method + " " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[2048];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

class HttpExporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_.counter("http.test.counter").inc(11);
    registry_.gauge("http.test.gauge").set(3.25);
    auto& histogram = registry_.histogram("http.test.latency_ns");
    for (int i = 1; i <= 100; ++i) histogram.observe(i * 100.0);
  }

  MetricsRegistry registry_;
};

TEST_F(HttpExporterTest, ServesPrometheusMetricsOnEphemeralPort) {
  HttpExporter server(registry_);
  server.start();
  ASSERT_GT(server.port(), 0);

  const std::string response = http_get(server.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  const std::string body = body_of(response);

  // One counter, one gauge, one histogram with buckets and quantiles.
  EXPECT_NE(body.find("# TYPE http_test_counter counter"),
            std::string::npos);
  EXPECT_NE(body.find("http_test_counter 11"), std::string::npos);
  EXPECT_NE(body.find("# TYPE http_test_gauge gauge"), std::string::npos);
  EXPECT_NE(body.find("# TYPE http_test_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(body.find("http_test_latency_ns_bucket{le=\"+Inf\"} 100"),
            std::string::npos);
  EXPECT_NE(body.find("http_test_latency_ns_count 100"), std::string::npos);
  EXPECT_NE(body.find("_quantiles{quantile=\"0.5\"}"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST_F(HttpExporterTest, HealthzAndScrapeCounting) {
  HttpExporter server(registry_);
  server.start();
  const std::string body = body_of(http_get(server.port(), "/healthz"));
  const util::Json doc = util::Json::parse(body);
  EXPECT_EQ(doc.find("status")->as_string(), "ok");
  EXPECT_GE(doc.find("uptime_seconds")->as_number(), 0.0);
  EXPECT_EQ(server.requests_served(), 1u);
  EXPECT_EQ(registry_.counter_value("obs_http_requests_total"), 1u);
  server.stop();
}

TEST_F(HttpExporterTest, RunRecordEndpoint) {
  HttpExporter server(registry_);
  server.start();
  // Without a provider: 503.
  EXPECT_NE(http_get(server.port(), "/runrecord").find("503"),
            std::string::npos);

  RunRecord record("http_test_bench");
  record.set_number("accuracy", 0.93);
  server.set_runrecord_provider([&record]() { return record.to_json(); });
  const std::string body = body_of(http_get(server.port(), "/runrecord"));
  const util::Json doc = util::Json::parse(body);
  EXPECT_EQ(doc.find("bench")->as_string(), "http_test_bench");
  EXPECT_DOUBLE_EQ(doc.find("numbers")->find("accuracy")->as_number(), 0.93);
  ASSERT_NE(doc.find("env"), nullptr);
  EXPECT_TRUE(doc.find("env")->find("hostname")->is_string());
  server.stop();
}

TEST_F(HttpExporterTest, HealthzFoldsChannelHealthGauges) {
  // ChannelHealth ordinals: Healthy=0, Degraded=1, Quarantined=2, Probing=3.
  registry_.gauge("sampler.health.ch0").set(0.0);
  registry_.gauge("sampler.health.ch1").set(2.0);
  registry_.gauge("sampler.health.ch2").set(1.0);
  HttpExporter server(registry_);
  server.start();
  const std::string response = http_get(server.port(), "/healthz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  const util::Json doc = util::Json::parse(body_of(response));
  EXPECT_EQ(doc.find("status")->as_string(), "ok");
  const auto* channels = doc.find("channels");
  ASSERT_NE(channels, nullptr);
  EXPECT_EQ(channels->find("total")->as_integer(), 3);
  EXPECT_EQ(channels->find("healthy")->as_integer(), 1);
  EXPECT_EQ(channels->find("degraded")->as_integer(), 1);
  EXPECT_EQ(channels->find("quarantined")->as_integer(), 1);
  EXPECT_EQ(channels->find("probing")->as_integer(), 0);
  server.stop();
}

TEST_F(HttpExporterTest, HealthzDegradesWhenAllChannelsQuarantined) {
  registry_.gauge("sampler.health.ch0").set(2.0);
  registry_.gauge("sampler.health.ch1").set(2.0);
  HttpExporter server(registry_);
  server.start();
  const std::string response = http_get(server.port(), "/healthz");
  EXPECT_NE(response.find("503"), std::string::npos);
  const util::Json doc = util::Json::parse(body_of(response));
  EXPECT_EQ(doc.find("status")->as_string(), "unhealthy");
  EXPECT_EQ(doc.find("channels")->find("quarantined")->as_integer(), 2);
  server.stop();
}

TEST_F(HttpExporterTest, FlamegraphEndpoint) {
  HttpExporter server(registry_);
  server.start();
  // Without a provider: 503.
  EXPECT_NE(http_get(server.port(), "/flamegraph").find("503"),
            std::string::npos);
  server.set_flamegraph_provider(
      []() { return std::string("root;child 42\n"); });
  const std::string response = http_get(server.port(), "/flamegraph");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  EXPECT_EQ(body_of(response), "root;child 42\n");
  server.stop();
}

TEST_F(HttpExporterTest, SloEndpoint) {
  HttpExporter server(registry_);
  server.start();
  EXPECT_NE(http_get(server.port(), "/slo").find("503"), std::string::npos);
  server.set_slo_provider([]() {
    auto j = util::Json::object();
    j.set("now_s", util::Json::number(12.0));
    j.set("objectives", util::Json::array());
    return j;
  });
  const std::string response = http_get(server.port(), "/slo");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  const util::Json doc = util::Json::parse(body_of(response));
  EXPECT_DOUBLE_EQ(doc.find("now_s")->as_number(), 12.0);
  ASSERT_NE(doc.find("objectives"), nullptr);
  server.stop();
}

TEST_F(HttpExporterTest, UnknownPathAndMethod) {
  HttpExporter server(registry_);
  server.start();
  EXPECT_NE(http_get(server.port(), "/nope").find("404"), std::string::npos);
  EXPECT_NE(http_get(server.port(), "/metrics", "POST").find("405"),
            std::string::npos);
  // Query strings are stripped before routing.
  EXPECT_NE(http_get(server.port(), "/healthz?verbose=1").find("200 OK"),
            std::string::npos);
  server.stop();
}

TEST_F(HttpExporterTest, HeadSendsHeadersOnlyWithGetContentLength) {
  // Regression: HEAD used to answer with the full GET body attached. A HEAD
  // probe must get the same status line and headers — Content-Length still
  // advertising the would-be GET body — and not a single body byte.
  HttpExporter server(registry_);
  server.start();

  const std::string get = http_get(server.port(), "/metrics");
  const std::string head = http_get(server.port(), "/metrics", "HEAD");
  EXPECT_NE(head.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_TRUE(body_of(head).empty()) << head;
  // Identical headers: the HEAD response is exactly the GET response
  // truncated after the blank line.
  const std::size_t get_headers_end = get.find("\r\n\r\n");
  ASSERT_NE(get_headers_end, std::string::npos);
  EXPECT_EQ(head, get.substr(0, get_headers_end + 4));
  // And the advertised Content-Length matches the GET body actually served.
  const std::size_t cl = head.find("Content-Length: ");
  ASSERT_NE(cl, std::string::npos);
  EXPECT_EQ(std::stoul(head.substr(cl + 16)), body_of(get).size());

  // Non-200 routes keep the same contract.
  const std::string missing = http_get(server.port(), "/nope", "HEAD");
  EXPECT_NE(missing.find("404"), std::string::npos);
  EXPECT_TRUE(body_of(missing).empty()) << missing;
  server.stop();
}

TEST_F(HttpExporterTest, StartStopIdempotentAndRebindable) {
  HttpExporter server(registry_);
  server.start();
  const int port = server.port();
  server.start();  // no-op
  EXPECT_EQ(server.port(), port);
  server.stop();
  server.stop();  // no-op

  // A second server can bind a fresh ephemeral port immediately.
  HttpExporter second(registry_);
  second.start();
  EXPECT_GT(second.port(), 0);
  second.stop();
}

TEST(PrometheusText, SanitizesNamesAndRendersDeterministically) {
  EXPECT_EQ(prometheus_metric_name("sampler.poll_latency_ns"),
            "sampler_poll_latency_ns");
  EXPECT_EQ(prometheus_metric_name("9lives"), "_lives");
  EXPECT_EQ(prometheus_metric_name("a-b/c"), "a_b_c");
  EXPECT_EQ(prometheus_metric_name(""), "_");

  MetricsRegistry registry;
  registry.counter("z.last").inc(1);
  registry.counter("a.first").inc(2);
  const std::string text = to_prometheus_text(registry);
  EXPECT_LT(text.find("a_first 2"), text.find("z_last 1"));
  EXPECT_EQ(text, to_prometheus_text(registry)) << "rendering must be stable";
}

}  // namespace
}  // namespace amperebleed::obs
