#include "amperebleed/obs/quality.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "amperebleed/ml/dataset.hpp"
#include "amperebleed/obs/drift.hpp"
#include "amperebleed/obs/obs.hpp"

namespace amperebleed::obs {
namespace {

std::vector<double> constant(std::size_t n, double v) {
  return std::vector<double>(n, v);
}

TEST(DataQualityMonitor, CountsGapsFromValidityMask) {
  DataQualityMonitor monitor;
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  const std::vector<std::uint8_t> validity = {1, 0, 0, 1};
  monitor.note_trace("rail", values, validity, 1);
  const auto channels = monitor.channels();
  ASSERT_EQ(channels.size(), 1u);
  const ChannelQuality& q = channels[0];
  EXPECT_EQ(q.channel, "rail");
  EXPECT_EQ(q.traces, 1u);
  EXPECT_EQ(q.samples, 4u);
  EXPECT_EQ(q.gaps, 2u);
  EXPECT_DOUBLE_EQ(q.gap_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(q.last_gap_fraction, 0.5);
  EXPECT_EQ(q.health, 1);
  // 50% gaps breaches the 5% default threshold.
  EXPECT_EQ(q.warnings, 1u);
}

TEST(DataQualityMonitor, EmptyValidityMeansAllValid) {
  DataQualityMonitor monitor;
  monitor.note_trace("rail", std::vector<double>{1.0, 2.0}, {}, 0);
  const auto q = monitor.channels()[0];
  EXPECT_EQ(q.gaps, 0u);
  EXPECT_EQ(q.warnings, 0u);
}

TEST(DataQualityMonitor, CountsClippedSamplesAtTheRails) {
  DataQualityConfig cfg;
  cfg.saturation_lo = -10.0;
  cfg.saturation_hi = 10.0;
  DataQualityMonitor monitor(cfg);
  const std::vector<double> values = {-11.0, -10.0, 0.0, 10.0, 11.0, 5.0};
  monitor.note_trace("rail", values, {}, 0);
  const auto q = monitor.channels()[0];
  EXPECT_EQ(q.clipped, 4u);  // both rails inclusive
  EXPECT_DOUBLE_EQ(q.last_clip_rate, 4.0 / 6.0);
  EXPECT_EQ(q.warnings, 1u);  // breaches the 1% clip threshold
}

TEST(DataQualityMonitor, GapsExcludedFromClipDenominator) {
  DataQualityConfig cfg;
  cfg.saturation_hi = 10.0;
  DataQualityMonitor monitor(cfg);
  const std::vector<double> values = {10.0, 0.0, 0.0, 0.0};
  const std::vector<std::uint8_t> validity = {1, 1, 0, 0};
  monitor.note_trace("rail", values, validity, 0);
  const auto q = monitor.channels()[0];
  EXPECT_EQ(q.clipped, 1u);
  EXPECT_DOUBLE_EQ(q.last_clip_rate, 0.5);  // 1 of 2 valid samples
}

TEST(DataQualityMonitor, FrozenNeedsLongRunAndVariation) {
  DataQualityConfig cfg;
  cfg.frozen_window = 4;
  DataQualityMonitor monitor(cfg);

  // A fully constant trace is NOT frozen: without variation it is
  // indistinguishable from a constant-by-design channel.
  monitor.note_trace("flat", constant(16, 7.0), {}, 0);
  EXPECT_EQ(monitor.channels()[0].frozen_events, 0u);
  EXPECT_FALSE(monitor.channels()[0].frozen_now);

  // Varies, then flatlines for >= frozen_window samples: frozen.
  std::vector<double> stuck = {1.0, 2.0, 3.0};
  stuck.insert(stuck.end(), 6, 3.0);  // run of 7 threes
  monitor.note_trace("stuck", stuck, {}, 2);
  const auto channels = monitor.channels();
  ASSERT_EQ(channels.size(), 2u);  // sorted: flat, stuck
  EXPECT_EQ(channels[1].channel, "stuck");
  EXPECT_EQ(channels[1].frozen_events, 1u);
  EXPECT_TRUE(channels[1].frozen_now);
  EXPECT_EQ(channels[1].warnings, 1u);

  // A short run below the window never triggers.
  monitor.note_trace("brisk", std::vector<double>{1.0, 2.0, 2.0, 2.0, 3.0},
                     {}, 0);
  EXPECT_EQ(monitor.channels()[0].frozen_events, 0u);  // "brisk" sorts first
}

TEST(DataQualityMonitor, FrozenRunInterruptedByGapsStillCounts) {
  DataQualityConfig cfg;
  cfg.frozen_window = 4;
  DataQualityMonitor monitor(cfg);
  // Invalid samples are skipped, so the frozen run continues across them.
  const std::vector<double> values = {1.0, 5.0, 5.0, 0.0, 5.0, 5.0, 0.0, 5.0};
  const std::vector<std::uint8_t> validity = {1, 1, 1, 0, 1, 1, 0, 1};
  monitor.note_trace("rail", values, validity, 0);
  const auto q = monitor.channels()[0];
  EXPECT_EQ(q.frozen_events, 1u);  // run of 5 fives with prior variation
}

TEST(DataQualityMonitor, TalliesAccumulateAndResetClears) {
  DataQualityMonitor monitor;
  monitor.note_trace("a", constant(8, 1.0), {}, 0);
  monitor.note_trace("a", constant(8, 2.0), {}, 0);
  monitor.note_trace("b", constant(4, 3.0), {}, 0);
  monitor.note_gap_fill(3);
  monitor.note_gap_fill(2);
  EXPECT_EQ(monitor.channels().size(), 2u);
  EXPECT_EQ(monitor.channels()[0].traces, 2u);
  EXPECT_EQ(monitor.channels()[0].samples, 16u);
  EXPECT_EQ(monitor.gap_filled_total(), 5u);
  monitor.reset();
  EXPECT_TRUE(monitor.channels().empty());
  EXPECT_EQ(monitor.gap_filled_total(), 0u);
}

TEST(DataQualityMonitor, JsonAggregatesAcrossChannels) {
  DataQualityMonitor monitor;
  const std::vector<std::uint8_t> one_gap = {1, 0, 1, 1};
  monitor.note_trace("a", constant(4, 1.0), one_gap, 0);
  monitor.note_trace("b", constant(4, 2.0), {}, 0);
  monitor.note_gap_fill(1);
  const util::Json doc = monitor.to_json();
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("channels"), nullptr);
  EXPECT_EQ(doc.find("channels")->size(), 2u);
  EXPECT_EQ(doc.find("traces")->as_integer(), 2);
  EXPECT_EQ(doc.find("trace_warnings")->as_integer(), 1);
  EXPECT_EQ(doc.find("gap_filled_total")->as_integer(), 1);
  const util::Json& ch = doc.find("channels")->at(0);
  for (const char* key :
       {"channel", "traces", "samples", "gaps", "clipped", "frozen_events",
        "frozen_now", "gap_fraction", "clip_rate", "last_gap_fraction",
        "last_clip_rate", "health", "warnings"}) {
    ASSERT_NE(ch.find(key), nullptr) << key;
  }
}

ReferenceProfile tiny_profile() {
  ml::Dataset d(1);
  for (int i = 0; i < 16; ++i) {
    d.add(std::vector<double>{static_cast<double>(i % 4)}, i % 2);
  }
  return ReferenceProfile::from_dataset(d);
}

TEST(QualityHub, DriftMonitorsAttachAndDetachWithLifetime) {
  QualityHub& hub = quality_hub();
  const std::size_t before = hub.to_json().find("drift")->size();
  {
    DriftConfig cfg;
    cfg.enabled = true;
    cfg.name = "hub_lifetime";
    DriftMonitor monitor(tiny_profile(), cfg);
    const util::Json doc = hub.to_json();
    EXPECT_EQ(doc.find("drift")->size(), before + 1);
    bool found = false;
    for (std::size_t i = 0; i < doc.find("drift")->size(); ++i) {
      if (doc.find("drift")->at(i).find("name")->as_string() ==
          "hub_lifetime") {
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
  EXPECT_EQ(hub.to_json().find("drift")->size(), before);
}

TEST(QualityHub, GoldenSnapshotShape) {
  // The /quality endpoint serves exactly quality_hub().to_json(): pin the
  // top-level shape so the HTTP surface cannot drift silently.
  quality_hub().reset();
  quality_hub().data_quality().note_trace("fpga_logic_current",
                                          constant(8, 1.0), {}, 0);
  const util::Json doc = quality_hub().to_json();
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("enabled"), nullptr);
  EXPECT_TRUE(doc.find("enabled")->is_boolean());
  ASSERT_NE(doc.find("data_quality"), nullptr);
  EXPECT_TRUE(doc.find("data_quality")->is_object());
  ASSERT_NE(doc.find("drift"), nullptr);
  EXPECT_TRUE(doc.find("drift")->is_array());
  EXPECT_EQ(
      doc.find("data_quality")->find("channels")->at(0).find("channel")
          ->as_string(),
      "fpga_logic_current");
  quality_hub().reset();
}

TEST(QualityHub, ResetClearsDataQualityOnly) {
  quality_hub().reset();
  quality_hub().data_quality().note_trace("x", constant(4, 1.0), {}, 0);
  DriftConfig cfg;
  cfg.enabled = true;
  cfg.name = "survives_reset";
  DriftMonitor monitor(tiny_profile(), cfg);
  quality_hub().reset();
  const util::Json doc = quality_hub().to_json();
  EXPECT_EQ(doc.find("data_quality")->find("traces")->as_integer(), 0);
  // The drift monitor stays attached: its window belongs to its owner.
  bool found = false;
  for (std::size_t i = 0; i < doc.find("drift")->size(); ++i) {
    if (doc.find("drift")->at(i).find("name")->as_string() ==
        "survives_reset") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace amperebleed::obs
