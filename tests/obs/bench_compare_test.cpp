#include "amperebleed/obs/bench_compare.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "amperebleed/util/json.hpp"

namespace amperebleed::obs {
namespace {

// Canned JSON run records — the fixture the CI perf gate is modeled on.
BenchRecord make_record(const std::string& bench, double accuracy,
                        double wall_seconds,
                        const std::string& hostname = "hostA",
                        const std::string& build_type = "Release") {
  const std::string text =
      "{\"bench\":\"" + bench + "\",\"wall_seconds\":" +
      std::to_string(wall_seconds) +
      ",\"unix_time\":1700000000,"
      "\"env\":{\"git_sha\":\"abc123\",\"hostname\":\"" + hostname +
      "\",\"build_type\":\"" + build_type + "\"},"
      "\"numbers\":{\"top1_accuracy\":" + std::to_string(accuracy) +
      ",\"samples_per_sec\":1000.0},\"text\":{}}";
  return parse_bench_record(util::Json::parse(text));
}

TEST(MetricDirection, HeuristicsMatchIntent) {
  EXPECT_EQ(metric_direction("top1_accuracy"),
            MetricDirection::HigherIsBetter);
  EXPECT_EQ(metric_direction("samples_per_sec"),
            MetricDirection::HigherIsBetter);
  EXPECT_EQ(metric_direction("wall_seconds"), MetricDirection::LowerIsBetter);
  EXPECT_EQ(metric_direction("poll_latency_ns"),
            MetricDirection::LowerIsBetter);
  EXPECT_EQ(metric_direction("obs_hwmon_reads_denied"),
            MetricDirection::LowerIsBetter);
  EXPECT_EQ(metric_direction("fpr_at_10rps"), MetricDirection::LowerIsBetter);
}

TEST(CompareRecords, UnchangedBuildHasNoRegressions) {
  const auto base = make_record("fig2", 0.95, 10.0);
  const auto cur = make_record("fig2", 0.95, 10.2);  // 2% wall noise
  const auto report = compare_records({base}, {cur}, {});
  EXPECT_EQ(report.regressions(), 0u);
  EXPECT_FALSE(report.env_mismatch);
  EXPECT_FALSE(report.comparisons.empty());
}

TEST(CompareRecords, DegradedMetricBeyondThresholdRegresses) {
  const auto base = make_record("fig2", 0.95, 10.0);
  // Accuracy down 20% (higher-is-better) and wall up 50% (lower-is-better).
  const auto cur = make_record("fig2", 0.76, 15.0);
  CompareOptions options;
  options.threshold = 0.10;
  const auto report = compare_records({base}, {cur}, options);
  EXPECT_EQ(report.regressions(), 2u);

  bool saw_accuracy = false;
  for (const auto& c : report.comparisons) {
    if (c.key == "top1_accuracy") {
      saw_accuracy = true;
      EXPECT_EQ(c.verdict, Verdict::Regression);
      EXPECT_NEAR(c.rel_delta, -0.2, 1e-9);
    }
  }
  EXPECT_TRUE(saw_accuracy);
}

TEST(CompareRecords, ImprovementIsNotARegression) {
  const auto base = make_record("fig2", 0.80, 10.0);
  const auto cur = make_record("fig2", 0.95, 5.0);
  const auto report = compare_records({base}, {cur}, {});
  EXPECT_EQ(report.regressions(), 0u);
  EXPECT_GE(report.improvements(), 2u);
}

TEST(CompareRecords, EnvMismatchFlagsButStillCompares) {
  const auto base = make_record("fig2", 0.95, 10.0, "hostA", "Release");
  const auto cur = make_record("fig2", 0.95, 10.0, "hostB", "Debug");
  const auto report = compare_records({base}, {cur}, {});
  EXPECT_TRUE(report.env_mismatch);
  EXPECT_GE(report.warnings.size(), 2u);  // hostname + build_type
  EXPECT_FALSE(report.comparisons.empty());
}

TEST(CompareRecords, UnmatchedBenchesBecomeWarningsNotErrors) {
  const auto base = make_record("old_bench", 0.95, 10.0);
  const auto cur = make_record("new_bench", 0.95, 10.0);
  const auto report = compare_records({base}, {cur}, {});
  EXPECT_TRUE(report.comparisons.empty());
  EXPECT_EQ(report.warnings.size(), 2u);
  EXPECT_EQ(report.regressions(), 0u);
}

TEST(CompareRecords, IncludeExcludeFilters) {
  const auto base = make_record("fig2", 0.95, 10.0);
  const auto cur = make_record("fig2", 0.50, 20.0);  // both degrade
  CompareOptions options;
  options.include = {"accuracy"};
  auto report = compare_records({base}, {cur}, options);
  ASSERT_EQ(report.comparisons.size(), 1u);
  EXPECT_EQ(report.comparisons[0].key, "top1_accuracy");

  options = {};
  options.exclude = {"wall", "per_sec"};
  report = compare_records({base}, {cur}, options);
  ASSERT_EQ(report.comparisons.size(), 1u);
  EXPECT_EQ(report.comparisons[0].key, "top1_accuracy");
}

// Stage/SLO keys are informational: hidden by default, shown but never
// gating under show_stages, and exempt from missing-metric warnings.
BenchRecord make_staged_record(double accuracy, double classify_ms) {
  const std::string text =
      "{\"bench\":\"table3\",\"wall_seconds\":10.0,\"unix_time\":1700000000,"
      "\"env\":{\"git_sha\":\"abc123\",\"hostname\":\"hostA\","
      "\"build_type\":\"Release\"},"
      "\"numbers\":{\"top1_accuracy\":" + std::to_string(accuracy) +
      ",\"stage_classify_total_ms\":" + std::to_string(classify_ms) +
      ",\"slo_acquire_virtual_latency_compliance\":0.99},\"text\":{}}";
  return parse_bench_record(util::Json::parse(text));
}

TEST(CompareRecords, StageAndSloKeysAreHiddenByDefault) {
  const auto base = make_staged_record(0.95, 100.0);
  const auto cur = make_staged_record(0.95, 900.0);  // 9x "regression"
  const auto report = compare_records({base}, {cur}, {});
  EXPECT_EQ(report.regressions(), 0u);
  for (const auto& c : report.comparisons) {
    EXPECT_EQ(c.key.find("stage_"), std::string::npos) << c.key;
    EXPECT_EQ(c.key.find("slo_"), std::string::npos) << c.key;
  }
}

TEST(CompareRecords, ShowStagesSurfacesButNeverGates) {
  const auto base = make_staged_record(0.95, 100.0);
  const auto cur = make_staged_record(0.95, 900.0);
  CompareOptions options;
  options.show_stages = true;
  const auto report = compare_records({base}, {cur}, options);
  EXPECT_EQ(report.regressions(), 0u);
  EXPECT_EQ(report.improvements(), 0u);
  bool saw_stage = false;
  bool saw_slo = false;
  for (const auto& c : report.comparisons) {
    if (c.key == "stage_classify_total_ms") {
      saw_stage = true;
      EXPECT_TRUE(c.informational);
    }
    if (c.key == "slo_acquire_virtual_latency_compliance") saw_slo = true;
  }
  EXPECT_TRUE(saw_stage);
  EXPECT_TRUE(saw_slo);
  // The table renders them in their own never-gating section.
  EXPECT_NE(report.to_table().find("informational"), std::string::npos);
}

// Drift/quality keys follow the same informational policy as stage_/slo_,
// behind their own --quality flag.
BenchRecord make_quality_record(double accuracy, double psi) {
  const std::string text =
      "{\"bench\":\"abl_quality\",\"wall_seconds\":1.0,"
      "\"unix_time\":1700000000,"
      "\"env\":{\"git_sha\":\"abc123\",\"hostname\":\"hostA\","
      "\"build_type\":\"Release\"},"
      "\"numbers\":{\"top1_accuracy\":" + std::to_string(accuracy) +
      ",\"drift_shift_psi_mean\":" + std::to_string(psi) +
      ",\"quality_gap_fraction_max\":0.02},\"text\":{}}";
  return parse_bench_record(util::Json::parse(text));
}

TEST(CompareRecords, DriftAndQualityKeysAreHiddenByDefault) {
  const auto base = make_quality_record(0.95, 0.10);
  const auto cur = make_quality_record(0.95, 1.50);  // 15x "regression"
  const auto report = compare_records({base}, {cur}, {});
  EXPECT_EQ(report.regressions(), 0u);
  for (const auto& c : report.comparisons) {
    EXPECT_EQ(c.key.find("drift_"), std::string::npos) << c.key;
    EXPECT_EQ(c.key.find("quality_"), std::string::npos) << c.key;
  }
}

TEST(CompareRecords, ShowQualitySurfacesButNeverGates) {
  const auto base = make_quality_record(0.95, 0.10);
  const auto cur = make_quality_record(0.95, 1.50);
  CompareOptions options;
  options.show_quality = true;
  const auto report = compare_records({base}, {cur}, options);
  EXPECT_EQ(report.regressions(), 0u);
  EXPECT_EQ(report.improvements(), 0u);
  bool saw_drift = false;
  bool saw_quality = false;
  for (const auto& c : report.comparisons) {
    if (c.key == "drift_shift_psi_mean") {
      saw_drift = true;
      EXPECT_TRUE(c.informational);
    }
    if (c.key == "quality_gap_fraction_max") saw_quality = true;
  }
  EXPECT_TRUE(saw_drift);
  EXPECT_TRUE(saw_quality);
}

TEST(CompareRecords, QualityFlagDoesNotSurfaceStageKeys) {
  // The two informational families toggle independently.
  const auto base = make_staged_record(0.95, 100.0);
  const auto cur = make_staged_record(0.95, 900.0);
  CompareOptions options;
  options.show_quality = true;
  const auto report = compare_records({base}, {cur}, options);
  for (const auto& c : report.comparisons) {
    EXPECT_EQ(c.key.find("stage_"), std::string::npos) << c.key;
    EXPECT_EQ(c.key.find("slo_"), std::string::npos) << c.key;
  }
}

TEST(CompareRecords, MissingQualityKeysDrawNoWarnings) {
  const auto base = make_quality_record(0.95, 0.10);
  const auto cur = make_record("abl_quality", 0.95, 1.0);  // quality off
  const auto report = compare_records({base}, {cur}, {});
  for (const auto& warning : report.warnings) {
    EXPECT_EQ(warning.find("drift_"), std::string::npos) << warning;
    EXPECT_EQ(warning.find("quality_"), std::string::npos) << warning;
  }
}

TEST(CompareRecords, ObsOffRunsMissingStageKeysDrawNoWarnings) {
  const auto base = make_staged_record(0.95, 100.0);
  const auto cur = make_record("table3", 0.95, 10.0);  // no stage_/slo_ keys
  const auto report = compare_records({base}, {cur}, {});
  for (const auto& warning : report.warnings) {
    EXPECT_EQ(warning.find("stage_"), std::string::npos) << warning;
    EXPECT_EQ(warning.find("slo_"), std::string::npos) << warning;
  }
}

// Noise-aware path: identical sample distributions must neutralize an
// apparently-large mean delta; clearly shifted distributions must not.
TEST(CompareRecords, MannWhitneyGatesNoisyMetrics) {
  const std::string base_text =
      "{\"bench\":\"noisy\",\"numbers\":{\"wall_ms\":100.0},"
      "\"samples\":{\"wall_ms\":[90,110,95,105,100,98,102,97,103,99]}}";
  // Mean says +30% (beyond threshold) but the samples overlap heavily.
  const std::string same_text =
      "{\"bench\":\"noisy\",\"numbers\":{\"wall_ms\":130.0},"
      "\"samples\":{\"wall_ms\":[91,109,96,104,101,99,103,96,102,98]}}";
  const std::string worse_text =
      "{\"bench\":\"noisy\",\"numbers\":{\"wall_ms\":130.0},"
      "\"samples\":{\"wall_ms\":[128,132,129,131,130,127,133,128,131,130]}}";

  const auto base = parse_bench_record(util::Json::parse(base_text));
  const auto same = parse_bench_record(util::Json::parse(same_text));
  const auto worse = parse_bench_record(util::Json::parse(worse_text));

  CompareOptions options;
  options.threshold = 0.10;
  options.alpha = 0.01;

  auto report = compare_records({base}, {same}, options);
  ASSERT_EQ(report.comparisons.size(), 1u);
  EXPECT_TRUE(report.comparisons[0].used_mann_whitney);
  EXPECT_EQ(report.comparisons[0].verdict, Verdict::Unchanged)
      << "p=" << report.comparisons[0].p_value;

  report = compare_records({base}, {worse}, options);
  ASSERT_EQ(report.comparisons.size(), 1u);
  EXPECT_TRUE(report.comparisons[0].used_mann_whitney);
  EXPECT_EQ(report.comparisons[0].verdict, Verdict::Regression)
      << "p=" << report.comparisons[0].p_value;
  EXPECT_LT(report.comparisons[0].p_value, 0.01);
}

TEST(CompareRecords, ZeroBaselineDoesNotDivide) {
  const std::string base_text =
      "{\"bench\":\"z\",\"numbers\":{\"errors\":0.0}}";
  const std::string cur_text =
      "{\"bench\":\"z\",\"numbers\":{\"errors\":5.0}}";
  const auto report = compare_records(
      {parse_bench_record(util::Json::parse(base_text))},
      {parse_bench_record(util::Json::parse(cur_text))}, {});
  ASSERT_EQ(report.comparisons.size(), 1u);
  EXPECT_EQ(report.comparisons[0].verdict, Verdict::Regression);
}

TEST(CompareReport, JsonAndTableRoundTrip) {
  const auto base = make_record("fig2", 0.95, 10.0);
  const auto cur = make_record("fig2", 0.50, 10.0);
  const auto report = compare_records({base}, {cur}, {});
  const util::Json doc = report.to_json();
  EXPECT_EQ(doc.find("regressions")->as_integer(), 1);
  // Serialized report parses back.
  const util::Json reparsed = util::Json::parse(doc.dump(2));
  EXPECT_EQ(reparsed.find("comparisons")->size(), doc.find("comparisons")->size());

  const std::string table = report.to_table();
  EXPECT_NE(table.find("top1_accuracy"), std::string::npos);
  EXPECT_NE(table.find("regression"), std::string::npos);
}

TEST(LoadRecords, TrajectoryDirectoryRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(testing::TempDir()) / "amperebleed_traj_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    std::ofstream a(dir / "BENCH_fig2.json");
    a << "{\"bench\":\"fig2\",\"wall_seconds\":1.5,"
         "\"numbers\":{\"snr_db\":20.0}}\n";
    std::ofstream b(dir / "BENCH_abla.json");
    b << "{\"bench\":\"abla\",\"wall_seconds\":0.5,\"numbers\":{}}\n";
    std::ofstream noise(dir / "notes.txt");
    noise << "not a record\n";
  }
  const auto records = load_trajectory_dir(dir.string());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].bench, "abla");  // sorted by bench name
  EXPECT_EQ(records[1].bench, "fig2");
  EXPECT_DOUBLE_EQ(records[1].numbers.at("snr_db"), 20.0);
  EXPECT_DOUBLE_EQ(records[1].numbers.at("wall_seconds"), 1.5);

  // load_records dispatches file vs directory.
  EXPECT_EQ(load_records(dir.string()).size(), 2u);
  EXPECT_EQ(load_records((dir / "BENCH_fig2.json").string()).size(), 1u);

  EXPECT_THROW(load_trajectory_dir((dir / "missing").string()),
               std::runtime_error);
  fs::remove_all(dir);
}

TEST(ParseBenchRecord, RejectsNamelessRecords) {
  EXPECT_THROW(parse_bench_record(util::Json::parse("{\"numbers\":{}}")),
               std::runtime_error);
  EXPECT_THROW(parse_bench_record(util::Json::parse("[1,2]")),
               std::runtime_error);
}

}  // namespace
}  // namespace amperebleed::obs
