#include "amperebleed/obs/context.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "amperebleed/obs/obs.hpp"
#include "amperebleed/util/parallel.hpp"
#include "amperebleed/util/thread_pool.hpp"

namespace amperebleed::obs {
namespace {

/// All completed wall spans, indexed by span id.
std::map<std::uint64_t, TraceEvent> wall_spans_by_id() {
  std::map<std::uint64_t, TraceEvent> out;
  for (const auto& e : tracer().events_snapshot()) {
    if (e.phase == 'X' && e.clock == SpanClock::Wall && e.span_id != 0) {
      out[e.span_id] = e;
    }
  }
  return out;
}

/// Canonical tree shape: the sorted multiset of root-to-leaf name paths.
/// Ids are scheduling-dependent; the shape must not be.
std::vector<std::string> canonical_shape(
    const std::map<std::uint64_t, TraceEvent>& spans) {
  std::vector<std::string> paths;
  for (const auto& [id, e] : spans) {
    (void)id;
    std::vector<std::string> chain;
    const TraceEvent* cursor = &e;
    while (cursor != nullptr && chain.size() < 128) {
      chain.push_back(cursor->name);
      const auto parent = spans.find(cursor->parent_id);
      cursor = parent == spans.end() ? nullptr : &parent->second;
    }
    std::string path;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (!path.empty()) path += ';';
      path += *it;
    }
    paths.push_back(std::move(path));
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

double numeric_arg(const TraceEvent& e, const std::string& key,
                   double fallback = -1.0) {
  for (const auto& [k, v] : e.args) {
    if (k == key) return v;
  }
  return fallback;
}

TEST(SpanContext, IdsAreUniqueAndNonZero) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = next_span_id();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second);
  }
}

TEST(SpanContext, TaskScopeInstallsAndRestores) {
  const SpanContext before = current_context();
  SpanContext parent;
  parent.trace_id = new_trace_id();
  parent.span_id = next_span_id();
  {
    TaskScope scope(parent, 42, 7);
    EXPECT_EQ(current_context().span_id, parent.span_id);
    EXPECT_TRUE(current_task_slot().active);
    EXPECT_EQ(current_task_slot().region_id, 42u);
    EXPECT_EQ(current_task_slot().task_index, 7u);
  }
  EXPECT_EQ(current_context().span_id, before.span_id);
  EXPECT_FALSE(current_task_slot().active);
}

TEST(SpanContext, NestedSpansFormAChain) {
  init();
  reset_data();
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    auto outer = span("outer", "test");
    outer_id = outer.context().span_id;
    {
      auto inner = span("inner", "test");
      inner_id = inner.context().span_id;
      EXPECT_EQ(inner.context().parent_id, outer_id);
      EXPECT_EQ(inner.context().trace_id, outer.context().trace_id);
    }
  }
  const auto spans = wall_spans_by_id();
  ASSERT_EQ(spans.count(outer_id), 1u);
  ASSERT_EQ(spans.count(inner_id), 1u);
  EXPECT_EQ(spans.at(inner_id).parent_id, outer_id);
  EXPECT_EQ(spans.at(outer_id).parent_id, 0u);
  shutdown();
}

TEST(SpanContext, ParallelForTasksParentToSubmittingSpan) {
  init();
  for (const std::size_t pool_size : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
    SCOPED_TRACE("pool_size=" + std::to_string(pool_size));
    util::ThreadPool::set_global_threads(pool_size);
    reset_data();

    std::uint64_t parent_id = 0;
    {
      auto parent = span("region_parent", "test");
      parent_id = parent.context().span_id;
      util::parallel_for(4, [&](std::size_t i) {
        auto task = span("task", "test");
        task.set_arg("i", static_cast<double>(i));
      });
    }

    const auto spans = wall_spans_by_id();
    std::size_t tasks = 0;
    std::set<double> region_ids;
    std::set<double> task_indices;
    for (const auto& [id, e] : spans) {
      (void)id;
      if (e.name != "task") continue;
      ++tasks;
      // Every task span parents to the span live at parallel_for, no
      // matter which worker thread ran it.
      EXPECT_EQ(e.parent_id, parent_id);
      region_ids.insert(numeric_arg(e, "region_id"));
      task_indices.insert(numeric_arg(e, "task_index"));
    }
    EXPECT_EQ(tasks, 4u);
    // One region; each task knows its index within it.
    EXPECT_EQ(region_ids.size(), 1u);
    EXPECT_EQ(task_indices,
              (std::set<double>{0.0, 1.0, 2.0, 3.0}));
  }
  util::ThreadPool::set_global_threads(1);
  shutdown();
}

TEST(SpanContext, TreeShapeIdenticalAcrossPoolSizes) {
  init();
  std::vector<std::vector<std::string>> shapes;
  for (const std::size_t pool_size : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
    util::ThreadPool::set_global_threads(pool_size);
    reset_data();
    {
      auto root = span("root", "test");
      util::parallel_for(3, [&](std::size_t i) {
        auto task = span("task", "test");
        // A child created inside the task body nests under the task span.
        auto leaf = span("leaf", "test");
        static_cast<void>(i);
      });
    }
    shapes.push_back(canonical_shape(wall_spans_by_id()));
  }
  ASSERT_EQ(shapes.size(), 3u);
  EXPECT_EQ(shapes[0], shapes[1]);
  EXPECT_EQ(shapes[0], shapes[2]);
  // 1 root + 3 tasks + 3 leaves.
  EXPECT_EQ(shapes[0].size(), 7u);
  EXPECT_EQ(std::count(shapes[0].begin(), shapes[0].end(),
                       std::string("root;task;leaf")),
            3);
  util::ThreadPool::set_global_threads(1);
  shutdown();
}

TEST(SpanContext, PooledRegionsEmitFlowEvents) {
  init();
  util::ThreadPool::set_global_threads(4);
  reset_data();
  util::parallel_for(64, [](std::size_t) {});
  std::size_t starts = 0;
  std::size_t finishes = 0;
  std::set<std::uint64_t> flow_ids;
  for (const auto& e : tracer().events_snapshot()) {
    if (e.phase == 's') {
      ++starts;
      flow_ids.insert(e.flow_id);
    }
    if (e.phase == 'f') {
      ++finishes;
      flow_ids.insert(e.flow_id);
    }
  }
  // One 's' on the submitting thread; an 'f' per worker that claimed work
  // (scheduling-dependent count, but at least zero and bound to the same
  // region id as the start).
  EXPECT_EQ(starts, 1u);
  EXPECT_EQ(flow_ids.size(), 1u);
  EXPECT_LE(finishes, 3u);
  util::ThreadPool::set_global_threads(1);
  shutdown();
}

TEST(SpanContext, InstantEventsParentToCurrentSpan) {
  init();
  reset_data();
  std::uint64_t parent_id = 0;
  {
    auto parent = span("acquire", "test");
    parent_id = parent.context().span_id;
    instant("fault.transient", "faults");
  }
  const auto spans = wall_spans_by_id();
  bool found = false;
  for (const auto& [id, e] : spans) {
    (void)id;
    if (e.name != "fault.transient") continue;
    found = true;
    EXPECT_EQ(e.parent_id, parent_id);
    EXPECT_EQ(e.category, "faults");
  }
  EXPECT_TRUE(found);
  shutdown();
}

TEST(SpanContext, TracingOffMeansNoContextInstalls) {
  shutdown();
  {
    auto s = span("never", "test");
    EXPECT_FALSE(current_context().valid());
  }
  util::parallel_for(4, [](std::size_t) {
    EXPECT_FALSE(current_task_slot().active);
  });
  EXPECT_EQ(tracer().size(), 0u);
}

}  // namespace
}  // namespace amperebleed::obs
