#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "amperebleed/obs/metrics.hpp"
#include "amperebleed/util/json.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::obs {
namespace {

// Edge-case coverage for the P-square streaming quantile estimator that
// backs histogram quantiles (and, via the exporter, the Prometheus
// `_quantiles` summaries).

TEST(P2QuantileEdge, ConstructorRejectsOutOfRangeQ) {
  EXPECT_THROW(P2Quantile(-0.01), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.01), std::invalid_argument);
  EXPECT_NO_THROW(P2Quantile(0.0));
  EXPECT_NO_THROW(P2Quantile(1.0));
}

TEST(P2QuantileEdge, QZeroTracksMinimumQOneTracksMaximum) {
  P2Quantile q0(0.0);
  P2Quantile q1(1.0);
  util::Rng rng(42);
  double lo = 1e300;
  double hi = -1e300;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform(-50.0, 50.0);
    q0.observe(v);
    q1.observe(v);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // q=0 clamps the middle marker toward the running minimum; q=1 toward the
  // running maximum. The estimate must stay inside the observed range and
  // hug the matching extreme.
  EXPECT_GE(q0.estimate(), lo);
  EXPECT_LE(q0.estimate(), hi);
  EXPECT_NEAR(q0.estimate(), lo, (hi - lo) * 0.05);
  EXPECT_GE(q1.estimate(), lo);
  EXPECT_LE(q1.estimate(), hi);
  EXPECT_NEAR(q1.estimate(), hi, (hi - lo) * 0.05);
}

TEST(P2QuantileEdge, FewerThanFiveObservationsIsExact) {
  P2Quantile median(0.5);
  EXPECT_DOUBLE_EQ(median.estimate(), 0.0);  // empty -> 0 by contract

  median.observe(7.0);
  EXPECT_DOUBLE_EQ(median.estimate(), 7.0);

  median.observe(1.0);
  // Two samples: linear interpolation at rank 0.5 -> midpoint.
  EXPECT_DOUBLE_EQ(median.estimate(), 4.0);

  median.observe(100.0);
  EXPECT_DOUBLE_EQ(median.estimate(), 7.0);  // exact middle of {1,7,100}

  median.observe(-3.0);
  // {-3,1,7,100}: rank 1.5 -> (1+7)/2.
  EXPECT_DOUBLE_EQ(median.estimate(), 4.0);
  EXPECT_EQ(median.count(), 4u);

  // q=0 / q=1 on the small-sample path hit the sorted endpoints exactly.
  P2Quantile qmin(0.0);
  P2Quantile qmax(1.0);
  for (double v : {5.0, -2.0, 9.0}) {
    qmin.observe(v);
    qmax.observe(v);
  }
  EXPECT_DOUBLE_EQ(qmin.estimate(), -2.0);
  EXPECT_DOUBLE_EQ(qmax.estimate(), 9.0);
}

TEST(P2QuantileEdge, DuplicateValuesDoNotBreakInterpolation) {
  // All-equal stream: every marker collapses to the same height and the
  // parabolic update must not divide itself into NaN.
  P2Quantile median(0.5);
  for (int i = 0; i < 1000; ++i) median.observe(3.5);
  EXPECT_DOUBLE_EQ(median.estimate(), 3.5);
  for (double h : median.marker_heights()) EXPECT_DOUBLE_EQ(h, 3.5);

  // Two-valued stream 0/1 with p(1)=0.7: the median estimate must settle
  // inside [0, 1] (the true median is 1).
  P2Quantile bimodal(0.5);
  util::Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    bimodal.observe(rng.bernoulli(0.7) ? 1.0 : 0.0);
  }
  EXPECT_GE(bimodal.estimate(), 0.0);
  EXPECT_LE(bimodal.estimate(), 1.0);
  EXPECT_GT(bimodal.estimate(), 0.5);
}

TEST(P2QuantileEdge, MarkerInvariantHoldsUnderRandomInserts) {
  // The five P-square markers must remain sorted (non-decreasing heights)
  // after every one of 10k random inserts, across several distributions.
  struct Case {
    double q;
    int mode;  // 0 uniform, 1 gaussian, 2 heavy duplicates
  };
  const Case cases[] = {{0.5, 0}, {0.9, 1}, {0.99, 2}, {0.1, 1}};
  for (const auto& c : cases) {
    P2Quantile est(c.q);
    util::Rng rng(static_cast<std::uint64_t>(c.mode) * 1000 + 17);
    double lo = 1e300;
    double hi = -1e300;
    for (int i = 0; i < 10000; ++i) {
      double v = 0.0;
      switch (c.mode) {
        case 0: v = rng.uniform(-1.0, 1.0); break;
        case 1: v = rng.gaussian(10.0, 3.0); break;
        default:
          v = static_cast<double>(rng.uniform_below(8));  // lots of ties
          break;
      }
      est.observe(v);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      if (est.count() < 5) continue;
      const std::array<double, 5> h = est.marker_heights();
      for (int m = 1; m < 5; ++m) {
        ASSERT_LE(h[static_cast<std::size_t>(m - 1)],
                  h[static_cast<std::size_t>(m)])
            << "marker order violated at insert " << i << " q=" << c.q
            << " mode=" << c.mode;
      }
      ASSERT_DOUBLE_EQ(h[0], lo);
      ASSERT_DOUBLE_EQ(h[4], hi);
      ASSERT_GE(est.estimate(), lo);
      ASSERT_LE(est.estimate(), hi);
    }
  }
}

TEST(P2QuantileEdge, TracksTrueQuantileOfGaussianStream) {
  P2Quantile p90(0.9);
  util::Rng rng(99);
  std::vector<double> all;
  all.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.gaussian(0.0, 1.0);
    p90.observe(v);
    all.push_back(v);
  }
  std::sort(all.begin(), all.end());
  const double exact = all[static_cast<std::size_t>(0.9 * all.size())];
  EXPECT_NEAR(p90.estimate(), exact, 0.1);
}

// Histogram snapshot -> JSON text -> parse-back: the quantile estimates,
// bucket layout and counts all survive the round trip through util::Json.
TEST(HistogramJson, SnapshotParsesBackWithQuantiles) {
  MetricsRegistry registry;
  HistogramConfig config;
  config.bucket_bounds = {10.0, 100.0, 1000.0};
  config.quantiles = {0.5, 0.99};
  auto& histogram = registry.histogram("rt.latency_us", config);
  util::Rng rng(3);
  for (int i = 0; i < 2000; ++i) histogram.observe(rng.uniform(0.0, 500.0));

  const std::string text = registry.to_json().dump(2);
  const util::Json parsed = util::Json::parse(text);
  const util::Json* entry =
      parsed.find("histograms")->find("rt.latency_us");
  ASSERT_NE(entry, nullptr);
  // JSON serialization keeps ~12 significant digits; compare with a
  // matching relative tolerance.
  const auto near_rel = [](double got, double want) {
    EXPECT_NEAR(got, want, 1e-9 * std::max(1.0, std::fabs(want)));
  };
  EXPECT_EQ(entry->find("count")->as_integer(), 2000);
  near_rel(entry->find("mean")->as_number(), histogram.mean());
  near_rel(entry->find("min")->as_number(), histogram.min());
  near_rel(entry->find("max")->as_number(), histogram.max());
  near_rel(entry->find("p50")->as_number(), histogram.quantile(0.5));
  near_rel(entry->find("p99")->as_number(), histogram.quantile(0.99));

  // Buckets: 3 bounded + the +inf overflow bucket; totals must conserve.
  const util::Json* buckets = entry->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->size(), 4u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < buckets->size(); ++i) {
    total += static_cast<std::uint64_t>(buckets->at(i).find("count")->as_integer());
  }
  EXPECT_EQ(total, 2000u);
  EXPECT_DOUBLE_EQ(buckets->at(0).find("le")->as_number(), 10.0);
}

}  // namespace
}  // namespace amperebleed::obs
