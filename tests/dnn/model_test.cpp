#include "amperebleed/dnn/model.hpp"

#include <gtest/gtest.h>

namespace amperebleed::dnn {
namespace {

TEST(ModelBuilder, ShapeCursorChains) {
  ModelBuilder b("toy", Family::Vgg, {32, 32, 3});
  b.conv(16, 3, 1);
  EXPECT_EQ(b.shape().channels, 16);
  b.pool(2, 2);
  EXPECT_EQ(b.shape().height, 16);
  b.fc(10);
  EXPECT_EQ(b.shape().channels, 10);
  const Model m = std::move(b).build();
  EXPECT_EQ(m.layer_count(), 3u);
  EXPECT_EQ(m.name, "toy");
  EXPECT_EQ(m.family, Family::Vgg);
}

TEST(ModelBuilder, SeparableIsDepthwisePlusPointwise) {
  ModelBuilder b("sep", Family::MobileNet, {56, 56, 32});
  b.separable(64, 3, 2);
  const Model m = std::move(b).build();
  ASSERT_EQ(m.layer_count(), 2u);
  EXPECT_EQ(m.layers[0].kind, LayerKind::DepthwiseConv);
  EXPECT_EQ(m.layers[1].kind, LayerKind::Conv);
  EXPECT_EQ(m.layers[1].kernel, 1);
  EXPECT_EQ(m.layers[1].output.channels, 64);
}

TEST(ModelBuilder, InvertedResidualAddsSkipOnlyWhenShapesMatch) {
  ModelBuilder with_skip("a", Family::MobileNet, {28, 28, 32});
  with_skip.inverted_residual(32, 6, 1);
  const Model m1 = std::move(with_skip).build();
  EXPECT_EQ(m1.layers.back().kind, LayerKind::EltwiseAdd);

  ModelBuilder no_skip("b", Family::MobileNet, {28, 28, 32});
  no_skip.inverted_residual(64, 6, 2);  // stride + channel change
  const Model m2 = std::move(no_skip).build();
  EXPECT_NE(m2.layers.back().kind, LayerKind::EltwiseAdd);
}

TEST(ModelBuilder, BottleneckExpandsFourX) {
  ModelBuilder b("r", Family::ResNet, {56, 56, 256});
  b.bottleneck(64, 1);
  const Model m = std::move(b).build();
  EXPECT_EQ(m.layers.back().output.channels, 256);
  EXPECT_EQ(m.layers.back().kind, LayerKind::EltwiseAdd);
}

TEST(ModelBuilder, FireModuleConcatenatesExpands) {
  ModelBuilder b("f", Family::SqueezeNet, {55, 55, 96});
  b.fire(16, 64);
  EXPECT_EQ(b.shape().channels, 128);  // 64 (1x1) + 64 (3x3)
}

TEST(ModelBuilder, InceptionMixedSumsBranchChannels) {
  ModelBuilder b("i", Family::Inception, {28, 28, 192});
  b.inception_mixed(64, 96, 128, 16, 32, 32);
  EXPECT_EQ(b.shape().channels, 64 + 128 + 32 + 32);
  EXPECT_EQ(b.shape().height, 28);
}

TEST(ModelBuilder, DenseLayerGrowsByGrowthRate) {
  ModelBuilder b("d", Family::DenseNet, {56, 56, 64});
  b.dense_layer(32);
  EXPECT_EQ(b.shape().channels, 96);
  b.dense_layer(32);
  EXPECT_EQ(b.shape().channels, 128);
}

TEST(ModelBuilder, SeBlockPreservesSpatialShape) {
  ModelBuilder b("se", Family::ResNet, {28, 28, 256});
  b.se_block();
  EXPECT_EQ(b.shape().height, 28);
  EXPECT_EQ(b.shape().width, 28);
  EXPECT_EQ(b.shape().channels, 256);
}

TEST(Model, TotalsAreLayerSums) {
  ModelBuilder b("sum", Family::Vgg, {8, 8, 4});
  b.conv(8, 3, 1).fc(10);
  const Model m = std::move(b).build();
  std::uint64_t macs = 0;
  std::uint64_t weights = 0;
  std::uint64_t bytes = 0;
  for (const auto& l : m.layers) {
    macs += l.macs();
    weights += l.weight_bytes();
    bytes += l.dram_bytes();
  }
  EXPECT_EQ(m.total_macs(), macs);
  EXPECT_EQ(m.total_weight_bytes(), weights);
  EXPECT_EQ(m.total_dram_bytes(), bytes);
}

TEST(FamilyName, AllSevenFamilies) {
  EXPECT_EQ(family_name(Family::MobileNet), "MobileNet");
  EXPECT_EQ(family_name(Family::SqueezeNet), "SqueezeNet");
  EXPECT_EQ(family_name(Family::EfficientNet), "EfficientNet");
  EXPECT_EQ(family_name(Family::Inception), "Inception");
  EXPECT_EQ(family_name(Family::ResNet), "ResNet");
  EXPECT_EQ(family_name(Family::Vgg), "VGG");
  EXPECT_EQ(family_name(Family::DenseNet), "DenseNet");
}

}  // namespace
}  // namespace amperebleed::dnn
