#include "amperebleed/dnn/layer.hpp"

#include <gtest/gtest.h>

namespace amperebleed::dnn {
namespace {

TEST(TensorShape, Elements) {
  EXPECT_EQ((TensorShape{224, 224, 3}.elements()), 224u * 224u * 3u);
  EXPECT_EQ((TensorShape{1, 1, 1000}.elements()), 1000u);
}

TEST(Conv, ShapeAndMacs) {
  const Layer l = make_conv("c", {224, 224, 3}, 64, 7, 2);
  EXPECT_EQ(l.output.height, 112);
  EXPECT_EQ(l.output.width, 112);
  EXPECT_EQ(l.output.channels, 64);
  // MACs = outH*outW*outC*k*k*inC
  EXPECT_EQ(l.macs(), 112ull * 112 * 64 * 7 * 7 * 3);
  EXPECT_EQ(l.weight_bytes(), 7ull * 7 * 3 * 64);
}

TEST(Conv, SamePaddingCeilDivision) {
  const Layer l = make_conv("c", {7, 7, 8}, 16, 3, 2);
  EXPECT_EQ(l.output.height, 4);  // ceil(7/2)
  EXPECT_EQ(l.output.width, 4);
}

TEST(DepthwiseConv, MacsIndependentOfInputChannels) {
  const Layer l = make_depthwise("dw", {56, 56, 128}, 3, 1);
  EXPECT_EQ(l.output.channels, 128);
  EXPECT_EQ(l.macs(), 56ull * 56 * 128 * 9);
  EXPECT_EQ(l.weight_bytes(), 9ull * 128);
}

TEST(FullyConnected, MacsEqualWeightCount) {
  const Layer l = make_fc("fc", {1, 1, 2048}, 1000);
  EXPECT_EQ(l.macs(), 2048ull * 1000);
  EXPECT_EQ(l.weight_bytes(), 2048ull * 1000);
  EXPECT_EQ(l.output.channels, 1000);
}

TEST(FullyConnected, FlattensSpatialInput) {
  const Layer l = make_fc("fc", {7, 7, 512}, 4096);
  EXPECT_EQ(l.macs(), 7ull * 7 * 512 * 4096);
}

TEST(Pool, OpsAndNoWeights) {
  const Layer l = make_pool("p", {112, 112, 64}, 3, 2);
  EXPECT_EQ(l.output.height, 56);
  EXPECT_EQ(l.weight_bytes(), 0u);
  EXPECT_GT(l.macs(), 0u);
}

TEST(GlobalPool, CollapsesSpatialDims) {
  const Layer l = make_global_pool("gp", {7, 7, 2048});
  EXPECT_EQ(l.output.height, 1);
  EXPECT_EQ(l.output.width, 1);
  EXPECT_EQ(l.output.channels, 2048);
  EXPECT_EQ(l.macs(), 7ull * 7 * 2048);
}

TEST(EltwiseAdd, ReadsTwoOperands) {
  const Layer l = make_eltwise_add("add", {56, 56, 256});
  const std::uint64_t plane = 56ull * 56 * 256;
  EXPECT_EQ(l.activation_bytes(), 3 * plane);
  EXPECT_EQ(l.weight_bytes(), 0u);
}

TEST(Concat, PureDataMovement) {
  const Layer l = make_concat("cat", {28, 28, 128}, 64);
  EXPECT_EQ(l.output.channels, 192);
  EXPECT_EQ(l.macs(), 0u);
  EXPECT_GT(l.dram_bytes(), 0u);
}

TEST(ArithmeticIntensity, ConvBeatsFc) {
  const Layer conv = make_conv("c", {56, 56, 128}, 128, 3, 1);
  const Layer fc = make_fc("f", {1, 1, 4096}, 4096);
  EXPECT_GT(conv.arithmetic_intensity(), fc.arithmetic_intensity());
}

TEST(LayerFactories, Validation) {
  EXPECT_THROW(make_conv("c", {8, 8, 8}, 0, 3, 1), std::invalid_argument);
  EXPECT_THROW(make_conv("c", {8, 8, 8}, 8, 3, 0), std::invalid_argument);
  EXPECT_THROW(make_fc("f", {1, 1, 8}, 0), std::invalid_argument);
  EXPECT_THROW(make_concat("x", {8, 8, 8}, 0), std::invalid_argument);
}

TEST(LayerKindNames, AllDistinct) {
  EXPECT_EQ(layer_kind_name(LayerKind::Conv), "conv");
  EXPECT_EQ(layer_kind_name(LayerKind::DepthwiseConv), "dwconv");
  EXPECT_EQ(layer_kind_name(LayerKind::FullyConnected), "fc");
  EXPECT_EQ(layer_kind_name(LayerKind::Concat), "concat");
}

}  // namespace
}  // namespace amperebleed::dnn
