#include "amperebleed/dnn/zoo.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace amperebleed::dnn {
namespace {

TEST(Zoo, ThirtyNineModelsOverSevenFamilies) {
  const auto zoo = build_zoo();
  EXPECT_EQ(zoo.size(), 39u);
  std::set<Family> families;
  for (const auto& m : zoo) families.insert(m.family);
  EXPECT_EQ(families.size(), 7u);
}

TEST(Zoo, NamesAreUnique) {
  const auto names = zoo_model_names();
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST(Zoo, EveryModelEndsInClassifierSizedOutput) {
  for (const auto& m : build_zoo()) {
    ASSERT_FALSE(m.layers.empty()) << m.name;
    const auto& out = m.layers.back().output;
    EXPECT_EQ(out.elements(), 1000u) << m.name << " must emit 1000 logits";
  }
}

TEST(Zoo, EveryModelHasSubstantialCompute) {
  for (const auto& m : build_zoo()) {
    EXPECT_GT(m.total_macs(), 20'000'000ull) << m.name;
    EXPECT_LT(m.total_macs(), 100'000'000'000ull) << m.name;
    EXPECT_GT(m.layer_count(), 5u) << m.name;
  }
}

TEST(Zoo, ComputeSignaturesAreDistinct) {
  // Fingerprinting requires distinguishable workloads: no two models should
  // share both total MACs and total DRAM traffic.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::string> seen;
  for (const auto& m : build_zoo()) {
    const auto key = std::make_pair(m.total_macs(), m.total_dram_bytes());
    const auto [it, inserted] = seen.emplace(key, m.name);
    EXPECT_TRUE(inserted) << m.name << " collides with " << it->second;
  }
}

TEST(Zoo, FamilyRelationshipsHold) {
  // Known orderings inside families (depth/width scaling).
  const auto macs = [](const char* name) {
    return build_model(name).total_macs();
  };
  EXPECT_GT(macs("VGG-19"), macs("VGG-16"));
  EXPECT_GT(macs("VGG-16"), macs("VGG-11"));
  EXPECT_GT(macs("ResNet-152"), macs("ResNet-101"));
  EXPECT_GT(macs("ResNet-101"), macs("ResNet-50"));
  EXPECT_GT(macs("ResNet-50"), macs("ResNet-18"));
  EXPECT_GT(macs("MobileNet-V1"), macs("MobileNet-V1-0.5"));
  EXPECT_GT(macs("MobileNet-V1-0.5"), macs("MobileNet-V1-0.25"));
  EXPECT_GT(macs("EfficientNet-Lite4"), macs("EfficientNet-Lite"));
  EXPECT_GT(macs("DenseNet-201"), macs("DenseNet-121"));
}

TEST(Zoo, VggIsHeaviestFamilyByWeights) {
  // VGG's FC layers dominate parameter count — a well-known property that
  // Fig 3 annotates via model sizes.
  const auto vgg = build_model("VGG-19");
  const auto mobilenet = build_model("MobileNet-V1");
  EXPECT_GT(vgg.total_weight_bytes(), 10u * mobilenet.total_weight_bytes());
}

TEST(Zoo, BuildModelByNameMatchesZooEntry) {
  const auto zoo = build_zoo();
  const Model m = build_model("ResNet-50");
  for (const auto& entry : zoo) {
    if (entry.name == "ResNet-50") {
      EXPECT_EQ(entry.total_macs(), m.total_macs());
      EXPECT_EQ(entry.layer_count(), m.layer_count());
    }
  }
  EXPECT_THROW(build_model("NoSuchNet-9000"), std::invalid_argument);
}

TEST(Zoo, Fig3ModelsExistInZoo) {
  const auto names = zoo_model_names();
  const std::set<std::string> all(names.begin(), names.end());
  const auto fig3 = fig3_model_names();
  ASSERT_EQ(fig3.size(), 6u);
  for (const auto& n : fig3) {
    EXPECT_EQ(all.count(n), 1u) << n;
  }
}

class ZooModelProperty : public ::testing::TestWithParam<int> {};

TEST_P(ZooModelProperty, LayerShapesChainConsistently) {
  const auto zoo = build_zoo();
  const auto& m = zoo[static_cast<std::size_t>(GetParam())];
  // Every layer must have positive shapes/parameters, and no conv/pool may
  // produce a larger spatial extent than its input.
  for (const auto& l : m.layers) {
    EXPECT_GT(l.input.height, 0) << m.name << ":" << l.name;
    EXPECT_GT(l.input.channels, 0) << m.name << ":" << l.name;
    EXPECT_GT(l.output.height, 0) << m.name << ":" << l.name;
    EXPECT_GT(l.output.channels, 0) << m.name << ":" << l.name;
    EXPECT_GE(l.kernel, 1) << m.name << ":" << l.name;
    EXPECT_GE(l.stride, 1) << m.name << ":" << l.name;
    if (l.kind == LayerKind::Conv || l.kind == LayerKind::Pool ||
        l.kind == LayerKind::DepthwiseConv) {
      EXPECT_LE(l.output.height, l.input.height) << m.name << ":" << l.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooModelProperty,
                         ::testing::Range(0, 39));

}  // namespace
}  // namespace amperebleed::dnn
