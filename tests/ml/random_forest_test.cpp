#include "amperebleed/ml/random_forest.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "amperebleed/util/rng.hpp"

namespace amperebleed::ml {
namespace {

Dataset blobs(int classes, int per_class, double spread, std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset d(3);
  for (int c = 0; c < classes; ++c) {
    for (int i = 0; i < per_class; ++i) {
      const std::vector<double> row = {
          rng.gaussian(c * 4.0, spread),
          rng.gaussian(-c * 2.0, spread),
          rng.gaussian(c * 1.0, spread),
      };
      d.add(row, c);
    }
  }
  return d;
}

TEST(RandomForest, LearnsSeparableClasses) {
  const Dataset train = blobs(4, 50, 0.5, 1);
  const Dataset test = blobs(4, 20, 0.5, 2);
  ForestConfig config;
  config.n_trees = 30;
  RandomForest forest(config);
  forest.fit(train);
  int hits = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (forest.predict(test.row(i)) == test.label(i)) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / test.size(), 0.95);
}

TEST(RandomForest, ProbaSumsToOne) {
  const Dataset d = blobs(3, 30, 1.0, 3);
  ForestConfig config;
  config.n_trees = 10;
  RandomForest forest(config);
  forest.fit(d);
  const auto p = forest.predict_proba(d.row(0));
  ASSERT_EQ(p.size(), 3u);
  double total = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RandomForest, TopKOrderedByProbability) {
  const Dataset d = blobs(5, 40, 0.5, 4);
  ForestConfig config;
  config.n_trees = 20;
  RandomForest forest(config);
  forest.fit(d);
  const auto p = forest.predict_proba(d.row(0));
  const auto top3 = forest.predict_top_k(d.row(0), 3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_GE(p[static_cast<std::size_t>(top3[0])],
            p[static_cast<std::size_t>(top3[1])]);
  EXPECT_GE(p[static_cast<std::size_t>(top3[1])],
            p[static_cast<std::size_t>(top3[2])]);
  EXPECT_EQ(top3[0], forest.predict(d.row(0)));
}

/// The ranking rule top_k_from_proba replaced: a full stable_sort over
/// descending probability, where stability resolved ties toward the smaller
/// class id (the iota order). The partial_sort must reproduce its prefix
/// exactly on tie-heavy inputs.
std::vector<int> stable_sort_reference(std::span<const double> proba,
                                       std::size_t k) {
  std::vector<int> order(proba.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return proba[static_cast<std::size_t>(a)] >
           proba[static_cast<std::size_t>(b)];
  });
  order.resize(std::min(k, order.size()));
  return order;
}

TEST(TopKFromProba, TieHeavyInputsMatchStableSortPrefix) {
  // Hand-built pathological vectors: plateaus, all-equal, zeros.
  const std::vector<std::vector<double>> cases = {
      {0.2, 0.2, 0.2, 0.2, 0.2},
      {0.5, 0.1, 0.5, 0.1, 0.5, 0.1},
      {0.0, 0.0, 1.0, 0.0},
      {0.25, 0.25, 0.5},
      {1.0},
      {0.125, 0.125, 0.125, 0.125, 0.25, 0.25},
  };
  for (const auto& proba : cases) {
    for (std::size_t k = 1; k <= proba.size() + 2; ++k) {
      EXPECT_EQ(top_k_from_proba(proba, k), stable_sort_reference(proba, k))
          << "k=" << k;
    }
  }
}

TEST(TopKFromProba, RandomQuantizedProbasMatchStableSortPrefix) {
  // Quantized random vectors manufacture many exact duplicates, as leaf
  // distributions over a few trees do (multiples of 1/trees).
  util::Rng rng(0x70'9a);
  for (int rep = 0; rep < 200; ++rep) {
    const std::size_t n = 2 + rng.uniform_below(38);  // up to 39+ classes
    std::vector<double> proba(n);
    for (auto& v : proba) {
      v = static_cast<double>(rng.uniform_below(8)) / 8.0;
    }
    const std::size_t k = 1 + rng.uniform_below(n);
    ASSERT_EQ(top_k_from_proba(proba, k), stable_sort_reference(proba, k))
        << "rep=" << rep << " n=" << n << " k=" << k;
  }
}

TEST(TopKFromProba, TiesBrokenTowardSmallerClassId) {
  const std::vector<double> proba = {0.3, 0.4, 0.3, 0.4};
  const auto top = top_k_from_proba(proba, 4);
  const std::vector<int> expected = {1, 3, 0, 2};
  EXPECT_EQ(top, expected);
}

TEST(RandomForest, TopKClampsToClassCount) {
  const Dataset d = blobs(2, 20, 0.5, 5);
  ForestConfig config;
  config.n_trees = 5;
  RandomForest forest(config);
  forest.fit(d);
  EXPECT_EQ(forest.predict_top_k(d.row(0), 10).size(), 2u);
}

TEST(RandomForest, DeterministicForSeed) {
  const Dataset d = blobs(3, 30, 2.0, 6);
  ForestConfig config;
  config.n_trees = 15;
  config.seed = 99;
  RandomForest f1(config);
  RandomForest f2(config);
  f1.fit(d);
  f2.fit(d);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(f1.predict(d.row(i)), f2.predict(d.row(i)));
  }
}

TEST(RandomForest, SeedChangesTrees) {
  const Dataset d = blobs(3, 30, 3.0, 7);  // noisy: predictions can differ
  ForestConfig c1;
  c1.n_trees = 5;
  c1.seed = 1;
  ForestConfig c2 = c1;
  c2.seed = 2;
  RandomForest f1(c1);
  RandomForest f2(c2);
  f1.fit(d);
  f2.fit(d);
  int diff = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto p1 = f1.predict_proba(d.row(i));
    const auto p2 = f2.predict_proba(d.row(i));
    if (p1 != p2) ++diff;
  }
  EXPECT_GT(diff, 0);
}

TEST(RandomForest, Validation) {
  RandomForest forest;
  EXPECT_THROW(forest.fit(Dataset(2)), std::invalid_argument);
  const std::vector<double> x = {0.0, 0.0};
  EXPECT_THROW(static_cast<void>(forest.predict(x)), std::logic_error);
  ForestConfig zero;
  zero.n_trees = 0;
  RandomForest bad(zero);
  Dataset d(1);
  const std::vector<double> row = {1.0};
  d.add(row, 0);
  EXPECT_THROW(bad.fit(d), std::invalid_argument);
}

TEST(RandomForest, WithoutBootstrapUsesAllSamples) {
  const Dataset d = blobs(2, 25, 0.5, 8);
  ForestConfig config;
  config.n_trees = 5;
  config.bootstrap = false;
  RandomForest forest(config);
  forest.fit(d);
  int hits = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (forest.predict(d.row(i)) == d.label(i)) ++hits;
  }
  EXPECT_EQ(static_cast<std::size_t>(hits), d.size());
}

class ForestSizeProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ForestSizeProperty, AccuracyNondecreasingWithEnoughTrees) {
  // More trees should never be catastrophically worse on clean data.
  const Dataset train = blobs(4, 30, 0.8, 9);
  const Dataset test = blobs(4, 15, 0.8, 10);
  ForestConfig config;
  config.n_trees = GetParam();
  RandomForest forest(config);
  forest.fit(train);
  int hits = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (forest.predict(test.row(i)) == test.label(i)) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / test.size(), 0.85);
}

INSTANTIATE_TEST_SUITE_P(TreeCounts, ForestSizeProperty,
                         ::testing::Values(1u, 5u, 20u, 60u));

}  // namespace
}  // namespace amperebleed::ml
