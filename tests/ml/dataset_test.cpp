#include "amperebleed/ml/dataset.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

namespace amperebleed::ml {
namespace {

TEST(Dataset, AddAndAccess) {
  Dataset d(3);
  const std::vector<double> row0 = {1.0, 2.0, 3.0};
  const std::vector<double> row1 = {4.0, 5.0, 6.0};
  d.add(row0, 0);
  d.add(row1, 2);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.feature_count(), 3u);
  EXPECT_DOUBLE_EQ(d.row(1)[2], 6.0);
  EXPECT_EQ(d.label(1), 2);
  EXPECT_EQ(d.class_count(), 3);
}

TEST(Dataset, InfersWidthFromFirstRow) {
  Dataset d;
  const std::vector<double> row = {1.0, 2.0};
  d.add(row, 0);
  EXPECT_EQ(d.feature_count(), 2u);
  const std::vector<double> bad = {1.0};
  EXPECT_THROW(d.add(bad, 0), std::invalid_argument);
}

TEST(Dataset, RejectsNegativeLabels) {
  Dataset d(1);
  const std::vector<double> row = {1.0};
  EXPECT_THROW(d.add(row, -1), std::invalid_argument);
}

TEST(Dataset, RowOutOfRangeThrows) {
  Dataset d(1);
  EXPECT_THROW(static_cast<void>(d.row(0)), std::out_of_range);
}

TEST(Dataset, TruncatedFeaturesKeepsPrefix) {
  Dataset d(4);
  const std::vector<double> row = {1.0, 2.0, 3.0, 4.0};
  d.add(row, 1);
  const Dataset t = d.truncated_features(2);
  EXPECT_EQ(t.feature_count(), 2u);
  EXPECT_DOUBLE_EQ(t.row(0)[1], 2.0);
  EXPECT_EQ(t.label(0), 1);
  EXPECT_THROW(d.truncated_features(5), std::invalid_argument);
}

TEST(Dataset, SubsetSelectsRows) {
  Dataset d(1);
  for (int i = 0; i < 5; ++i) {
    const std::vector<double> row = {static_cast<double>(i)};
    d.add(row, i % 2);
  }
  const std::vector<std::size_t> idx = {4, 0, 2};
  const Dataset s = d.subset(idx);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.row(0)[0], 4.0);
  EXPECT_DOUBLE_EQ(s.row(1)[0], 0.0);
  EXPECT_EQ(s.label(2), 0);
}

TEST(Dataset, ClassCountOnEmpty) {
  Dataset d(1);
  EXPECT_EQ(d.class_count(), 0);
  EXPECT_TRUE(d.empty());
}

TEST(Dataset, ClassCountMemoTracksEveryAdd) {
  Dataset d(1);
  const std::vector<double> row = {0.0};
  d.add(row, 4);
  EXPECT_EQ(d.class_count(), 5);
  d.add(row, 1);  // smaller label must not shrink the count
  EXPECT_EQ(d.class_count(), 5);
  d.add(row, 9);
  EXPECT_EQ(d.class_count(), 10);
  // Derived datasets recompute their own memo from the rows they keep.
  const std::vector<std::size_t> idx = {1};  // only the label-1 row
  EXPECT_EQ(d.subset(idx).class_count(), 2);
  EXPECT_EQ(d.truncated_features(1).class_count(), 10);
}

Dataset counting_dataset(std::size_t rows, std::size_t features) {
  Dataset d(features);
  std::vector<double> row(features);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t f = 0; f < features; ++f) {
      row[f] = static_cast<double>(r * 100 + f);
    }
    d.add(row, static_cast<int>(r % 3));
  }
  return d;
}

TEST(Dataset, ColumnMajorMirrorsEveryElement) {
  const Dataset d = counting_dataset(7, 5);
  const auto mirror = d.column_major();
  ASSERT_EQ(mirror.size(), d.size() * d.feature_count());
  for (std::size_t f = 0; f < d.feature_count(); ++f) {
    const auto col = d.column(f);
    ASSERT_EQ(col.size(), d.size());
    for (std::size_t r = 0; r < d.size(); ++r) {
      EXPECT_EQ(col[r], d.row(r)[f]) << "r=" << r << " f=" << f;
      EXPECT_EQ(mirror[f * d.size() + r], d.row(r)[f]);
    }
  }
}

TEST(Dataset, MirrorInvalidatedByAdd) {
  Dataset d = counting_dataset(4, 3);
  EXPECT_EQ(d.column(2)[3], d.row(3)[2]);  // builds the mirror
  const std::vector<double> row = {-1.0, -2.0, -3.0};
  d.add(row, 0);  // must drop the stale mirror
  const auto col = d.column(2);
  ASSERT_EQ(col.size(), 5u);
  EXPECT_EQ(col[4], -3.0);
  EXPECT_EQ(col[0], d.row(0)[2]);
}

TEST(Dataset, ConcurrentMirrorBuildIsSafeAndConsistent) {
  const Dataset d = counting_dataset(64, 9);
  std::vector<std::thread> threads;
  std::vector<double> first_seen(8, 0.0);
  for (std::size_t t = 0; t < first_seen.size(); ++t) {
    threads.emplace_back([&, t] {
      const auto col = d.column(4);
      first_seen[t] = col[17];
    });
  }
  for (auto& th : threads) th.join();
  for (double v : first_seen) EXPECT_EQ(v, d.row(17)[4]);
}

TEST(Dataset, CopyStartsWithColdMirrorButSameContents) {
  Dataset d = counting_dataset(5, 4);
  EXPECT_EQ(d.column(0)[0], 0.0);  // warm the source mirror
  const Dataset copy = d;          // NOLINT(performance-unnecessary-copy...)
  EXPECT_EQ(copy.size(), d.size());
  EXPECT_EQ(copy.class_count(), d.class_count());
  for (std::size_t f = 0; f < d.feature_count(); ++f) {
    const auto a = copy.column(f);
    const auto b = d.column(f);
    for (std::size_t r = 0; r < d.size(); ++r) EXPECT_EQ(a[r], b[r]);
  }
  Dataset assigned(4);
  assigned = d;
  EXPECT_EQ(assigned.size(), d.size());
  EXPECT_EQ(assigned.column(3)[2], d.row(2)[3]);
}

TEST(Dataset, MoveTransfersMirrorAndMemo) {
  Dataset d = counting_dataset(6, 3);
  const double expect = d.row(5)[2];
  EXPECT_EQ(d.column(2)[5], expect);  // warm mirror before the move
  Dataset moved(std::move(d));
  EXPECT_EQ(moved.size(), 6u);
  EXPECT_EQ(moved.class_count(), 3);
  EXPECT_EQ(moved.column(2)[5], expect);
  Dataset target(3);
  target = std::move(moved);
  EXPECT_EQ(target.size(), 6u);
  EXPECT_EQ(target.column(2)[5], expect);
}

}  // namespace
}  // namespace amperebleed::ml
