#include "amperebleed/ml/dataset.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace amperebleed::ml {
namespace {

TEST(Dataset, AddAndAccess) {
  Dataset d(3);
  const std::vector<double> row0 = {1.0, 2.0, 3.0};
  const std::vector<double> row1 = {4.0, 5.0, 6.0};
  d.add(row0, 0);
  d.add(row1, 2);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.feature_count(), 3u);
  EXPECT_DOUBLE_EQ(d.row(1)[2], 6.0);
  EXPECT_EQ(d.label(1), 2);
  EXPECT_EQ(d.class_count(), 3);
}

TEST(Dataset, InfersWidthFromFirstRow) {
  Dataset d;
  const std::vector<double> row = {1.0, 2.0};
  d.add(row, 0);
  EXPECT_EQ(d.feature_count(), 2u);
  const std::vector<double> bad = {1.0};
  EXPECT_THROW(d.add(bad, 0), std::invalid_argument);
}

TEST(Dataset, RejectsNegativeLabels) {
  Dataset d(1);
  const std::vector<double> row = {1.0};
  EXPECT_THROW(d.add(row, -1), std::invalid_argument);
}

TEST(Dataset, RowOutOfRangeThrows) {
  Dataset d(1);
  EXPECT_THROW(static_cast<void>(d.row(0)), std::out_of_range);
}

TEST(Dataset, TruncatedFeaturesKeepsPrefix) {
  Dataset d(4);
  const std::vector<double> row = {1.0, 2.0, 3.0, 4.0};
  d.add(row, 1);
  const Dataset t = d.truncated_features(2);
  EXPECT_EQ(t.feature_count(), 2u);
  EXPECT_DOUBLE_EQ(t.row(0)[1], 2.0);
  EXPECT_EQ(t.label(0), 1);
  EXPECT_THROW(d.truncated_features(5), std::invalid_argument);
}

TEST(Dataset, SubsetSelectsRows) {
  Dataset d(1);
  for (int i = 0; i < 5; ++i) {
    const std::vector<double> row = {static_cast<double>(i)};
    d.add(row, i % 2);
  }
  const std::vector<std::size_t> idx = {4, 0, 2};
  const Dataset s = d.subset(idx);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.row(0)[0], 4.0);
  EXPECT_DOUBLE_EQ(s.row(1)[0], 0.0);
  EXPECT_EQ(s.label(2), 0);
}

TEST(Dataset, ClassCountOnEmpty) {
  Dataset d(1);
  EXPECT_EQ(d.class_count(), 0);
  EXPECT_TRUE(d.empty());
}

}  // namespace
}  // namespace amperebleed::ml
