// Determinism contract of the parallel ML engine: forest training,
// cross-validation and batched inference must be bit-identical at any
// thread-pool size. Every test sweeps the global pool over {1, 2, 8}
// executors and compares results with exact equality (==, not tolerance) —
// per-tree RNGs are pure functions of (seed, tree index), per-fold seeds are
// pure functions of (seed, fold index), and aggregation is order-stable, so
// nothing may drift with the schedule.

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "amperebleed/ml/baselines.hpp"
#include "amperebleed/ml/kfold.hpp"
#include "amperebleed/ml/random_forest.hpp"
#include "amperebleed/util/rng.hpp"
#include "amperebleed/util/thread_pool.hpp"

namespace amperebleed::ml {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

Dataset clustered_data(std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset d(6);
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 15; ++i) {
      std::vector<double> row;
      row.reserve(6);
      for (int f = 0; f < 6; ++f) {
        row.push_back(rng.gaussian(c * 2.0 + f * 0.1, 1.0));
      }
      d.add(row, c);
    }
  }
  return d;
}

/// Restores the previous global pool size even when an assertion fails.
class PoolSizeGuard {
 public:
  PoolSizeGuard() : before_(util::ThreadPool::global().size()) {}
  ~PoolSizeGuard() { util::ThreadPool::set_global_threads(before_); }

 private:
  std::size_t before_;
};

TEST(Determinism, ForestFitBitIdenticalAcrossThreadCounts) {
  PoolSizeGuard guard;
  const Dataset data = clustered_data(0xd5);
  ForestConfig config;
  config.n_trees = 24;
  config.seed = 0xf0;

  std::vector<std::vector<double>> flattened;
  for (std::size_t threads : kThreadCounts) {
    util::ThreadPool::set_global_threads(threads);
    RandomForest forest(config);
    forest.fit(data);
    std::vector<double> probas;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const auto p = forest.predict_proba(data.row(i));
      probas.insert(probas.end(), p.begin(), p.end());
    }
    flattened.push_back(std::move(probas));
  }
  ASSERT_EQ(flattened.size(), 3u);
  EXPECT_EQ(flattened[0], flattened[1]);  // exact, not approximate
  EXPECT_EQ(flattened[0], flattened[2]);
}

TEST(Determinism, CrossValidateBitIdenticalAcrossThreadCounts) {
  PoolSizeGuard guard;
  const Dataset data = clustered_data(0xcf);
  ForestConfig config;
  config.n_trees = 16;
  config.seed = 0xc51;

  std::vector<CrossValResult> results;
  for (std::size_t threads : kThreadCounts) {
    util::ThreadPool::set_global_threads(threads);
    results.push_back(cross_validate(data, config, 5, 0x11));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].top1_accuracy, results[i].top1_accuracy);
    EXPECT_EQ(results[0].top5_accuracy, results[i].top5_accuracy);
    EXPECT_EQ(results[0].evaluated, results[i].evaluated);
  }
}

TEST(Determinism, ClassifierCvBitIdenticalAcrossThreadCounts) {
  PoolSizeGuard guard;
  const Dataset data = clustered_data(0xba);

  std::vector<ClassifierCvResult> forest_results;
  std::vector<ClassifierCvResult> knn_results;
  for (std::size_t threads : kThreadCounts) {
    util::ThreadPool::set_global_threads(threads);
    forest_results.push_back(cross_validate_classifier(
        data,
        [](std::uint64_t seed) {
          ForestConfig fc;
          fc.n_trees = 12;
          fc.seed = seed;
          return std::make_unique<ForestClassifier>(fc);
        },
        4, 0x77));
    knn_results.push_back(cross_validate_classifier(
        data,
        [](std::uint64_t) { return std::make_unique<KnnClassifier>(3); }, 4,
        0x77));
  }
  for (std::size_t i = 1; i < forest_results.size(); ++i) {
    EXPECT_EQ(forest_results[0].top1_accuracy,
              forest_results[i].top1_accuracy);
    EXPECT_EQ(knn_results[0].top1_accuracy, knn_results[i].top1_accuracy);
  }
}

TEST(Determinism, BatchedInferenceMatchesPerRowExactly) {
  PoolSizeGuard guard;
  const Dataset data = clustered_data(0xbe);
  ForestConfig config;
  config.n_trees = 20;
  RandomForest forest(config);
  forest.fit(data);

  std::vector<std::span<const double>> rows;
  for (std::size_t i = 0; i < data.size(); ++i) rows.push_back(data.row(i));

  for (std::size_t threads : kThreadCounts) {
    util::ThreadPool::set_global_threads(threads);
    const auto batched = forest.predict_proba_many(rows);
    ASSERT_EQ(batched.size(), rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(batched[i], forest.predict_proba(rows[i])) << "row " << i;
    }
  }
}

TEST(Determinism, StratifiedKfoldIndependentOfPoolSize) {
  // kfold itself is serial, but it feeds every parallel consumer — pin down
  // that pool sizing cannot leak into the fold composition.
  PoolSizeGuard guard;
  std::vector<int> labels;
  for (int i = 0; i < 60; ++i) labels.push_back(i % 4);
  util::ThreadPool::set_global_threads(1);
  const auto a = stratified_kfold(labels, 5, 9);
  util::ThreadPool::set_global_threads(8);
  const auto b = stratified_kfold(labels, 5, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t f = 0; f < a.size(); ++f) {
    EXPECT_EQ(a[f].test_indices, b[f].test_indices);
    EXPECT_EQ(a[f].train_indices, b[f].train_indices);
  }
}

}  // namespace
}  // namespace amperebleed::ml
