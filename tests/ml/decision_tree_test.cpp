#include "amperebleed/ml/decision_tree.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "amperebleed/util/rng.hpp"

namespace amperebleed::ml {
namespace {

Dataset two_blob_dataset(int per_class, std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset d(2);
  for (int i = 0; i < per_class; ++i) {
    const std::vector<double> a = {rng.gaussian(0.0, 0.5),
                                   rng.gaussian(0.0, 0.5)};
    const std::vector<double> b = {rng.gaussian(5.0, 0.5),
                                   rng.gaussian(5.0, 0.5)};
    d.add(a, 0);
    d.add(b, 1);
  }
  return d;
}

std::vector<std::size_t> all_indices(const Dataset& d) {
  std::vector<std::size_t> idx(d.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  return idx;
}

TEST(DecisionTree, FitsSeparableBlobsExactly) {
  const Dataset d = two_blob_dataset(50, 1);
  DecisionTree tree;
  util::Rng rng(2);
  tree.fit(d, all_indices(d), 2, rng);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(tree.predict(d.row(i)), d.label(i));
  }
}

TEST(DecisionTree, PredictProbaIsDistribution) {
  const Dataset d = two_blob_dataset(20, 3);
  DecisionTree tree;
  util::Rng rng(4);
  tree.fit(d, all_indices(d), 2, rng);
  const auto p = tree.predict_proba(d.row(0));
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  EXPECT_GE(p[0], 0.0);
  EXPECT_GE(p[1], 0.0);
}

TEST(DecisionTree, RespectsMaxDepth) {
  // Alternating labels along one axis need depth ~log2(n); cap it at 1.
  Dataset d(1);
  for (int i = 0; i < 16; ++i) {
    const std::vector<double> row = {static_cast<double>(i)};
    d.add(row, i % 2);
  }
  TreeConfig config;
  config.max_depth = 1;
  DecisionTree tree(config);
  util::Rng rng(5);
  tree.fit(d, all_indices(d), 2, rng);
  EXPECT_LE(tree.depth(), 1);
}

TEST(DecisionTree, PureNodeBecomesLeafImmediately) {
  Dataset d(2);
  for (int i = 0; i < 10; ++i) {
    const std::vector<double> row = {static_cast<double>(i), 0.0};
    d.add(row, 3);  // single class with id 3
  }
  DecisionTree tree;
  util::Rng rng(6);
  tree.fit(d, all_indices(d), 4, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict(d.row(0)), 3);
}

TEST(DecisionTree, ConstantFeaturesYieldMajorityLeaf) {
  Dataset d(1);
  const std::vector<double> same = {1.0};
  d.add(same, 0);
  d.add(same, 0);
  d.add(same, 1);
  DecisionTree tree;
  util::Rng rng(7);
  tree.fit(d, all_indices(d), 2, rng);
  EXPECT_EQ(tree.predict(same), 0);
}

TEST(DecisionTree, ThrowsWithoutSamplesOrClasses) {
  Dataset d(1);
  DecisionTree tree;
  util::Rng rng(8);
  EXPECT_THROW(tree.fit(d, {}, 2, rng), std::invalid_argument);
  const std::vector<double> row = {1.0};
  d.add(row, 0);
  EXPECT_THROW(tree.fit(d, all_indices(d), 0, rng), std::invalid_argument);
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  DecisionTree tree;
  const std::vector<double> x = {0.0};
  EXPECT_THROW(static_cast<void>(tree.predict(x)), std::logic_error);
}

TEST(DecisionTree, BootstrapIndicesWithRepetitionWork) {
  const Dataset d = two_blob_dataset(30, 9);
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < d.size(); ++i) {
    idx.push_back(i % 10);  // heavy repetition
  }
  DecisionTree tree;
  util::Rng rng(10);
  tree.fit(d, idx, 2, rng);
  EXPECT_TRUE(tree.fitted());
}

TEST(DecisionTree, XorNeedsDepthTwo) {
  Dataset d(2);
  const std::vector<std::vector<double>> pts = {
      {0.0, 0.0}, {0.0, 1.0}, {1.0, 0.0}, {1.0, 1.0}};
  const std::vector<int> labels = {0, 1, 1, 0};
  // Replicate to give splits something to chew on.
  for (int rep = 0; rep < 8; ++rep) {
    for (std::size_t i = 0; i < pts.size(); ++i) d.add(pts[i], labels[i]);
  }
  TreeConfig config;
  config.max_features = 2;  // examine both features at each node
  DecisionTree tree(config);
  util::Rng rng(11);
  tree.fit(d, all_indices(d), 2, rng);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(tree.predict(pts[i]), labels[i]);
  }
  EXPECT_GE(tree.depth(), 2);
}

}  // namespace
}  // namespace amperebleed::ml
