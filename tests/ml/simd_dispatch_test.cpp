// Exact-equality dispatch sweep for the ForestArena SIMD tiers (DESIGN.md
// §14): every tier available on the host must produce BIT-IDENTICAL
// probabilities to the retained per-tree pointer walk
// (predict_proba_reference), over adversarial rows (NaN, ±Inf, denormals,
// constants), every block-remainder shape, and multiple pool sizes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "amperebleed/ml/dataset.hpp"
#include "amperebleed/ml/forest_arena.hpp"
#include "amperebleed/ml/random_forest.hpp"
#include "amperebleed/util/rng.hpp"
#include "amperebleed/util/simd.hpp"
#include "amperebleed/util/thread_pool.hpp"

namespace {

using namespace amperebleed;
namespace simd = util::simd;

constexpr std::size_t kFeatures = 40;

ml::Dataset training_data() {
  util::Rng rng(0x51d);
  ml::Dataset data(kFeatures);
  std::vector<double> row(kFeatures);
  for (int c = 0; c < 8; ++c) {
    for (int i = 0; i < 24; ++i) {
      for (std::size_t f = 0; f < kFeatures; ++f) {
        row[f] = rng.gaussian(c * 0.4 * ((f % 3) + 1), 1.0);
      }
      data.add(row, c);
    }
  }
  return data;
}

const ml::RandomForest& forest() {
  static const ml::RandomForest f = [] {
    ml::ForestConfig config;
    config.n_trees = 25;
    ml::RandomForest forest(config);
    forest.fit(training_data());
    return forest;
  }();
  return f;
}

/// Prediction rows including every adversarial shape the kernels must agree
/// on: NaN (compares false -> go right in all tiers), ±Inf, denormals,
/// constant rows, and ordinary Gaussian rows.
std::vector<std::vector<double>> adversarial_rows(std::size_t count) {
  util::Rng rng(0xad5e);
  std::vector<std::vector<double>> rows;
  rows.reserve(count);
  for (std::size_t r = 0; r < count; ++r) {
    std::vector<double> row(kFeatures);
    switch (r % 6) {
      case 0:
        for (auto& v : row) v = rng.gaussian(0.0, 2.0);
        break;
      case 1:  // NaN-poisoned
        for (std::size_t f = 0; f < kFeatures; ++f) {
          row[f] = (f % 4 == 1) ? std::numeric_limits<double>::quiet_NaN()
                                : rng.gaussian(0.0, 2.0);
        }
        break;
      case 2:  // ±Inf spikes
        for (std::size_t f = 0; f < kFeatures; ++f) {
          row[f] = (f % 5 == 0) ? std::numeric_limits<double>::infinity()
                   : (f % 5 == 1)
                       ? -std::numeric_limits<double>::infinity()
                       : rng.gaussian(0.0, 2.0);
        }
        break;
      case 3:  // denormal-heavy
        for (std::size_t f = 0; f < kFeatures; ++f) {
          row[f] = static_cast<double>(f % 7) * 5e-324;
        }
        break;
      case 4:  // constant row
        for (auto& v : row) v = 0.75;
        break;
      default:
        for (auto& v : row) v = rng.gaussian(1.0, 0.25);
        break;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<std::span<const double>> as_spans(
    const std::vector<std::vector<double>>& rows) {
  std::vector<std::span<const double>> spans;
  spans.reserve(rows.size());
  for (const auto& row : rows) spans.emplace_back(row);
  return spans;
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
  }
}

class PoolSizeGuard {
 public:
  PoolSizeGuard() : before_(util::ThreadPool::global().size()) {}
  ~PoolSizeGuard() { util::ThreadPool::set_global_threads(before_); }

 private:
  std::size_t before_;
};

// Every available tier, every remainder shape (row counts around the
// 8-lane / 16-row block sizes), bit-identical to predict_proba_reference.
TEST(SimdDispatch, AllTiersMatchReferenceExactly) {
  const auto& f = forest();
  for (const std::size_t count : {std::size_t{1}, std::size_t{7},
                                  std::size_t{8}, std::size_t{9},
                                  std::size_t{16}, std::size_t{17},
                                  std::size_t{48}}) {
    const auto rows = adversarial_rows(count);
    const auto spans = as_spans(rows);
    std::vector<std::vector<double>> expected;
    expected.reserve(count);
    for (const auto& row : rows) {
      expected.push_back(f.predict_proba_reference(row));
    }
    for (const simd::SimdTier tier : simd::available_tiers()) {
      simd::ScopedTier scoped(tier);
      const auto got = f.predict_proba_many(spans);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t r = 0; r < got.size(); ++r) {
        SCOPED_TRACE(std::string("tier=") +
                     std::string(simd::tier_name(tier)) +
                     " rows=" + std::to_string(count) +
                     " row=" + std::to_string(r));
        expect_bitwise_equal(got[r], expected[r]);
      }
    }
  }
}

// Empty batch: every tier returns an empty result without touching rows.
TEST(SimdDispatch, EmptyBatch) {
  const auto& f = forest();
  for (const simd::SimdTier tier : simd::available_tiers()) {
    simd::ScopedTier scoped(tier);
    EXPECT_TRUE(f.predict_proba_many({}).empty());
  }
}

// Kernel-level pit: the per-tier arena entry points against each other on
// the same pre-sized output, bypassing predict_proba_many's dispatch.
TEST(SimdDispatch, KernelEntryPointsAgree) {
  const auto& arena = forest().arena();
  const auto rows = adversarial_rows(21);
  const auto spans = as_spans(rows);

  std::vector<std::vector<double>> scalar_out(rows.size());
  arena.predict_proba_rows_scalar(spans, 0, rows.size(), scalar_out);

  std::vector<std::vector<double>> inter_out(rows.size());
  arena.predict_proba_rows_interleaved(spans, 0, rows.size(), inter_out);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    SCOPED_TRACE("interleaved row=" + std::to_string(r));
    expect_bitwise_equal(inter_out[r], scalar_out[r]);
  }

#if defined(__x86_64__) || defined(__i386__)
  const auto tiers = simd::available_tiers();
  if (std::find(tiers.begin(), tiers.end(), simd::SimdTier::kAvx2) !=
      tiers.end()) {
    std::vector<std::vector<double>> avx2_out(rows.size());
    arena.predict_proba_rows_avx2(spans, 0, rows.size(), avx2_out);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      SCOPED_TRACE("avx2 row=" + std::to_string(r));
      expect_bitwise_equal(avx2_out[r], scalar_out[r]);
    }
  }
#endif

  // Sub-range contract: kernels only touch out[lo, hi).
  std::vector<std::vector<double>> partial(rows.size());
  arena.predict_proba_rows_interleaved(spans, 3, 11, partial);
  for (std::size_t r = 3; r < 11; ++r) {
    expect_bitwise_equal(partial[r], scalar_out[r]);
  }
  EXPECT_TRUE(partial[0].empty());
  EXPECT_TRUE(partial[11].empty());
}

// Pool-size sweep at the best tier: batched inference is bit-identical at
// any thread count (blocks are independent; within a block nothing changes).
TEST(SimdDispatch, PoolSizesBitIdentical) {
  PoolSizeGuard guard;
  const auto& f = forest();
  const auto rows = adversarial_rows(33);
  const auto spans = as_spans(rows);
  simd::ScopedTier scoped(simd::detect_best_tier());

  util::ThreadPool::set_global_threads(1);
  const auto serial = f.predict_proba_many(spans);
  for (const std::size_t threads : {std::size_t{4}, std::size_t{8}}) {
    util::ThreadPool::set_global_threads(threads);
    const auto parallel = f.predict_proba_many(spans);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t r = 0; r < serial.size(); ++r) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " row=" + std::to_string(r));
      expect_bitwise_equal(parallel[r], serial[r]);
    }
  }
}

// Single-row predict_proba (arena accumulate) also matches the reference —
// the online service path.
TEST(SimdDispatch, SingleRowAccumulateMatchesReference) {
  const auto& f = forest();
  const auto rows = adversarial_rows(12);
  for (const auto& row : rows) {
    expect_bitwise_equal(f.predict_proba(row),
                         f.predict_proba_reference(row));
  }
}

}  // namespace
