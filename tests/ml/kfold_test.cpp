#include "amperebleed/ml/kfold.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "amperebleed/util/rng.hpp"

namespace amperebleed::ml {
namespace {

TEST(StratifiedKfold, PartitionsAllSamples) {
  std::vector<int> labels;
  for (int i = 0; i < 50; ++i) labels.push_back(i % 5);
  const auto folds = stratified_kfold(labels, 5, 1);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::size_t> seen;
  for (const auto& f : folds) {
    for (std::size_t i : f.test_indices) {
      EXPECT_TRUE(seen.insert(i).second) << "test sets overlap";
    }
    EXPECT_EQ(f.train_indices.size() + f.test_indices.size(), labels.size());
  }
  EXPECT_EQ(seen.size(), labels.size());
}

TEST(StratifiedKfold, EveryFoldSeesEveryClass) {
  std::vector<int> labels;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 10; ++i) labels.push_back(c);
  }
  const auto folds = stratified_kfold(labels, 10, 2);
  for (const auto& f : folds) {
    std::set<int> classes;
    for (std::size_t i : f.test_indices) classes.insert(labels[i]);
    EXPECT_EQ(classes.size(), 4u);
  }
}

TEST(StratifiedKfold, TrainAndTestDisjoint) {
  std::vector<int> labels(30, 0);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 3);
  }
  const auto folds = stratified_kfold(labels, 3, 3);
  for (const auto& f : folds) {
    std::set<std::size_t> test(f.test_indices.begin(), f.test_indices.end());
    for (std::size_t i : f.train_indices) {
      EXPECT_EQ(test.count(i), 0u);
    }
  }
}

TEST(StratifiedKfold, Validation) {
  const std::vector<int> labels = {0, 1, 0, 1};
  EXPECT_THROW(stratified_kfold(labels, 1, 1), std::invalid_argument);
  EXPECT_THROW(stratified_kfold(labels, 5, 1), std::invalid_argument);
}

TEST(StratifiedKfold, DeterministicForSeed) {
  std::vector<int> labels(40);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 4);
  }
  const auto a = stratified_kfold(labels, 4, 7);
  const auto b = stratified_kfold(labels, 4, 7);
  for (std::size_t f = 0; f < a.size(); ++f) {
    EXPECT_EQ(a[f].test_indices, b[f].test_indices);
  }
}

TEST(CrossValidate, HighAccuracyOnSeparableData) {
  util::Rng rng(5);
  Dataset d(2);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 30; ++i) {
      const std::vector<double> row = {rng.gaussian(c * 5.0, 0.4),
                                       rng.gaussian(c * -3.0, 0.4)};
      d.add(row, c);
    }
  }
  ForestConfig config;
  config.n_trees = 20;
  const auto result = cross_validate(d, config, 5, 11);
  EXPECT_EQ(result.evaluated, d.size());
  EXPECT_GT(result.top1_accuracy, 0.95);
  EXPECT_GE(result.top5_accuracy, result.top1_accuracy);
}

TEST(CrossValidate, ChanceLevelOnPureNoise) {
  util::Rng rng(6);
  Dataset d(3);
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 25; ++i) {
      const std::vector<double> row = {rng.gaussian(), rng.gaussian(),
                                       rng.gaussian()};
      d.add(row, c);
    }
  }
  ForestConfig config;
  config.n_trees = 15;
  const auto result = cross_validate(d, config, 5, 12);
  EXPECT_LT(result.top1_accuracy, 0.5);  // well below certainty
  EXPECT_GT(result.top1_accuracy, 0.0);  // but something gets lucky
}

}  // namespace
}  // namespace amperebleed::ml
