#include "amperebleed/ml/kfold.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "amperebleed/util/rng.hpp"

namespace amperebleed::ml {
namespace {

TEST(StratifiedKfold, PartitionsAllSamples) {
  std::vector<int> labels;
  for (int i = 0; i < 50; ++i) labels.push_back(i % 5);
  const auto folds = stratified_kfold(labels, 5, 1);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::size_t> seen;
  for (const auto& f : folds) {
    for (std::size_t i : f.test_indices) {
      EXPECT_TRUE(seen.insert(i).second) << "test sets overlap";
    }
    EXPECT_EQ(f.train_indices.size() + f.test_indices.size(), labels.size());
  }
  EXPECT_EQ(seen.size(), labels.size());
}

TEST(StratifiedKfold, EveryFoldSeesEveryClass) {
  std::vector<int> labels;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 10; ++i) labels.push_back(c);
  }
  const auto folds = stratified_kfold(labels, 10, 2);
  for (const auto& f : folds) {
    std::set<int> classes;
    for (std::size_t i : f.test_indices) classes.insert(labels[i]);
    EXPECT_EQ(classes.size(), 4u);
  }
}

TEST(StratifiedKfold, TrainAndTestDisjoint) {
  std::vector<int> labels(30, 0);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 3);
  }
  const auto folds = stratified_kfold(labels, 3, 3);
  for (const auto& f : folds) {
    std::set<std::size_t> test(f.test_indices.begin(), f.test_indices.end());
    for (std::size_t i : f.train_indices) {
      EXPECT_EQ(test.count(i), 0u);
    }
  }
}

TEST(StratifiedKfold, FoldSizesStayWithinOneOfEachOther) {
  // Class sizes 7, 9 and 11 with k=5: every class leaves a remainder, and
  // the rotating deal must spread those remainders over different folds so
  // overall fold sizes differ by at most one (27 samples -> sizes 5 or 6).
  std::vector<int> labels;
  for (int i = 0; i < 7; ++i) labels.push_back(0);
  for (int i = 0; i < 9; ++i) labels.push_back(1);
  for (int i = 0; i < 11; ++i) labels.push_back(2);
  const auto folds = stratified_kfold(labels, 5, 21);
  std::size_t min_size = labels.size();
  std::size_t max_size = 0;
  for (const auto& f : folds) {
    min_size = std::min(min_size, f.test_indices.size());
    max_size = std::max(max_size, f.test_indices.size());
  }
  EXPECT_LE(max_size - min_size, 1u)
      << "fold sizes " << min_size << ".." << max_size;
}

TEST(StratifiedKfold, FoldZeroDoesNotCollectEveryRemainder) {
  // Regression test for the pre-rotation dealer: with 5 classes of 7
  // samples and k=5, restarting every class at fold 0 put all five
  // remainder samples into fold 0 (10 vs 7 elsewhere). The rotating deal
  // gives every fold exactly 35/5 = 7 samples.
  std::vector<int> labels;
  for (int c = 0; c < 5; ++c) {
    for (int i = 0; i < 7; ++i) labels.push_back(c);
  }
  const auto folds = stratified_kfold(labels, 5, 3);
  for (const auto& f : folds) {
    EXPECT_EQ(f.test_indices.size(), 7u);
  }
}

TEST(StratifiedKfold, PerFoldClassCountsStayStratified) {
  // Rotation must not break stratification: within every fold, each class
  // still contributes floor or ceil of |class|/k samples.
  std::vector<int> labels;
  for (int i = 0; i < 8; ++i) labels.push_back(0);
  for (int i = 0; i < 13; ++i) labels.push_back(1);
  for (int i = 0; i < 6; ++i) labels.push_back(2);
  const std::size_t k = 4;
  const auto folds = stratified_kfold(labels, k, 17);
  const std::size_t class_sizes[] = {8, 13, 6};
  for (const auto& f : folds) {
    std::size_t per_class[3] = {0, 0, 0};
    for (std::size_t i : f.test_indices) {
      ++per_class[static_cast<std::size_t>(labels[i])];
    }
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_GE(per_class[c], class_sizes[c] / k) << "class " << c;
      EXPECT_LE(per_class[c], class_sizes[c] / k + 1) << "class " << c;
    }
  }
}

TEST(StratifiedKfold, Validation) {
  const std::vector<int> labels = {0, 1, 0, 1};
  EXPECT_THROW(stratified_kfold(labels, 1, 1), std::invalid_argument);
  EXPECT_THROW(stratified_kfold(labels, 5, 1), std::invalid_argument);
}

TEST(StratifiedKfold, DeterministicForSeed) {
  std::vector<int> labels(40);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 4);
  }
  const auto a = stratified_kfold(labels, 4, 7);
  const auto b = stratified_kfold(labels, 4, 7);
  for (std::size_t f = 0; f < a.size(); ++f) {
    EXPECT_EQ(a[f].test_indices, b[f].test_indices);
  }
}

TEST(CrossValidate, HighAccuracyOnSeparableData) {
  util::Rng rng(5);
  Dataset d(2);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 30; ++i) {
      const std::vector<double> row = {rng.gaussian(c * 5.0, 0.4),
                                       rng.gaussian(c * -3.0, 0.4)};
      d.add(row, c);
    }
  }
  ForestConfig config;
  config.n_trees = 20;
  const auto result = cross_validate(d, config, 5, 11);
  EXPECT_EQ(result.evaluated, d.size());
  EXPECT_GT(result.top1_accuracy, 0.95);
  EXPECT_GE(result.top5_accuracy, result.top1_accuracy);
}

TEST(CrossValidate, ChanceLevelOnPureNoise) {
  util::Rng rng(6);
  Dataset d(3);
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 25; ++i) {
      const std::vector<double> row = {rng.gaussian(), rng.gaussian(),
                                       rng.gaussian()};
      d.add(row, c);
    }
  }
  ForestConfig config;
  config.n_trees = 15;
  const auto result = cross_validate(d, config, 5, 12);
  EXPECT_LT(result.top1_accuracy, 0.5);  // well below certainty
  EXPECT_GT(result.top1_accuracy, 0.0);  // but something gets lucky
}

}  // namespace
}  // namespace amperebleed::ml
