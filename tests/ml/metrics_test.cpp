#include "amperebleed/ml/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace amperebleed::ml {
namespace {

TEST(Accuracy, Basics) {
  const std::vector<int> truth = {0, 1, 2, 1};
  const std::vector<int> pred = {0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(accuracy(truth, pred), 0.75);
  EXPECT_DOUBLE_EQ(accuracy({}, {}), 0.0);
}

TEST(Accuracy, LengthMismatchThrows) {
  const std::vector<int> a = {0, 1};
  const std::vector<int> b = {0};
  EXPECT_THROW(accuracy(a, b), std::invalid_argument);
}

TEST(TopKAccuracy, CountsMembership) {
  const std::vector<int> truth = {3, 1, 0};
  const std::vector<std::vector<int>> candidates = {
      {0, 1, 3},  // hit at rank 3
      {2, 0},     // miss
      {0},        // hit at rank 1
  };
  EXPECT_NEAR(top_k_accuracy(truth, candidates), 2.0 / 3.0, 1e-12);
}

TEST(TopKAccuracy, Validation) {
  const std::vector<int> truth = {0};
  EXPECT_THROW(top_k_accuracy(truth, {}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(top_k_accuracy({}, {}), 0.0);
}

TEST(ConfusionMatrix, AccumulatesAndSummarizes) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 0);
  EXPECT_EQ(cm.total(), 5u);
  EXPECT_EQ(cm.count(0, 0), 2u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_DOUBLE_EQ(cm.overall_accuracy(), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(cm.recall(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 0.5);
  EXPECT_DOUBLE_EQ(cm.recall(2), 0.0);
}

TEST(ConfusionMatrix, EmptyClassMetricsAreZero) {
  ConfusionMatrix cm(2);
  EXPECT_DOUBLE_EQ(cm.overall_accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(0), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(0), 0.0);
}

TEST(ConfusionMatrix, Validation) {
  EXPECT_THROW(ConfusionMatrix(0), std::invalid_argument);
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), std::out_of_range);
  EXPECT_THROW(cm.add(0, -1), std::out_of_range);
  EXPECT_THROW(static_cast<void>(cm.count(0, 5)), std::out_of_range);
}

TEST(ConfusionMatrix, RenderContainsAllCells) {
  ConfusionMatrix cm(2);
  cm.add(0, 1);
  const std::string out = cm.render();
  EXPECT_NE(out.find("truth"), std::string::npos);
  EXPECT_NE(out.find('1'), std::string::npos);
}

}  // namespace
}  // namespace amperebleed::ml
