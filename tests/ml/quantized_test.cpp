// Opt-in int16 threshold quantization (ForestConfig::quantize_thresholds):
// monotonicity of the transform, exact agreement on integer-grid features
// (bucket width < sample spacing), and the accuracy-delta gate on
// continuous data. predict_proba_reference always stays exact, which is
// what every comparison below leans on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "amperebleed/ml/dataset.hpp"
#include "amperebleed/ml/forest_arena.hpp"
#include "amperebleed/ml/random_forest.hpp"
#include "amperebleed/util/rng.hpp"

namespace {

using namespace amperebleed;

constexpr std::size_t kFeatures = 24;

/// Integer-grid dataset: features are whole numbers in [0, 200], so split
/// thresholds land on half-integers. The per-feature quantization bucket is
/// range/65534 << 0.5, hence quantized and exact walks take identical
/// branches on every training row.
ml::Dataset integer_grid_data() {
  util::Rng rng(0x1d5);
  ml::Dataset data(kFeatures);
  std::vector<double> row(kFeatures);
  for (int c = 0; c < 6; ++c) {
    for (int i = 0; i < 30; ++i) {
      for (std::size_t f = 0; f < kFeatures; ++f) {
        const double center = 100.0 + 12.0 * c * ((f % 2) + 1);
        row[f] = std::clamp(std::round(rng.gaussian(center, 8.0)), 0.0, 200.0);
      }
      data.add(row, c);
    }
  }
  return data;
}

ml::Dataset gaussian_data() {
  util::Rng rng(0x6a5);
  ml::Dataset data(kFeatures);
  std::vector<double> row(kFeatures);
  for (int c = 0; c < 6; ++c) {
    for (int i = 0; i < 30; ++i) {
      for (std::size_t f = 0; f < kFeatures; ++f) {
        row[f] = rng.gaussian(0.5 * c * ((f % 3) + 1), 1.0);
      }
      data.add(row, c);
    }
  }
  return data;
}

ml::RandomForest fit(const ml::Dataset& data, bool quantize) {
  ml::ForestConfig config;
  config.n_trees = 20;
  config.quantize_thresholds = quantize;
  ml::RandomForest forest(config);
  forest.fit(data);
  return forest;
}

TEST(Quantized, OffByDefault) {
  const auto forest = fit(gaussian_data(), /*quantize=*/false);
  EXPECT_FALSE(forest.arena().quantized.built());
  EXPECT_FALSE(ml::ForestConfig{}.quantize_thresholds);
}

TEST(Quantized, OptInBuildsTables) {
  const auto forest = fit(gaussian_data(), /*quantize=*/true);
  const auto& arena = forest.arena();
  ASSERT_TRUE(arena.quantized.built());
  EXPECT_EQ(arena.quantized.qthreshold.size(), arena.node_count());
  EXPECT_EQ(arena.quantized.lo.size(), arena.referenced_feature_count());
  EXPECT_EQ(arena.quantized.scale.size(), arena.referenced_feature_count());
}

// The transform is monotone and threshold-consistent: a node's stored
// quantized threshold equals quantize_value() of its exact threshold, and
// values strictly below/above a threshold never land on the wrong side.
TEST(Quantized, TransformMonotoneAndConsistent) {
  const auto forest = fit(gaussian_data(), /*quantize=*/true);
  const auto& arena = forest.arena();
  for (std::size_t i = 0; i < arena.node_count(); ++i) {
    if (arena.feature[i] < 0) continue;
    const auto f = static_cast<std::size_t>(arena.feature[i]);
    const double thr = arena.threshold[i];
    const std::int32_t qthr = arena.quantized.qthreshold[i];
    // x == thr quantizes into the same bucket -> still goes left.
    EXPECT_EQ(arena.quantize_value(f, thr), qthr);
    // Sentinels bracket every stored threshold.
    EXPECT_LE(arena.quantize_value(
                  f, -std::numeric_limits<double>::infinity()),
              qthr);
    EXPECT_GT(
        arena.quantize_value(f, std::numeric_limits<double>::infinity()),
        qthr);
    EXPECT_GT(arena.quantize_value(
                  f, std::numeric_limits<double>::quiet_NaN()),
              qthr);
  }
}

// Integer-grid features: bucket width << sample spacing, so the quantized
// walk agrees with the exact walk on every row — bit-identical
// probabilities.
TEST(Quantized, ExactOnIntegerGridData) {
  const ml::Dataset data = integer_grid_data();
  const auto exact = fit(data, /*quantize=*/false);
  const auto quantized = fit(data, /*quantize=*/true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto p_exact = exact.predict_proba_reference(data.row(i));
    const auto p_quant = quantized.predict_proba(data.row(i));
    ASSERT_EQ(p_exact.size(), p_quant.size());
    for (std::size_t c = 0; c < p_exact.size(); ++c) {
      EXPECT_EQ(p_exact[c], p_quant[c]) << "row " << i << " class " << c;
    }
  }
}

// Continuous features: quantization may flip decisions only inside one
// bucket, so training-set accuracy moves by at most a couple of points.
// This is the accuracy-delta gate for the opt-in.
TEST(Quantized, AccuracyDeltaGate) {
  const ml::Dataset data = gaussian_data();
  const auto exact = fit(data, /*quantize=*/false);
  const auto quantized = fit(data, /*quantize=*/true);
  std::size_t exact_hits = 0;
  std::size_t quant_hits = 0;
  std::size_t proba_flips = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (exact.predict(data.row(i)) == data.label(i)) ++exact_hits;
    const int q = quantized.predict(data.row(i));
    if (q == data.label(i)) ++quant_hits;
    if (q != exact.predict(data.row(i))) ++proba_flips;
  }
  const double n = static_cast<double>(data.size());
  const double delta =
      std::abs(static_cast<double>(exact_hits) - static_cast<double>(quant_hits)) / n;
  EXPECT_LE(delta, 0.02) << "quantization moved accuracy by more than 2%";
  // And the label-level disagreement itself stays rare.
  EXPECT_LE(static_cast<double>(proba_flips) / n, 0.02);
}

// Batched prediction with quantization enabled matches the single-row
// quantized walk (the block kernel quantizes rows identically).
TEST(Quantized, BatchMatchesSingleRow) {
  const ml::Dataset data = gaussian_data();
  const auto quantized = fit(data, /*quantize=*/true);
  std::vector<std::span<const double>> rows;
  for (std::size_t i = 0; i < data.size(); ++i) rows.push_back(data.row(i));
  const auto batch = quantized.predict_proba_many(rows);
  ASSERT_EQ(batch.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto single = quantized.predict_proba(data.row(i));
    ASSERT_EQ(batch[i].size(), single.size());
    for (std::size_t c = 0; c < single.size(); ++c) {
      EXPECT_EQ(batch[i][c], single[c]) << "row " << i << " class " << c;
    }
  }
}

}  // namespace
