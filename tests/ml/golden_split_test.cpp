// Golden bit-identity contract of the cache-resident ML hot path: the
// presorted splitter (column-major gathers, value-only sorts, compact class
// remap) and the SoA forest arena must reproduce the retained reference
// (naive) implementation EXACTLY — same node structure, same thresholds,
// same leaf distributions, same probabilities — on randomized datasets
// including duplicate-value and constant-feature columns, at every
// thread-pool size. Comparisons are exact (==), never tolerance-based:
// a single flipped split tie would change a tree and fail the forest-wide
// structural diff.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "amperebleed/ml/forest_arena.hpp"
#include "amperebleed/ml/kfold.hpp"
#include "amperebleed/ml/random_forest.hpp"
#include "amperebleed/util/rng.hpp"
#include "amperebleed/util/thread_pool.hpp"

namespace amperebleed::ml {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

/// Restores the previous global pool size even when an assertion fails.
class PoolSizeGuard {
 public:
  PoolSizeGuard() : before_(util::ThreadPool::global().size()) {}
  ~PoolSizeGuard() { util::ThreadPool::set_global_threads(before_); }

 private:
  std::size_t before_;
};

struct DatasetSpec {
  int classes = 4;
  int per_class = 20;
  int features = 10;
  /// Quantization denominator: > 0 rounds every value to multiples of
  /// 1/quantize, manufacturing heavy duplicate runs within columns.
  int quantize = 0;
  /// Number of leading columns forced constant.
  int constant_columns = 0;
};

Dataset make_dataset(const DatasetSpec& spec, std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset d(static_cast<std::size_t>(spec.features));
  std::vector<double> row(static_cast<std::size_t>(spec.features));
  for (int c = 0; c < spec.classes; ++c) {
    for (int i = 0; i < spec.per_class; ++i) {
      for (int f = 0; f < spec.features; ++f) {
        if (f < spec.constant_columns) {
          row[static_cast<std::size_t>(f)] = 3.25;  // exactly representable
          continue;
        }
        double v = rng.gaussian(c * 0.8 + f * 0.05, 1.0);
        if (spec.quantize > 0) {
          v = std::round(v * spec.quantize) / spec.quantize;
        }
        row[static_cast<std::size_t>(f)] = v;
      }
      d.add(row, c);
    }
  }
  return d;
}

/// Exact structural equality of two packed forests.
void expect_arena_equal(const ForestArena& a, const ForestArena& b) {
  EXPECT_EQ(a.class_count, b.class_count);
  EXPECT_EQ(a.roots, b.roots);
  EXPECT_EQ(a.feature, b.feature);
  EXPECT_EQ(a.threshold, b.threshold);  // exact double equality
  EXPECT_EQ(a.right, b.right);
  EXPECT_EQ(a.dists, b.dists);
}

ForestConfig forest_config(TreeConfig::Splitter splitter, std::size_t n_trees,
                           std::uint64_t seed) {
  ForestConfig config;
  config.n_trees = n_trees;
  config.seed = seed;
  config.tree.splitter = splitter;
  return config;
}

class GoldenSplit : public ::testing::TestWithParam<DatasetSpec> {};

TEST_P(GoldenSplit, SingleTreeStructurallyIdentical) {
  const Dataset data = make_dataset(GetParam(), 0x90'1d);
  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  // Repeat a chunk to mimic bootstrap multiplicity.
  for (std::size_t i = 0; i < data.size() / 3; ++i) indices.push_back(i);

  TreeConfig presorted;
  TreeConfig reference;
  reference.splitter = TreeConfig::Splitter::kReference;

  DecisionTree fast(presorted);
  DecisionTree naive(reference);
  util::Rng rng_fast(0xabc);
  util::Rng rng_naive(0xabc);
  fast.fit(data, indices, data.class_count(), rng_fast);
  naive.fit(data, indices, data.class_count(), rng_naive);

  EXPECT_EQ(fast.node_count(), naive.node_count());
  EXPECT_EQ(fast.depth(), naive.depth());
  EXPECT_EQ(fast.leaf_value_count(), naive.leaf_value_count());

  ForestArena a;
  ForestArena b;
  a.class_count = b.class_count = data.class_count();
  fast.append_to(a);
  naive.append_to(b);
  expect_arena_equal(a, b);

  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto pf = fast.predict_proba(data.row(i));
    const auto pn = naive.predict_proba(data.row(i));
    ASSERT_EQ(pf.size(), pn.size());
    for (std::size_t c = 0; c < pf.size(); ++c) {
      EXPECT_EQ(pf[c], pn[c]) << "row " << i << " class " << c;
    }
  }
}

TEST_P(GoldenSplit, ForestBitIdenticalAcrossSplittersAndPoolSizes) {
  PoolSizeGuard guard;
  const Dataset data = make_dataset(GetParam(), 0xf0'0d);

  // The reference forest, fitted serially, is the oracle.
  util::ThreadPool::set_global_threads(1);
  RandomForest oracle(
      forest_config(TreeConfig::Splitter::kReference, 12, 0x5eed));
  oracle.fit(data);

  for (std::size_t threads : kThreadCounts) {
    util::ThreadPool::set_global_threads(threads);
    RandomForest fast(
        forest_config(TreeConfig::Splitter::kPresorted, 12, 0x5eed));
    fast.fit(data);

    // Full structural diff of the packed forests.
    expect_arena_equal(fast.arena(), oracle.arena());

    // Arena walk == retained per-tree pointer walk, exactly.
    util::Rng probe_rng(0xbeef);
    std::vector<double> probe(data.feature_count());
    for (int rep = 0; rep < 20; ++rep) {
      for (auto& v : probe) v = probe_rng.gaussian(1.0, 2.0);
      EXPECT_EQ(fast.predict_proba(probe), oracle.predict_proba(probe));
      EXPECT_EQ(fast.predict_proba(probe),
                fast.predict_proba_reference(probe));
    }
  }
}

TEST_P(GoldenSplit, BlockedBatchMatchesReferenceWalkPerRow) {
  PoolSizeGuard guard;
  const Dataset data = make_dataset(GetParam(), 0xb10c);
  RandomForest forest(
      forest_config(TreeConfig::Splitter::kPresorted, 10, 0x77));
  forest.fit(data);

  std::vector<std::span<const double>> rows;
  for (std::size_t i = 0; i < data.size(); ++i) rows.push_back(data.row(i));

  for (std::size_t threads : kThreadCounts) {
    util::ThreadPool::set_global_threads(threads);
    const auto batched = forest.predict_proba_many(rows);
    ASSERT_EQ(batched.size(), rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(batched[i], forest.predict_proba_reference(rows[i]))
          << "row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, GoldenSplit,
    ::testing::Values(
        DatasetSpec{4, 20, 10, 0, 0},    // continuous features
        DatasetSpec{4, 20, 10, 4, 0},    // coarse quantization: duplicate-heavy
        DatasetSpec{6, 15, 8, 2, 2},     // duplicates + constant columns
        DatasetSpec{2, 40, 5, 1, 1},     // extreme ties, binary labels
        DatasetSpec{9, 8, 12, 0, 3}),    // many classes, several constants
    [](const ::testing::TestParamInfo<DatasetSpec>& info) {
      const auto& s = info.param;
      return "c" + std::to_string(s.classes) + "x" +
             std::to_string(s.per_class) + "f" + std::to_string(s.features) +
             "q" + std::to_string(s.quantize) + "k" +
             std::to_string(s.constant_columns);
    });

TEST(GoldenSplit, CrossValidationAccuraciesIdenticalAcrossSplitters) {
  PoolSizeGuard guard;
  const Dataset data = make_dataset({5, 12, 8, 3, 1}, 0xc5);
  for (std::size_t threads : kThreadCounts) {
    util::ThreadPool::set_global_threads(threads);
    auto presorted = forest_config(TreeConfig::Splitter::kPresorted, 8, 0x42);
    auto reference = forest_config(TreeConfig::Splitter::kReference, 8, 0x42);
    const auto a = cross_validate(data, presorted, 4, 0x99);
    const auto b = cross_validate(data, reference, 4, 0x99);
    EXPECT_EQ(a.top1_accuracy, b.top1_accuracy);
    EXPECT_EQ(a.top5_accuracy, b.top5_accuracy);
    EXPECT_EQ(a.evaluated, b.evaluated);
  }
}

}  // namespace
}  // namespace amperebleed::ml
