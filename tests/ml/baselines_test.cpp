#include "amperebleed/ml/baselines.hpp"

#include <gtest/gtest.h>

#include "amperebleed/util/rng.hpp"

namespace amperebleed::ml {
namespace {

Dataset blobs(int classes, int per_class, double spread, std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset d(2);
  for (int c = 0; c < classes; ++c) {
    for (int i = 0; i < per_class; ++i) {
      const std::vector<double> row = {rng.gaussian(c * 5.0, spread),
                                       rng.gaussian(-c * 3.0, spread)};
      d.add(row, c);
    }
  }
  return d;
}

TEST(Knn, ClassifiesSeparableBlobs) {
  const Dataset train = blobs(3, 30, 0.5, 1);
  const Dataset test = blobs(3, 10, 0.5, 2);
  KnnClassifier knn(5);
  knn.fit(train);
  int hits = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (knn.predict(test.row(i)) == test.label(i)) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / test.size(), 0.95);
}

TEST(Knn, OneNearestNeighbourMemorizesTraining) {
  const Dataset train = blobs(3, 15, 1.0, 3);
  KnnClassifier knn(1);
  knn.fit(train);
  for (std::size_t i = 0; i < train.size(); ++i) {
    EXPECT_EQ(knn.predict(train.row(i)), train.label(i));
  }
}

TEST(Knn, Validation) {
  EXPECT_THROW(KnnClassifier(0), std::invalid_argument);
  KnnClassifier knn(3);
  EXPECT_THROW(knn.fit(Dataset(2)), std::invalid_argument);
  const std::vector<double> x = {0.0, 0.0};
  EXPECT_THROW(static_cast<void>(knn.predict(x)), std::logic_error);
}

TEST(Knn, KLargerThanTrainingSetIsSafe) {
  Dataset d(1);
  const std::vector<double> a = {0.0};
  const std::vector<double> b = {10.0};
  d.add(a, 0);
  d.add(b, 1);
  KnnClassifier knn(25);
  knn.fit(d);
  EXPECT_NO_THROW(static_cast<void>(knn.predict(a)));
}

TEST(Centroid, ClassifiesByNearestMean) {
  const Dataset train = blobs(4, 25, 0.6, 4);
  CentroidClassifier centroid;
  centroid.fit(train);
  EXPECT_EQ(centroid.class_count(), 4u);
  const Dataset test = blobs(4, 10, 0.6, 5);
  int hits = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (centroid.predict(test.row(i)) == test.label(i)) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / test.size(), 0.95);
}

TEST(Centroid, Validation) {
  CentroidClassifier centroid;
  EXPECT_THROW(centroid.fit(Dataset(1)), std::invalid_argument);
  const std::vector<double> x = {0.0};
  EXPECT_THROW(static_cast<void>(centroid.predict(x)), std::logic_error);
}

TEST(ForestClassifier, AdapterWorksLikeForest) {
  const Dataset train = blobs(3, 30, 0.5, 6);
  ForestConfig config;
  config.n_trees = 15;
  ForestClassifier forest(config);
  forest.fit(train);
  int hits = 0;
  for (std::size_t i = 0; i < train.size(); ++i) {
    if (forest.predict(train.row(i)) == train.label(i)) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / train.size(), 0.95);
}

TEST(CrossValidateClassifier, AllThreeBeatChanceOnCleanData) {
  const Dataset data = blobs(3, 30, 0.8, 7);
  const auto run = [&](auto factory) {
    return cross_validate_classifier(data, factory, 5, 9).top1_accuracy;
  };
  const double knn = run([](std::uint64_t) {
    return std::make_unique<KnnClassifier>(3);
  });
  const double centroid = run([](std::uint64_t) {
    return std::make_unique<CentroidClassifier>();
  });
  const double forest = run([](std::uint64_t seed) {
    ForestConfig c;
    c.n_trees = 15;
    c.seed = seed;
    return std::make_unique<ForestClassifier>(c);
  });
  EXPECT_GT(knn, 0.9);
  EXPECT_GT(centroid, 0.9);
  EXPECT_GT(forest, 0.9);
}

TEST(CrossValidateClassifier, EvaluatesEverySample) {
  const Dataset data = blobs(2, 20, 1.0, 8);
  const auto result = cross_validate_classifier(
      data,
      [](std::uint64_t) { return std::make_unique<CentroidClassifier>(); },
      4, 10);
  EXPECT_EQ(result.evaluated, data.size());
}

}  // namespace
}  // namespace amperebleed::ml
