#include "amperebleed/core/features.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace amperebleed::core {
namespace {

TEST(SamplesForDuration, FloorsPartialSamples) {
  EXPECT_EQ(samples_for_duration(sim::seconds(5), sim::milliseconds(35)),
            142u);
  EXPECT_EQ(samples_for_duration(sim::seconds(1), sim::milliseconds(35)),
            28u);
  EXPECT_EQ(samples_for_duration(sim::milliseconds(34), sim::milliseconds(35)),
            0u);
  EXPECT_EQ(samples_for_duration(sim::seconds(1), sim::TimeNs{0}), 0u);
}

TEST(Standardize, ZeroMeanUnitVariance) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  standardize(xs);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum, 0.0, 1e-12);
  EXPECT_NEAR(sum_sq / xs.size(), 1.0, 1e-12);
}

TEST(Standardize, ConstantVectorBecomesZeros) {
  std::vector<double> xs = {7.0, 7.0, 7.0};
  standardize(xs);
  for (double x : xs) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(AddTrace, AppendsPrefixWithLabel) {
  Trace t({}, sim::TimeNs{0}, sim::milliseconds(1));
  for (int i = 0; i < 5; ++i) t.push(i * 10.0);
  ml::Dataset d(3);
  add_trace(d, t, 4, 3);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.label(0), 4);
  EXPECT_DOUBLE_EQ(d.row(0)[2], 20.0);
}

TEST(AddTrace, GapAwareVariantReconstructsBeforeTruncation) {
  Trace t({}, sim::TimeNs{0}, sim::milliseconds(1));
  t.push(10.0);
  t.push_gap();
  t.push(30.0);
  t.push(40.0);
  ml::Dataset d(3);
  add_trace(d, t, 2, 3, GapPolicy::LinearInterpolate);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d.row(0)[0], 10.0);
  EXPECT_DOUBLE_EQ(d.row(0)[1], 20.0);  // reconstructed, not the 0.0 slot
  EXPECT_DOUBLE_EQ(d.row(0)[2], 30.0);
  // Fixed-length feature vectors cannot drop samples.
  EXPECT_THROW(add_trace(d, t, 2, 3, GapPolicy::Drop), std::invalid_argument);
}

TEST(AddTrace, GapAwareVariantMatchesPlainPathOnGaplessTraces) {
  Trace t({}, sim::TimeNs{0}, sim::milliseconds(1));
  for (int i = 0; i < 4; ++i) t.push(i * 10.0);
  ml::Dataset plain(3);
  add_trace(plain, t, 1, 3);
  ml::Dataset gap_aware(3);
  add_trace(gap_aware, t, 1, 3, GapPolicy::HoldLast);
  ASSERT_EQ(plain.size(), gap_aware.size());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(plain.row(0)[i], gap_aware.row(0)[i]);
  }
}

TEST(BuildDataset, LabelsFollowGroupOrder) {
  std::vector<std::vector<Trace>> groups;
  for (int label = 0; label < 3; ++label) {
    std::vector<Trace> traces;
    for (int rep = 0; rep < 2; ++rep) {
      Trace t({}, sim::TimeNs{0}, sim::milliseconds(1));
      t.push(label * 100.0);
      t.push(label * 100.0 + 1.0);
      traces.push_back(std::move(t));
    }
    groups.push_back(std::move(traces));
  }
  const ml::Dataset d = build_dataset(groups, 2);
  EXPECT_EQ(d.size(), 6u);
  EXPECT_EQ(d.class_count(), 3);
  EXPECT_EQ(d.label(0), 0);
  EXPECT_EQ(d.label(5), 2);
  EXPECT_DOUBLE_EQ(d.row(4)[0], 200.0);
}

TEST(BuildDataset, ShortTraceThrows) {
  std::vector<std::vector<Trace>> groups(1);
  Trace t({}, sim::TimeNs{0}, sim::milliseconds(1));
  t.push(1.0);
  groups[0].push_back(std::move(t));
  EXPECT_THROW(build_dataset(groups, 2), std::invalid_argument);
}

}  // namespace
}  // namespace amperebleed::core
