#include "amperebleed/core/covert.hpp"

#include <gtest/gtest.h>

#include "amperebleed/core/sampler.hpp"
#include "amperebleed/soc/soc.hpp"

namespace amperebleed::core {
namespace {

TEST(CovertBits, ByteRoundTrip) {
  const std::string msg = "AmpereBleed!";
  const auto bits = bytes_to_bits(msg);
  EXPECT_EQ(bits.size(), msg.size() * 8);
  EXPECT_EQ(bits_to_bytes(bits), msg);
}

TEST(CovertBits, MsbFirstEncoding) {
  const auto bits = bytes_to_bits("\x80");
  ASSERT_EQ(bits.size(), 8u);
  EXPECT_TRUE(bits[0]);
  for (std::size_t i = 1; i < 8; ++i) EXPECT_FALSE(bits[i]);
  // Truncated trailing bits are dropped on reassembly.
  EXPECT_EQ(bits_to_bytes({true, false, true}).size(), 0u);
}

TEST(CovertBitErrorRate, CountsDifferencesAndLengthMismatch) {
  EXPECT_DOUBLE_EQ(bit_error_rate({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(bit_error_rate({1, 0, 1, 0}, {1, 0, 1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(bit_error_rate({1, 0, 1, 0}, {1, 1, 1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(bit_error_rate({1, 0}, {1}), 0.5);
}

TEST(CovertEncode, SchedulesActivationsPerBit) {
  CovertChannelConfig config;
  config.preamble_bits = 2;  // 1,0
  const std::vector<bool> payload = {true, true, false};
  const auto virus =
      encode_transmission(config, payload, sim::milliseconds(100));
  const auto activity = virus.activity();
  const auto& fpga = activity.on(power::Rail::FpgaLogic);
  const double idle = virus.current_for_groups(0);
  const double high = virus.current_for_groups(config.groups_high);
  const auto at_bit = [&](int i) {
    return fpga.value_at(sim::TimeNs{sim::milliseconds(100).ns +
                                     config.bit_period.ns * i +
                                     config.bit_period.ns / 2});
  };
  EXPECT_DOUBLE_EQ(at_bit(0), high);  // preamble 1
  EXPECT_DOUBLE_EQ(at_bit(1), idle);  // preamble 0
  EXPECT_DOUBLE_EQ(at_bit(2), high);  // payload 1
  EXPECT_DOUBLE_EQ(at_bit(3), high);  // payload 1
  EXPECT_DOUBLE_EQ(at_bit(4), idle);  // payload 0
  // Idle after the frame.
  EXPECT_DOUBLE_EQ(at_bit(6), idle);
}

TEST(CovertEncode, Validation) {
  CovertChannelConfig config;
  config.groups_high = 1'000;  // > 160 groups
  EXPECT_THROW(encode_transmission(config, {true}, sim::TimeNs{0}),
               std::invalid_argument);
  CovertChannelConfig zero;
  zero.bit_period = sim::TimeNs{0};
  EXPECT_THROW(encode_transmission(zero, {true}, sim::TimeNs{0}),
               std::invalid_argument);
}

TEST(CovertEndToEnd, MessageSurvivesTheFullSensorPath) {
  const std::string message = "exfil";
  const auto payload = bytes_to_bits(message);
  CovertChannelConfig config;

  const sim::TimeNs tx_start = sim::milliseconds(200);
  auto virus = encode_transmission(config, payload, tx_start);

  soc::Soc soc(soc::zcu102_config(0xc0de));
  soc.fabric().deploy(virus.descriptor());
  soc.add_activity(virus.activity());
  soc.finalize();

  Sampler receiver(soc);
  SamplerConfig sc;
  sc.period = sim::milliseconds(5);
  const sim::TimeNs span = transmission_duration(config, payload.size());
  sc.sample_count = static_cast<std::size_t>(span.ns / sc.period.ns) + 40;
  const auto trace = receiver.collect(
      {power::Rail::FpgaLogic, Quantity::Current}, tx_start, sc);

  const auto decoded =
      decode_transmission(config, trace, tx_start, payload.size());
  EXPECT_DOUBLE_EQ(bit_error_rate(payload, decoded.bits), 0.0);
  EXPECT_EQ(bits_to_bytes(decoded.bits), message);
  EXPECT_GT(decoded.high_level_ma, decoded.low_level_ma + 1'000.0);
}

TEST(CovertEndToEnd, TooFastBitPeriodCorruptsTheMessage) {
  const auto payload = bytes_to_bits("x");
  CovertChannelConfig config;
  config.bit_period = sim::milliseconds(20);  // < one conversion interval

  const sim::TimeNs tx_start = sim::milliseconds(200);
  auto virus = encode_transmission(config, payload, tx_start);
  soc::Soc soc(soc::zcu102_config(0xc0df));
  soc.fabric().deploy(virus.descriptor());
  soc.add_activity(virus.activity());
  soc.finalize();

  Sampler receiver(soc);
  SamplerConfig sc;
  sc.period = sim::milliseconds(2);
  const sim::TimeNs span = transmission_duration(config, payload.size());
  sc.sample_count = static_cast<std::size_t>(span.ns / sc.period.ns) + 60;
  const auto trace = receiver.collect(
      {power::Rail::FpgaLogic, Quantity::Current}, tx_start, sc);
  const auto decoded =
      decode_transmission(config, trace, tx_start, payload.size());
  EXPECT_GT(bit_error_rate(payload, decoded.bits), 0.1);
}

TEST(CovertDecode, TraceTooShortThrows) {
  CovertChannelConfig config;
  Trace stub({}, sim::TimeNs{0}, sim::milliseconds(5));
  stub.push(100.0);
  EXPECT_THROW(decode_transmission(config, stub, sim::TimeNs{0}, 8),
               std::invalid_argument);
}

TEST(CovertConfig, RawThroughput) {
  CovertChannelConfig config;
  config.bit_period = sim::milliseconds(100);
  EXPECT_DOUBLE_EQ(config.raw_bits_per_second(), 10.0);
}

}  // namespace
}  // namespace amperebleed::core
