#include "amperebleed/core/trace.hpp"

#include <gtest/gtest.h>

namespace amperebleed::core {
namespace {

TEST(ChannelNaming, AttrsMatchHwmonConventions) {
  EXPECT_EQ(quantity_attr(Quantity::Current), "curr1_input");
  EXPECT_EQ(quantity_attr(Quantity::Voltage), "in1_input");
  EXPECT_EQ(quantity_attr(Quantity::Power), "power1_input");
  EXPECT_EQ(quantity_unit(Quantity::Current), "mA");
  EXPECT_EQ(quantity_unit(Quantity::Voltage), "mV");
  EXPECT_EQ(quantity_unit(Quantity::Power), "uW");
}

TEST(ChannelNaming, NameCombinesQuantityAndRail) {
  const Channel c{power::Rail::FpgaLogic, Quantity::Current};
  EXPECT_EQ(channel_name(c), "current(fpga_logic)");
  const Channel v{power::Rail::Ddr, Quantity::Voltage};
  EXPECT_EQ(channel_name(v), "voltage(ddr)");
}

TEST(Trace, Validation) {
  const Channel c{};
  EXPECT_THROW(Trace(c, sim::TimeNs{0}, sim::TimeNs{0}),
               std::invalid_argument);
}

TEST(Trace, TimestampsFromStartAndPeriod) {
  Trace t({}, sim::milliseconds(100), sim::milliseconds(35));
  t.push(1.0);
  t.push(2.0);
  t.push(3.0);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.time_of(0), sim::milliseconds(100));
  EXPECT_EQ(t.time_of(2), sim::milliseconds(170));
  EXPECT_EQ(t.duration(), sim::milliseconds(105));
}

TEST(Trace, ValuesAccessors) {
  Trace t({}, sim::TimeNs{0}, sim::milliseconds(1));
  EXPECT_TRUE(t.empty());
  t.push(5.0);
  EXPECT_DOUBLE_EQ(t[0], 5.0);
  EXPECT_THROW(static_cast<void>(t[1]), std::out_of_range);
  EXPECT_EQ(t.values().size(), 1u);
}

TEST(Trace, GaplessTraceCarriesNoMask) {
  // The validity vector only materializes on the first push_gap(), so the
  // fault-free fast path stays allocation-identical to the legacy Trace.
  Trace t({}, sim::TimeNs{0}, sim::milliseconds(1));
  for (int i = 0; i < 5; ++i) t.push(i);
  EXPECT_TRUE(t.validity().empty());
  EXPECT_TRUE(t.fully_valid());
  EXPECT_EQ(t.gap_count(), 0u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_TRUE(t.valid(i));
}

TEST(Trace, PushGapBackfillsAndMarks) {
  Trace t({}, sim::TimeNs{0}, sim::milliseconds(1));
  t.push(1.0);
  t.push(2.0);
  t.push_gap();
  t.push(4.0);
  t.push_gap();
  ASSERT_EQ(t.size(), 5u);
  ASSERT_EQ(t.validity().size(), 5u);  // backfilled on first gap
  EXPECT_TRUE(t.valid(0));
  EXPECT_TRUE(t.valid(1));
  EXPECT_FALSE(t.valid(2));
  EXPECT_TRUE(t.valid(3));
  EXPECT_FALSE(t.valid(4));
  EXPECT_DOUBLE_EQ(t[2], 0.0);  // gap placeholder
  EXPECT_EQ(t.gap_count(), 2u);
  EXPECT_FALSE(t.fully_valid());
  // Timestamps/duration are unaffected: gaps occupy their sample slot.
  EXPECT_EQ(t.duration(), sim::milliseconds(5));
}

TEST(Trace, GapBoundsChecked) {
  Trace t({}, sim::TimeNs{0}, sim::milliseconds(1));
  t.push(1.0);
  t.push_gap();
  EXPECT_THROW(static_cast<void>(t.valid(2)), std::out_of_range);
}

TEST(Trace, PrefixExtractsFeatures) {
  Trace t({}, sim::TimeNs{0}, sim::milliseconds(1));
  for (int i = 0; i < 10; ++i) t.push(i);
  const auto p = t.prefix(4);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_DOUBLE_EQ(p[3], 3.0);
  EXPECT_THROW(t.prefix(11), std::invalid_argument);
}

}  // namespace
}  // namespace amperebleed::core
