#include "amperebleed/core/hw_estimate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace amperebleed::core {
namespace {

std::vector<HwCalibrationPoint> linear_points(double slope, double intercept) {
  std::vector<HwCalibrationPoint> points;
  for (std::size_t hw : {64u, 256u, 512u, 768u, 1024u}) {
    points.push_back({hw, slope * static_cast<double>(hw) + intercept});
  }
  return points;
}

TEST(HwEstimator, RecoversLinearCalibration) {
  const auto est = HammingWeightEstimator::fit(linear_points(0.156, 737.0));
  EXPECT_NEAR(est.slope_ma_per_bit(), 0.156, 1e-9);
  EXPECT_NEAR(est.intercept_ma(), 737.0, 1e-6);
  EXPECT_NEAR(est.predict_current_ma(512.0), 0.156 * 512 + 737.0, 1e-6);
}

TEST(HwEstimator, FitValidation) {
  std::vector<HwCalibrationPoint> one = {{64, 700.0}};
  EXPECT_THROW(HammingWeightEstimator::fit(one), std::invalid_argument);
  std::vector<HwCalibrationPoint> flat = {{64, 700.0}, {512, 700.0}};
  EXPECT_THROW(HammingWeightEstimator::fit(flat), std::invalid_argument);
  std::vector<HwCalibrationPoint> inverted = {{64, 800.0}, {512, 700.0}};
  EXPECT_THROW(HammingWeightEstimator::fit(inverted), std::invalid_argument);
}

TEST(HwEstimator, EstimateInvertsCalibration) {
  const auto est = HammingWeightEstimator::fit(linear_points(0.2, 700.0));
  stats::Summary s;
  s.mean = 700.0 + 0.2 * 300.0;
  s.stddev = 1.0;
  const auto e = est.estimate(s, 400);
  EXPECT_NEAR(e.hamming_weight, 300.0, 1e-9);
  EXPECT_LT(e.ci_low, 300.0);
  EXPECT_GT(e.ci_high, 300.0);
  // CI half-width: 1.96 * (1/sqrt(400)) / 0.2 = 0.49 bits.
  EXPECT_NEAR(e.ci_high - e.ci_low, 2 * 0.49, 0.01);
}

TEST(HwEstimator, EstimateClampsToKeyWidth) {
  const auto est = HammingWeightEstimator::fit(linear_points(0.2, 700.0), 1024);
  stats::Summary low;
  low.mean = 0.0;  // far below the intercept
  low.stddev = 1.0;
  EXPECT_DOUBLE_EQ(est.estimate(low, 100).hamming_weight, 0.0);
  stats::Summary high;
  high.mean = 10'000.0;
  high.stddev = 1.0;
  EXPECT_DOUBLE_EQ(est.estimate(high, 100).hamming_weight, 1024.0);
}

TEST(HwEstimator, MoreSamplesTightenTheInterval) {
  const auto est = HammingWeightEstimator::fit(linear_points(0.15, 737.0));
  stats::Summary s;
  s.mean = 800.0;
  s.stddev = 3.0;
  const auto coarse = est.estimate(s, 10);
  const auto fine = est.estimate(s, 1000);
  EXPECT_LT(fine.ci_high - fine.ci_low, coarse.ci_high - coarse.ci_low);
  EXPECT_THROW(static_cast<void>(est.estimate(s, 0)), std::invalid_argument);
}

TEST(Log2Binomial, KnownValues) {
  EXPECT_NEAR(log2_binomial(4, 2), std::log2(6.0), 1e-9);
  EXPECT_NEAR(log2_binomial(10, 0), 0.0, 1e-9);
  EXPECT_NEAR(log2_binomial(10, 10), 0.0, 1e-9);
  // C(1024, 512) ~ 2^1018.67 (central binomial of the 2^1024 space).
  EXPECT_NEAR(log2_binomial(1024, 512), 1018.674, 0.01);
  EXPECT_THROW(log2_binomial(4, 5), std::invalid_argument);
}

TEST(Log2SearchSpace, SingleWeightEqualsBinomial) {
  EXPECT_NEAR(log2_search_space(1024, 512.0, 512.0),
              log2_binomial(1024, 512), 1e-9);
}

TEST(Log2SearchSpace, FullRangeIsAllKeys) {
  // Sum over all weights = 2^bits exactly.
  EXPECT_NEAR(log2_search_space(64, 0.0, 64.0), 64.0, 1e-9);
}

TEST(Log2SearchSpace, NarrowIntervalShrinksSpace) {
  const double narrow = log2_search_space(1024, 510.0, 514.0);
  const double wide = log2_search_space(1024, 400.0, 600.0);
  EXPECT_LT(narrow, wide);
  EXPECT_LT(wide, 1024.0);
  // Knowing HW to +/-2 bits around 512 still leaves ~2^1021 keys — the
  // reduction is real but the paper's "precursor" framing is the point.
  EXPECT_GT(narrow, 1000.0);
}

TEST(Log2SearchSpace, ExtremeWeightsAreTinySpaces) {
  // HW=1: only 1024 keys -> 10 bits.
  EXPECT_NEAR(log2_search_space(1024, 1.0, 1.0), std::log2(1024.0), 1e-9);
  EXPECT_NEAR(log2_search_space(1024, 1024.0, 1024.0), 0.0, 1e-9);
}

TEST(Log2SearchSpace, ClampsAndHandlesEmptyRounding) {
  EXPECT_NEAR(log2_search_space(64, -5.0, 70.0), 64.0, 1e-9);
  // An interval like [3.2, 3.8] rounds empty; falls back to nearest weight.
  EXPECT_NEAR(log2_search_space(64, 3.2, 3.8), log2_binomial(64, 4), 1e-9);
}

}  // namespace
}  // namespace amperebleed::core
