#include "amperebleed/core/rsa_attack.hpp"

#include <gtest/gtest.h>

namespace amperebleed::core {
namespace {

RsaAttackConfig small_config() {
  RsaAttackConfig c;
  c.sample_count = 1'500;             // 1.5 s at 1 kHz
  c.hamming_weights = {1, 256, 512, 768, 1024};
  c.seed = 7;
  return c;
}

TEST(RsaAttack, CurrentMeansIncreaseWithHammingWeight) {
  const auto result = run_rsa_attack(small_config());
  ASSERT_EQ(result.keys.size(), 5u);
  for (std::size_t i = 1; i < result.keys.size(); ++i) {
    EXPECT_GT(result.keys[i].current_ma.mean,
              result.keys[i - 1].current_ma.mean)
        << "HW " << result.keys[i].hamming_weight;
  }
}

TEST(RsaAttack, WidelySpacedWeightsFullySeparableInCurrent) {
  const auto result = run_rsa_attack(small_config());
  EXPECT_EQ(result.current_groups, 5u);
}

TEST(RsaAttack, PowerChannelCoarserThanCurrent) {
  const auto result = run_rsa_attack(small_config());
  EXPECT_LE(result.power_groups, result.current_groups);
}

TEST(RsaAttack, ObservationsCarrySampleVectors) {
  RsaAttackConfig c = small_config();
  c.hamming_weights = {512};
  const auto result = run_rsa_attack(c);
  ASSERT_EQ(result.keys.size(), 1u);
  const auto& k = result.keys[0];
  EXPECT_EQ(k.current_samples_ma.size(), c.sample_count);
  EXPECT_EQ(k.power_samples_mw.size(), c.sample_count);
  EXPECT_GT(k.encryptions_observed, 50u);  // ~10.8 ms per encryption
  EXPECT_EQ(k.hamming_weight, 512u);
  EXPECT_GT(k.current_ma.mean, 0.0);
}

TEST(RsaAttack, DefaultScheduleIsPaper17) {
  const auto weights = default_hamming_weights();
  EXPECT_EQ(weights.size(), 17u);
  EXPECT_EQ(weights.front(), 1u);
  EXPECT_EQ(weights.back(), 1024u);
}

TEST(RsaAttack, GroupIdsAreNondecreasing) {
  const auto result = run_rsa_attack(small_config());
  for (std::size_t i = 1; i < result.current_group_ids.size(); ++i) {
    EXPECT_GE(result.current_group_ids[i], result.current_group_ids[i - 1]);
  }
  for (std::size_t i = 1; i < result.power_group_ids.size(); ++i) {
    EXPECT_GE(result.power_group_ids[i], result.power_group_ids[i - 1]);
  }
}

TEST(RsaAttack, LeaveOneOutEstimatesLandNearTruth) {
  const auto result = run_rsa_attack(small_config());
  for (const auto& key : result.keys) {
    // The calibration is linear and the channel is strong: LOO estimates
    // should be within a few tens of bits of the true weight.
    EXPECT_NEAR(key.loo_estimate.hamming_weight,
                static_cast<double>(key.hamming_weight), 40.0)
        << "HW " << key.hamming_weight;
    EXPECT_LE(key.loo_estimate.ci_low, key.loo_estimate.ci_high);
    // Residual space must be a genuine reduction of the 2^1024 space.
    EXPECT_LT(key.log2_residual_search_space,
              result.log2_full_search_space);
    EXPECT_GE(key.log2_residual_search_space, 0.0);
  }
  EXPECT_DOUBLE_EQ(result.log2_full_search_space, 1024.0);
  EXPECT_GT(result.independent_samples_per_key, 10u);
}

TEST(RsaAttack, TwoKeysSkipLeaveOneOutGracefully) {
  RsaAttackConfig c = small_config();
  c.hamming_weights = {64, 960};
  c.sample_count = 400;
  const auto result = run_rsa_attack(c);
  // LOO needs >= 3 keys (2 calibration points per fold); with 2 keys the
  // estimates stay default-initialized.
  EXPECT_DOUBLE_EQ(result.keys[0].loo_estimate.hamming_weight, 0.0);
}

TEST(RsaAttack, DeterministicForSeed) {
  RsaAttackConfig c = small_config();
  c.hamming_weights = {64, 960};
  c.sample_count = 400;
  const auto a = run_rsa_attack(c);
  const auto b = run_rsa_attack(c);
  EXPECT_DOUBLE_EQ(a.keys[0].current_ma.mean, b.keys[0].current_ma.mean);
  EXPECT_DOUBLE_EQ(a.keys[1].power_mw.mean, b.keys[1].power_mw.mean);
}

}  // namespace
}  // namespace amperebleed::core
