#include "amperebleed/core/preprocess.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "amperebleed/stats/descriptive.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::core {
namespace {

TEST(Detrend, RemovesLinearRamp) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(3.0 * i + 10.0);
  detrend(xs);
  for (double x : xs) EXPECT_NEAR(x, 0.0, 1e-9);
}

TEST(Detrend, PreservesResidualStructure) {
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(0.5 * i + std::sin(i * 0.3));
  }
  detrend(xs);
  // The sine survives; the ramp is gone.
  const auto s = stats::summarize(xs);
  EXPECT_NEAR(s.mean, 0.0, 0.05);
  EXPECT_GT(s.stddev, 0.5);
  EXPECT_LT(s.stddev, 1.0);
}

TEST(Detrend, ShortInputsUntouched) {
  std::vector<double> one = {5.0};
  detrend(one);
  EXPECT_DOUBLE_EQ(one[0], 5.0);
}

TEST(Resample, IdentityWhenSameLength) {
  const std::vector<double> xs = {1.0, 3.0, 2.0, 5.0};
  const auto out = resample(xs, 4);
  EXPECT_EQ(out, xs);
}

TEST(Resample, LinearInterpolationUpsample) {
  const std::vector<double> xs = {0.0, 2.0};
  const auto out = resample(xs, 5);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 1.0);
  EXPECT_DOUBLE_EQ(out[4], 2.0);
}

TEST(Resample, DownsampleKeepsEndpoints) {
  std::vector<double> xs;
  for (int i = 0; i <= 100; ++i) xs.push_back(i);
  const auto out = resample(xs, 11);
  EXPECT_DOUBLE_EQ(out.front(), 0.0);
  EXPECT_DOUBLE_EQ(out.back(), 100.0);
  EXPECT_NEAR(out[5], 50.0, 1e-9);
}

TEST(Resample, Validation) {
  EXPECT_THROW(resample({}, 5), std::invalid_argument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(resample(xs, 0), std::invalid_argument);
  EXPECT_EQ(resample(xs, 3), (std::vector<double>{1.0, 1.0, 1.0}));
}

TEST(DeduplicateRuns, CollapsesRepeatedRegisterReads) {
  const std::vector<double> xs = {5, 5, 5, 7, 7, 5, 6, 6, 6, 6};
  EXPECT_EQ(deduplicate_runs(xs), (std::vector<double>{5, 7, 5, 6}));
  EXPECT_TRUE(deduplicate_runs({}).empty());
}

TEST(BestAlignmentShift, RecoversKnownLag) {
  util::Rng rng(1);
  std::vector<double> reference;
  for (int i = 0; i < 300; ++i) {
    reference.push_back(std::sin(i * 0.21) + 0.3 * std::sin(i * 0.049) +
                        rng.gaussian(0.0, 0.02));
  }
  for (int true_lag : {-7, 0, 9}) {
    const auto probe = shift(reference, true_lag);
    EXPECT_EQ(best_alignment_shift(reference, probe, 20), true_lag)
        << "lag " << true_lag;
  }
}

TEST(BestAlignmentShift, DegenerateInputsReturnZero) {
  const std::vector<double> tiny = {1.0, 2.0};
  EXPECT_EQ(best_alignment_shift(tiny, tiny, 5), 0);
}

TEST(Shift, PadsWithEdgeValues) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(shift(xs, 1), (std::vector<double>{1.0, 1.0, 2.0, 3.0}));
  EXPECT_EQ(shift(xs, -2), (std::vector<double>{3.0, 4.0, 4.0, 4.0}));
  EXPECT_EQ(shift(xs, 0), xs);
  EXPECT_TRUE(shift({}, 3).empty());
}

TEST(SlidingMean, WindowsAndStride) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(sliding_mean(xs, 2, 2), (std::vector<double>{1.5, 3.5, 5.5}));
  EXPECT_EQ(sliding_mean(xs, 3, 3), (std::vector<double>{2.0, 5.0}));
  // Truncated tail dropped.
  EXPECT_EQ(sliding_mean(xs, 4, 4).size(), 1u);
  EXPECT_THROW(sliding_mean(xs, 0, 1), std::invalid_argument);
  EXPECT_THROW(sliding_mean(xs, 1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace amperebleed::core
