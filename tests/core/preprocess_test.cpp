#include "amperebleed/core/preprocess.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "amperebleed/core/trace.hpp"
#include "amperebleed/stats/descriptive.hpp"
#include "amperebleed/util/rng.hpp"

namespace amperebleed::core {
namespace {

TEST(Detrend, RemovesLinearRamp) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(3.0 * i + 10.0);
  detrend(xs);
  for (double x : xs) EXPECT_NEAR(x, 0.0, 1e-9);
}

TEST(Detrend, PreservesResidualStructure) {
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(0.5 * i + std::sin(i * 0.3));
  }
  detrend(xs);
  // The sine survives; the ramp is gone.
  const auto s = stats::summarize(xs);
  EXPECT_NEAR(s.mean, 0.0, 0.05);
  EXPECT_GT(s.stddev, 0.5);
  EXPECT_LT(s.stddev, 1.0);
}

TEST(Detrend, ShortInputsUntouched) {
  std::vector<double> one = {5.0};
  detrend(one);
  EXPECT_DOUBLE_EQ(one[0], 5.0);
}

TEST(Resample, IdentityWhenSameLength) {
  const std::vector<double> xs = {1.0, 3.0, 2.0, 5.0};
  const auto out = resample(xs, 4);
  EXPECT_EQ(out, xs);
}

TEST(Resample, LinearInterpolationUpsample) {
  const std::vector<double> xs = {0.0, 2.0};
  const auto out = resample(xs, 5);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 1.0);
  EXPECT_DOUBLE_EQ(out[4], 2.0);
}

TEST(Resample, DownsampleKeepsEndpoints) {
  std::vector<double> xs;
  for (int i = 0; i <= 100; ++i) xs.push_back(i);
  const auto out = resample(xs, 11);
  EXPECT_DOUBLE_EQ(out.front(), 0.0);
  EXPECT_DOUBLE_EQ(out.back(), 100.0);
  EXPECT_NEAR(out[5], 50.0, 1e-9);
}

TEST(Resample, Validation) {
  EXPECT_THROW(resample({}, 5), std::invalid_argument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(resample(xs, 0), std::invalid_argument);
  EXPECT_EQ(resample(xs, 3), (std::vector<double>{1.0, 1.0, 1.0}));
}

TEST(DeduplicateRuns, CollapsesRepeatedRegisterReads) {
  const std::vector<double> xs = {5, 5, 5, 7, 7, 5, 6, 6, 6, 6};
  EXPECT_EQ(deduplicate_runs(xs), (std::vector<double>{5, 7, 5, 6}));
  EXPECT_TRUE(deduplicate_runs({}).empty());
}

TEST(BestAlignmentShift, RecoversKnownLag) {
  util::Rng rng(1);
  std::vector<double> reference;
  for (int i = 0; i < 300; ++i) {
    reference.push_back(std::sin(i * 0.21) + 0.3 * std::sin(i * 0.049) +
                        rng.gaussian(0.0, 0.02));
  }
  for (int true_lag : {-7, 0, 9}) {
    const auto probe = shift(reference, true_lag);
    EXPECT_EQ(best_alignment_shift(reference, probe, 20), true_lag)
        << "lag " << true_lag;
  }
}

TEST(BestAlignmentShift, DegenerateInputsReturnZero) {
  const std::vector<double> tiny = {1.0, 2.0};
  EXPECT_EQ(best_alignment_shift(tiny, tiny, 5), 0);
}

TEST(Shift, PadsWithEdgeValues) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(shift(xs, 1), (std::vector<double>{1.0, 1.0, 2.0, 3.0}));
  EXPECT_EQ(shift(xs, -2), (std::vector<double>{3.0, 4.0, 4.0, 4.0}));
  EXPECT_EQ(shift(xs, 0), xs);
  EXPECT_TRUE(shift({}, 3).empty());
}

TEST(SlidingMean, WindowsAndStride) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(sliding_mean(xs, 2, 2), (std::vector<double>{1.5, 3.5, 5.5}));
  EXPECT_EQ(sliding_mean(xs, 3, 3), (std::vector<double>{2.0, 5.0}));
  // Truncated tail dropped.
  EXPECT_EQ(sliding_mean(xs, 4, 4).size(), 1u);
  EXPECT_THROW(sliding_mean(xs, 0, 1), std::invalid_argument);
  EXPECT_THROW(sliding_mean(xs, 1, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Gap reconstruction (resilient acquisition records failed reads as gaps).

TEST(GapPolicyNames, RoundTrip) {
  for (const GapPolicy p : kAllGapPolicies) {
    const auto back = gap_policy_from_name(gap_policy_name(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(gap_policy_from_name("no-such-policy").has_value());
}

TEST(FillGaps, EmptyMaskMeansAllValid) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  for (const GapPolicy p : kAllGapPolicies) {
    EXPECT_EQ(fill_gaps(xs, {}, p), xs) << gap_policy_name(p);
  }
}

TEST(FillGaps, MaskLengthMismatchThrows) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<std::uint8_t> mask = {1, 1, 1};
  EXPECT_THROW(fill_gaps(xs, mask, GapPolicy::HoldLast),
               std::invalid_argument);
}

TEST(FillGaps, HoldLastForwardFillsAndBackfillsLeadingGaps) {
  const std::vector<double> xs = {0.0, 0.0, 5.0, 0.0, 0.0, 8.0, 0.0};
  const std::vector<std::uint8_t> mask = {0, 0, 1, 0, 0, 1, 0};
  const auto out = fill_gaps(xs, mask, GapPolicy::HoldLast);
  const std::vector<double> want = {5.0, 5.0, 5.0, 5.0, 5.0, 8.0, 8.0};
  EXPECT_EQ(out, want);
}

TEST(FillGaps, LinearInterpolatesBetweenValidNeighbours) {
  const std::vector<double> xs = {2.0, 0.0, 0.0, 8.0, 0.0};
  const std::vector<std::uint8_t> mask = {1, 0, 0, 1, 0};
  const auto out = fill_gaps(xs, mask, GapPolicy::LinearInterpolate);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 4.0);
  EXPECT_DOUBLE_EQ(out[2], 6.0);
  EXPECT_DOUBLE_EQ(out[3], 8.0);
  EXPECT_DOUBLE_EQ(out[4], 8.0);  // trailing gap clamps
}

TEST(FillGaps, LinearClampsLeadingGaps) {
  const std::vector<double> xs = {0.0, 0.0, 3.0, 4.0};
  const std::vector<std::uint8_t> mask = {0, 0, 1, 1};
  const auto out = fill_gaps(xs, mask, GapPolicy::LinearInterpolate);
  const std::vector<double> want = {3.0, 3.0, 3.0, 4.0};
  EXPECT_EQ(out, want);
}

TEST(FillGaps, DropRemovesInvalidSamples) {
  const std::vector<double> xs = {1.0, 0.0, 3.0, 0.0};
  const std::vector<std::uint8_t> mask = {1, 0, 1, 0};
  const auto out = fill_gaps(xs, mask, GapPolicy::Drop);
  const std::vector<double> want = {1.0, 3.0};
  EXPECT_EQ(out, want);
}

TEST(FillGaps, AllInvalidReconstructsToZerosOrEmpty) {
  const std::vector<double> xs = {7.0, 7.0};
  const std::vector<std::uint8_t> mask = {0, 0};
  EXPECT_EQ(fill_gaps(xs, mask, GapPolicy::HoldLast),
            (std::vector<double>{0.0, 0.0}));
  EXPECT_EQ(fill_gaps(xs, mask, GapPolicy::LinearInterpolate),
            (std::vector<double>{0.0, 0.0}));
  EXPECT_TRUE(fill_gaps(xs, mask, GapPolicy::Drop).empty());
}

TEST(FillGaps, TraceOverloadUsesItsMask) {
  Trace t({}, sim::TimeNs{0}, sim::milliseconds(1));
  t.push(10.0);
  t.push_gap();
  t.push(30.0);
  const auto held = fill_gaps(t, GapPolicy::HoldLast);
  EXPECT_EQ(held, (std::vector<double>{10.0, 10.0, 30.0}));
  const auto lerp = fill_gaps(t, GapPolicy::LinearInterpolate);
  EXPECT_EQ(lerp, (std::vector<double>{10.0, 20.0, 30.0}));
}

}  // namespace
}  // namespace amperebleed::core
