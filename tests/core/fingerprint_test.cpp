#include "amperebleed/core/fingerprint.hpp"

#include <gtest/gtest.h>

namespace amperebleed::core {
namespace {

FingerprintConfig small_config() {
  FingerprintConfig c;
  c.model_limit = 4;          // MobileNet-V1 variants + MobileNet-V2
  c.traces_per_model = 6;
  c.folds = 3;
  c.trace_duration = sim::seconds(2);
  c.durations_s = {1.0, 2.0};
  c.forest.n_trees = 25;
  c.seed = 5;
  return c;
}

TEST(Fingerprint, Table3ChannelsMatchPaperRows) {
  const auto& channels = table3_channels();
  ASSERT_EQ(channels.size(), 6u);
  EXPECT_EQ(channel_name(channels[0]), "current(fpd_cpu)");
  EXPECT_EQ(channel_name(channels[1]), "current(lpd_cpu)");
  EXPECT_EQ(channel_name(channels[2]), "current(ddr)");
  EXPECT_EQ(channel_name(channels[3]), "current(fpga_logic)");
  EXPECT_EQ(channel_name(channels[4]), "voltage(fpga_logic)");
  EXPECT_EQ(channel_name(channels[5]), "power(fpga_logic)");
}

TEST(Fingerprint, CollectionShapesAreConsistent) {
  const auto config = small_config();
  const auto traces = collect_fingerprint_traces(config);
  EXPECT_EQ(traces.model_names.size(), 4u);
  EXPECT_EQ(traces.per_channel.size(), 6u);
  EXPECT_EQ(traces.samples_per_trace, 57u);  // 2 s / 35 ms
  for (const auto& d : traces.per_channel) {
    EXPECT_EQ(d.size(), 4u * 6u);
    EXPECT_EQ(d.feature_count(), traces.samples_per_trace);
    EXPECT_EQ(d.class_count(), 4);
  }
}

TEST(Fingerprint, FpgaCurrentSeparatesModels) {
  const auto config = small_config();
  const auto traces = collect_fingerprint_traces(config);
  const auto result = evaluate_fingerprint(traces, config);
  ASSERT_EQ(result.cells.size(), 6u);
  ASSERT_EQ(result.cells[0].size(), 2u);
  EXPECT_EQ(result.class_count, 4u);
  // FPGA current at full duration: strong fingerprinting.
  const Table3Cell fpga_current = result.cells[3].back();
  EXPECT_GT(fpga_current.top1, 0.8);
  EXPECT_GE(fpga_current.top5, fpga_current.top1);
  // FPGA voltage is far weaker than FPGA current.
  const Table3Cell fpga_voltage = result.cells[4].back();
  EXPECT_LT(fpga_voltage.top1, fpga_current.top1);
}

TEST(Fingerprint, ValidationErrors) {
  FingerprintConfig bad = small_config();
  bad.traces_per_model = 2;  // < folds
  EXPECT_THROW(collect_fingerprint_traces(bad), std::invalid_argument);

  FingerprintConfig long_duration = small_config();
  const auto traces = collect_fingerprint_traces(long_duration);
  long_duration.durations_s = {10.0};  // beyond collected trace length
  EXPECT_THROW(evaluate_fingerprint(traces, long_duration),
               std::invalid_argument);
}

TEST(Fingerprint, SensorAvgOverrideChangesFeatureCount) {
  FingerprintConfig c = small_config();
  c.model_limit = 2;
  c.traces_per_model = 3;
  c.folds = 3;
  c.trace_duration = sim::seconds(1);
  c.sensor_avg_override = 4;  // 8.8 ms conversions
  c.sample_period = sim::microseconds(8'800);
  const auto traces = collect_fingerprint_traces(c);
  EXPECT_EQ(traces.samples_per_trace, 113u);  // 1 s / 8.8 ms
  EXPECT_EQ(traces.per_channel[0].feature_count(), 113u);
}

TEST(Fingerprint, BackgroundActivityCanBeDisabled) {
  FingerprintConfig c = small_config();
  c.model_limit = 2;
  c.traces_per_model = 3;
  c.folds = 3;
  c.trace_duration = sim::seconds(1);
  c.background.burst_rate_hz = 0.0;
  c.background.lpd_tick_period = sim::TimeNs{0};
  EXPECT_NO_THROW(collect_fingerprint_traces(c));
}

TEST(Fingerprint, Fig3TracesCoverSixModelsAndFourRails) {
  FingerprintConfig c = small_config();
  c.trace_duration = sim::seconds(1);
  const auto traces = collect_fig3_traces(c);
  ASSERT_EQ(traces.size(), 6u);
  EXPECT_EQ(traces[0].model_name, "MobileNet-V1");
  EXPECT_EQ(traces[5].model_name, "VGG-19");
  for (const auto& t : traces) {
    EXPECT_GT(t.model_size_bytes, 0u);
    ASSERT_EQ(t.rail_current.size(), power::kRailCount);
    for (const auto& trace : t.rail_current) {
      EXPECT_EQ(trace.size(), 28u);  // 1 s at 35 ms
    }
  }
  // VGG-19 is by far the largest model in Fig 3's annotations.
  EXPECT_GT(traces[5].model_size_bytes, 10u * traces[0].model_size_bytes);
}

}  // namespace
}  // namespace amperebleed::core
