// Property tests pitting the PR 9 rewritten preprocess/feature kernels
// against their retained naive references (core::reference) over
// adversarial inputs — NaN, ±Inf, denormals, constants, lengths
// 0/1/non-multiple-of-lane-width — at every SIMD dispatch tier available
// on the host (DESIGN.md §14).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "amperebleed/core/features.hpp"
#include "amperebleed/core/preprocess.hpp"
#include "amperebleed/core/preprocess_reference.hpp"
#include "amperebleed/core/trace.hpp"
#include "amperebleed/util/rng.hpp"
#include "amperebleed/util/simd.hpp"

namespace {

using namespace amperebleed;
namespace simd = util::simd;

void expect_bitwise_equal(const std::vector<double>& got,
                          const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  if (!got.empty()) {
    // memcmp: NaN payloads and signed zeros must match too.
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          got.size() * sizeof(double)),
              0);
  }
}

/// Adversarial vectors: the length set covers empty, single, sub-lane,
/// exact-lane and lane+1 shapes for 4-wide AVX2 loops.
std::vector<std::vector<double>> adversarial_inputs() {
  util::Rng rng(0xbad);
  std::vector<std::vector<double>> inputs;
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{4},
        std::size_t{5}, std::size_t{8}, std::size_t{13}, std::size_t{1024}}) {
    // Random
    std::vector<double> random(n);
    for (auto& v : random) v = rng.gaussian(0.0, 2.0);
    inputs.push_back(random);
    // Constant column
    inputs.push_back(std::vector<double>(n, 3.25));
    if (n == 0) continue;
    // NaN / ±Inf poisoned
    std::vector<double> poisoned = random;
    poisoned[0] = std::numeric_limits<double>::quiet_NaN();
    if (n > 2) poisoned[2] = std::numeric_limits<double>::infinity();
    if (n > 3) poisoned[3] = -std::numeric_limits<double>::infinity();
    inputs.push_back(poisoned);
    // Denormal-heavy
    std::vector<double> denormal(n);
    for (std::size_t i = 0; i < n; ++i) {
      denormal[i] = static_cast<double>(i % 5) * 5e-324;
    }
    inputs.push_back(denormal);
  }
  return inputs;
}

TEST(PreprocessSimd, StandardizeMatchesReferenceAtAllTiers) {
  for (const auto& input : adversarial_inputs()) {
    auto want = input;
    core::reference::standardize(want);
    for (const simd::SimdTier tier : simd::available_tiers()) {
      simd::ScopedTier scoped(tier);
      auto got = input;
      core::standardize(got);
      SCOPED_TRACE(std::string("tier=") + std::string(simd::tier_name(tier)) +
                   " n=" + std::to_string(input.size()));
      expect_bitwise_equal(got, want);
    }
  }
}

TEST(PreprocessSimd, DetrendMatchesReferenceAtAllTiers) {
  for (const auto& input : adversarial_inputs()) {
    auto want = input;
    core::reference::detrend(want);
    for (const simd::SimdTier tier : simd::available_tiers()) {
      simd::ScopedTier scoped(tier);
      auto got = input;
      core::detrend(got);
      SCOPED_TRACE(std::string("tier=") + std::string(simd::tier_name(tier)) +
                   " n=" + std::to_string(input.size()));
      // Bit-identical: the fit replicates linear_fit's accumulation order
      // and remove_trend keeps the apply unfused in every tier.
      expect_bitwise_equal(got, want);
    }
  }
}

// Exact-equality regression for the O(n) rolling sliding_mean on the input
// classes where every partial sum is exactly representable: integer-grained
// samples (the hwmon 1 mA LSB domain), dyadic constants, denormals.
TEST(PreprocessSimd, SlidingMeanExactOnExactArithmeticInputs) {
  util::Rng rng(0x777);
  const auto window_strides = {
      std::pair<std::size_t, std::size_t>{1, 1},  {4, 2},  {7, 3},
      {16, 4}, {32, 32}, {12, 20}};
  std::vector<std::vector<double>> inputs;
  // Integer-grained (hwmon-shaped counts)
  std::vector<double> integers(513);
  for (auto& v : integers) {
    v = static_cast<double>(rng.uniform_below(2'000'000));
  }
  inputs.push_back(std::move(integers));
  // Dyadic constant
  inputs.push_back(std::vector<double>(257, 0.125));
  // Denormal-heavy (sums of a few denormals stay exact)
  std::vector<double> denormals(300);
  for (std::size_t i = 0; i < denormals.size(); ++i) {
    denormals[i] = static_cast<double>(i % 3) * 5e-324;
  }
  inputs.push_back(std::move(denormals));

  for (const auto& xs : inputs) {
    for (const auto& [window, stride] : window_strides) {
      SCOPED_TRACE("n=" + std::to_string(xs.size()) +
                   " window=" + std::to_string(window) +
                   " stride=" + std::to_string(stride));
      expect_bitwise_equal(core::sliding_mean(xs, window, stride),
                           core::reference::sliding_mean(xs, window, stride));
    }
  }
}

// Arbitrary doubles: rolling and naive folds may round differently between
// re-anchor points, but only in the last ulps.
TEST(PreprocessSimd, SlidingMeanCloseOnArbitraryInputs) {
  util::Rng rng(0xabc);
  std::vector<double> xs(1000);
  for (auto& v : xs) v = rng.gaussian(1.0, 0.3);
  for (const std::size_t window : {std::size_t{4}, std::size_t{32}}) {
    const auto got = core::sliding_mean(xs, window, 2);
    const auto want = core::reference::sliding_mean(xs, window, 2);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], want[i], 1e-12) << "i=" << i;
    }
  }
}

TEST(PreprocessSimd, SlidingMeanEdgeShapes) {
  const std::vector<double> empty;
  EXPECT_TRUE(core::sliding_mean(empty, 4, 2).empty());
  const std::vector<double> one{2.5};
  expect_bitwise_equal(core::sliding_mean(one, 1, 1),
                       core::reference::sliding_mean(one, 1, 1));
  EXPECT_TRUE(core::sliding_mean(one, 2, 1).empty());
  // window == length
  const std::vector<double> four{1.0, 2.0, 3.0, 4.0};
  expect_bitwise_equal(core::sliding_mean(four, 4, 1),
                       core::reference::sliding_mean(four, 4, 1));
  EXPECT_THROW(core::sliding_mean(four, 0, 1), std::invalid_argument);
  EXPECT_THROW(core::sliding_mean(four, 2, 0), std::invalid_argument);
}

TEST(PreprocessSimd, FillGapsMatchesReferenceAllPolicies) {
  util::Rng rng(0xf17);
  for (const std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{8},
                              std::size_t{257}}) {
    std::vector<double> values(n);
    for (auto& v : values) v = rng.gaussian(0.0, 1.0);
    if (n > 2) values[1] = std::numeric_limits<double>::quiet_NaN();
    std::vector<std::vector<std::uint8_t>> masks;
    masks.push_back({});                                  // gapless
    masks.push_back(std::vector<std::uint8_t>(n, 1));     // all valid
    masks.push_back(std::vector<std::uint8_t>(n, 0));     // all invalid
    std::vector<std::uint8_t> alternating(n, 1);
    for (std::size_t i = 0; i < n; i += 2) alternating[i] = 0;
    masks.push_back(alternating);                         // leading gap too
    std::vector<std::uint8_t> trailing(n, 1);
    trailing[n - 1] = 0;
    masks.push_back(trailing);
    for (const auto& mask : masks) {
      for (const core::GapPolicy policy : core::kAllGapPolicies) {
        SCOPED_TRACE("n=" + std::to_string(n) + " mask_size=" +
                     std::to_string(mask.size()) + " policy=" +
                     std::string(core::gap_policy_name(policy)));
        expect_bitwise_equal(core::fill_gaps(values, mask, policy),
                             core::reference::fill_gaps(values, mask, policy));
      }
    }
  }
}

TEST(PreprocessSimd, FillGapsTraceOverloadGaplessFastPath) {
  core::Trace trace(core::Channel{}, sim::TimeNs{0}, sim::microseconds(100));
  for (int i = 0; i < 10; ++i) trace.push(1.0 + i * 0.5);
  ASSERT_TRUE(trace.validity().empty());
  const auto filled = core::fill_gaps(trace, core::GapPolicy::HoldLast);
  ASSERT_EQ(filled.size(), trace.size());
  for (std::size_t i = 0; i < filled.size(); ++i) {
    EXPECT_EQ(filled[i], trace.values()[i]);
  }
}

TEST(PreprocessSimd, BestAlignmentShiftMatchesReference) {
  util::Rng rng(0xa11);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> ref(256 + static_cast<std::size_t>(trial) * 7);
    for (auto& v : ref) v = rng.gaussian(0.0, 1.0);
    const int true_lag = static_cast<int>(rng.uniform_below(41)) - 20;
    const auto probe = core::shift(ref, true_lag);
    const int got = core::best_alignment_shift(ref, probe, 24);
    const int want = core::reference::best_alignment_shift(ref, probe, 24);
    EXPECT_EQ(got, want) << "trial=" << trial << " true_lag=" << true_lag;
    EXPECT_EQ(got, true_lag) << "trial=" << trial;
  }
  // Degenerate shapes fall back to 0 exactly like the reference.
  const std::vector<double> tiny{1.0, 2.0, 3.0};
  EXPECT_EQ(core::best_alignment_shift(tiny, tiny, 8), 0);
  const std::vector<double> flat(64, 1.0);
  EXPECT_EQ(core::best_alignment_shift(flat, flat, 8),
            core::reference::best_alignment_shift(flat, flat, 8));
}

}  // namespace
