#include "amperebleed/core/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace amperebleed::core {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "trace_io_test.csv";
};

Trace make_trace() {
  Trace t({power::Rail::Ddr, Quantity::Power}, sim::milliseconds(40),
          sim::milliseconds(35));
  t.push(1'250'000.0);
  t.push(1'275'000.0);
  t.push(1'250'000.0);
  return t;
}

TEST_F(TraceIoTest, RoundTripPreservesEverything) {
  const Trace original = make_trace();
  save_trace_csv(original, path_);
  const Trace loaded = load_trace_csv(path_);
  EXPECT_EQ(loaded.channel(), original.channel());
  EXPECT_EQ(loaded.start(), original.start());
  EXPECT_EQ(loaded.period(), original.period());
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i], original[i]);
  }
}

TEST_F(TraceIoTest, FileIsHumanReadableCsv) {
  save_trace_csv(make_trace(), path_);
  std::ifstream in(path_);
  std::string first;
  std::string second;
  std::getline(in, first);
  std::getline(in, second);
  EXPECT_NE(first.find("# amperebleed-trace"), std::string::npos);
  EXPECT_NE(first.find("quantity=power"), std::string::npos);
  EXPECT_NE(first.find("rail=ddr"), std::string::npos);
  EXPECT_EQ(second, "index,time_ms,value");
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  Trace empty({power::Rail::FpgaLogic, Quantity::Current}, sim::TimeNs{0},
              sim::milliseconds(1));
  save_trace_csv(empty, path_);
  EXPECT_EQ(load_trace_csv(path_).size(), 0u);
}

TEST_F(TraceIoTest, RejectsForeignFiles) {
  {
    std::ofstream out(path_);
    out << "index,time,value\n1,2,3\n";
  }
  EXPECT_THROW(load_trace_csv(path_), std::runtime_error);
  EXPECT_THROW(load_trace_csv("/no/such/file.csv"), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsMalformedRows) {
  {
    std::ofstream out(path_);
    out << "# amperebleed-trace quantity=current rail=ddr start_ns=0 "
           "period_ns=1000\n";
    out << "index,time_ms,value\n";
    out << "0,0.0\n";  // missing column
  }
  EXPECT_THROW(load_trace_csv(path_), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsBadMetadata) {
  {
    std::ofstream out(path_);
    out << "# amperebleed-trace quantity=entropy rail=ddr start_ns=0 "
           "period_ns=1000\n";
  }
  EXPECT_THROW(load_trace_csv(path_), std::runtime_error);
  {
    std::ofstream out(path_);
    out << "# amperebleed-trace quantity=current rail=ddr start_ns=0 "
           "period_ns=0\n";
  }
  EXPECT_THROW(load_trace_csv(path_), std::runtime_error);
}

}  // namespace
}  // namespace amperebleed::core
