#include "amperebleed/core/trace_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace amperebleed::core {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "trace_io_test.csv";
};

Trace make_trace() {
  Trace t({power::Rail::Ddr, Quantity::Power}, sim::milliseconds(40),
          sim::milliseconds(35));
  t.push(1'250'000.0);
  t.push(1'275'000.0);
  t.push(1'250'000.0);
  return t;
}

TEST_F(TraceIoTest, RoundTripPreservesEverything) {
  const Trace original = make_trace();
  save_trace_csv(original, path_);
  const Trace loaded = load_trace_csv(path_);
  EXPECT_EQ(loaded.channel(), original.channel());
  EXPECT_EQ(loaded.start(), original.start());
  EXPECT_EQ(loaded.period(), original.period());
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i], original[i]);
  }
}

TEST_F(TraceIoTest, FileIsHumanReadableCsv) {
  save_trace_csv(make_trace(), path_);
  std::ifstream in(path_);
  std::string first;
  std::string second;
  std::getline(in, first);
  std::getline(in, second);
  EXPECT_NE(first.find("# amperebleed-trace"), std::string::npos);
  EXPECT_NE(first.find("quantity=power"), std::string::npos);
  EXPECT_NE(first.find("rail=ddr"), std::string::npos);
  EXPECT_EQ(second, "index,time_ms,value");
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  Trace empty({power::Rail::FpgaLogic, Quantity::Current}, sim::TimeNs{0},
              sim::milliseconds(1));
  save_trace_csv(empty, path_);
  EXPECT_EQ(load_trace_csv(path_).size(), 0u);
}

TEST_F(TraceIoTest, RejectsForeignFiles) {
  {
    std::ofstream out(path_);
    out << "index,time,value\n1,2,3\n";
  }
  EXPECT_THROW(load_trace_csv(path_), std::runtime_error);
  EXPECT_THROW(load_trace_csv("/no/such/file.csv"), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsMalformedRows) {
  {
    std::ofstream out(path_);
    out << "# amperebleed-trace quantity=current rail=ddr start_ns=0 "
           "period_ns=1000\n";
    out << "index,time_ms,value\n";
    out << "0,0.0\n";  // missing column
  }
  EXPECT_THROW(load_trace_csv(path_), std::runtime_error);
}

TEST_F(TraceIoTest, BadValueCellNamesFileAndLine) {
  // Regression: a non-numeric value cell used to surface std::stod's bare
  // "stod" exception with no hint of which file or row was bad. The error
  // must name the offending cell and its exact file:line.
  {
    std::ofstream out(path_);
    out << "# amperebleed-trace quantity=current rail=ddr start_ns=0 "
           "period_ns=1000\n";
    out << "index,time_ms,value\n";
    out << "0,0.0,1.25\n";
    out << "1,1.0,garbage\n";  // line 4
  }
  try {
    (void)load_trace_csv(path_);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad value cell 'garbage'"), std::string::npos)
        << what;
    EXPECT_NE(what.find(path_ + ":4"), std::string::npos) << what;
  }
  // Trailing garbage after a valid prefix is just as rejected ("1.5x" must
  // not silently load as 1.5).
  {
    std::ofstream out(path_);
    out << "# amperebleed-trace quantity=current rail=ddr start_ns=0 "
           "period_ns=1000\n";
    out << "index,time_ms,value\n";
    out << "0,0.0,1.5x\n";
  }
  try {
    (void)load_trace_csv(path_);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path_ + ":3"), std::string::npos)
        << e.what();
  }
}

TEST_F(TraceIoTest, MalformedRowNamesFileAndLine) {
  {
    std::ofstream out(path_);
    out << "# amperebleed-trace quantity=current rail=ddr start_ns=0 "
           "period_ns=1000\n";
    out << "index,time_ms,value\n";
    out << "0,0.0,1.0\n";
    out << "\n";           // blank lines don't advance the error context
    out << "2,2.0\n";      // line 5: missing column
  }
  try {
    (void)load_trace_csv(path_);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("malformed row"), std::string::npos) << what;
    EXPECT_NE(what.find(path_ + ":5"), std::string::npos) << what;
  }
}

TEST_F(TraceIoTest, RejectsBadMetadata) {
  {
    std::ofstream out(path_);
    out << "# amperebleed-trace quantity=entropy rail=ddr start_ns=0 "
           "period_ns=1000\n";
  }
  EXPECT_THROW(load_trace_csv(path_), std::runtime_error);
  {
    std::ofstream out(path_);
    out << "# amperebleed-trace quantity=current rail=ddr start_ns=0 "
           "period_ns=0\n";
  }
  EXPECT_THROW(load_trace_csv(path_), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Validity-mask round trip (resilient acquisition leaves gaps in traces).

TEST_F(TraceIoTest, GaplessFileStaysLegacyThreeColumn) {
  // Fault-free traces must keep the exact legacy on-disk format so archived
  // trajectories diff clean against new saves.
  save_trace_csv(make_trace(), path_);
  std::ifstream in(path_);
  std::string line;
  std::getline(in, line);  // metadata comment
  std::getline(in, line);
  EXPECT_EQ(line, "index,time_ms,value");
  while (std::getline(in, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 2) << line;
  }
}

TEST_F(TraceIoTest, HoleyTraceRoundTripsValidityMask) {
  Trace original({power::Rail::FpgaLogic, Quantity::Current},
                 sim::milliseconds(5), sim::milliseconds(2));
  original.push(120.0);
  original.push_gap();
  original.push(130.0);
  original.push_gap();
  save_trace_csv(original, path_);

  const Trace loaded = load_trace_csv(path_);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.gap_count(), 2u);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.valid(i), original.valid(i)) << "index " << i;
    EXPECT_DOUBLE_EQ(loaded[i], original[i]) << "index " << i;
  }
}

TEST_F(TraceIoTest, HoleyFileCarriesValidColumn) {
  Trace t({power::Rail::Ddr, Quantity::Current}, sim::TimeNs{0},
          sim::milliseconds(1));
  t.push(7.0);
  t.push_gap();
  save_trace_csv(t, path_);
  std::ifstream in(path_);
  std::string line;
  std::getline(in, line);  // metadata comment
  std::getline(in, line);
  EXPECT_EQ(line, "index,time_ms,value,valid");
  std::getline(in, line);
  EXPECT_EQ(std::count(line.begin(), line.end(), ','), 3) << line;
  EXPECT_EQ(line.back(), '1');
  std::getline(in, line);
  EXPECT_EQ(line.back(), '0');
}

TEST_F(TraceIoTest, LegacyThreeColumnFileLoadsFullyValid) {
  {
    std::ofstream out(path_);
    out << "# amperebleed-trace quantity=current rail=ddr start_ns=0 "
           "period_ns=1000000\n";
    out << "index,time_ms,value\n";
    out << "0,0.000,5\n";
    out << "1,1.000,6\n";
  }
  const Trace loaded = load_trace_csv(path_);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(loaded.fully_valid());
  EXPECT_EQ(loaded.gap_count(), 0u);
  EXPECT_DOUBLE_EQ(loaded[0], 5.0);
  EXPECT_DOUBLE_EQ(loaded[1], 6.0);
}

}  // namespace
}  // namespace amperebleed::core
