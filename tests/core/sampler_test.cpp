#include "amperebleed/core/sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "amperebleed/fpga/power_virus.hpp"
#include "amperebleed/obs/obs.hpp"

namespace amperebleed::core {
namespace {

std::unique_ptr<soc::Soc> make_soc_with_step_load(double amps, sim::TimeNs at,
                                                  std::uint64_t seed = 1) {
  auto soc = std::make_unique<soc::Soc>(soc::zcu102_config(seed));
  power::RailActivity load;
  load.on(power::Rail::FpgaLogic).append(at, amps);
  soc->add_activity(load);
  soc->finalize();
  return soc;
}

TEST(Sampler, RequiresFinalizedSoc) {
  soc::Soc soc(soc::zcu102_config());
  EXPECT_THROW(Sampler{soc}, std::logic_error);
}

TEST(Sampler, ReadNowReturnsHwmonUnits) {
  auto soc_ptr = make_soc_with_step_load(1.0, sim::microseconds(1));
  Sampler sampler(*soc_ptr);
  soc_ptr->advance_to(sim::milliseconds(40));
  const double ma =
      sampler.read_now({power::Rail::FpgaLogic, Quantity::Current});
  EXPECT_NEAR(ma, 1520.0, 30.0);  // 0.52 idle + 1.0 load, in mA
  const double mv =
      sampler.read_now({power::Rail::FpgaLogic, Quantity::Voltage});
  EXPECT_NEAR(mv, 850.0, 3.0);
}

TEST(Sampler, CollectProducesUniformTrace) {
  auto soc_ptr = make_soc_with_step_load(0.5, sim::microseconds(1));
  Sampler sampler(*soc_ptr);
  SamplerConfig config;
  config.period = sim::milliseconds(35);
  config.sample_count = 20;
  const Trace t = sampler.collect({power::Rail::FpgaLogic, Quantity::Current},
                                  sim::milliseconds(40), config);
  EXPECT_EQ(t.size(), 20u);
  EXPECT_EQ(t.period(), sim::milliseconds(35));
  for (double v : t.values()) {
    EXPECT_NEAR(v, 1020.0, 40.0);
  }
}

TEST(Sampler, SeesLoadSteps) {
  auto soc_ptr = make_soc_with_step_load(3.0, sim::milliseconds(500));
  Sampler sampler(*soc_ptr);
  SamplerConfig config;
  config.period = sim::milliseconds(35);
  config.sample_count = 30;  // spans the step at 500 ms
  const Trace t = sampler.collect({power::Rail::FpgaLogic, Quantity::Current},
                                  sim::milliseconds(40), config);
  EXPECT_LT(t[0], 700.0);
  EXPECT_GT(t[t.size() - 1], 3000.0);
}

TEST(Sampler, FasterPollingRepeatsRegisterValues) {
  // 1 kHz polling against a 35.2 ms conversion: consecutive reads repeat.
  auto soc_ptr = make_soc_with_step_load(1.0, sim::microseconds(1));
  Sampler sampler(*soc_ptr);
  SamplerConfig config;
  config.period = sim::milliseconds(1);
  config.sample_count = 200;
  const Trace t = sampler.collect({power::Rail::FpgaLogic, Quantity::Current},
                                  sim::milliseconds(40), config);
  std::size_t repeats = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (t[i] == t[i - 1]) ++repeats;
  }
  EXPECT_GT(repeats, t.size() / 2);
}

TEST(Sampler, CollectMultiReadsAllChannelsInLockstep) {
  auto soc_ptr = make_soc_with_step_load(2.0, sim::microseconds(1));
  Sampler sampler(*soc_ptr);
  SamplerConfig config;
  config.sample_count = 5;
  const std::vector<Channel> channels = {
      {power::Rail::FpgaLogic, Quantity::Current},
      {power::Rail::FpgaLogic, Quantity::Power},
      {power::Rail::Ddr, Quantity::Current},
  };
  const auto traces =
      sampler.collect_multi(channels, sim::milliseconds(40), config);
  ASSERT_EQ(traces.size(), 3u);
  for (const auto& t : traces) EXPECT_EQ(t.size(), 5u);
  // Power (uW) tracks current (mA) * voltage: same conversion, so the
  // quantized product relationship holds within one power LSB.
  const double watts = traces[1][0] * 1e-6;
  const double amps = traces[0][0] * 1e-3;
  EXPECT_NEAR(watts, amps * 0.85, 0.026);
}

TEST(Sampler, SoftDefensesApplyThroughTheFullStack) {
  soc::SocConfig config = soc::zcu102_config(31);
  config.hwmon_policy.quantize_factor = 250;  // 250 mA reporting granularity
  soc::Soc soc(config);
  power::RailActivity load;
  load.on(power::Rail::FpgaLogic).append(sim::microseconds(1), 1.0);
  soc.add_activity(load);
  soc.finalize();
  soc.advance_to(sim::milliseconds(80));
  Sampler sampler(soc);
  const double ma =
      sampler.read_now({power::Rail::FpgaLogic, Quantity::Current});
  // ~1530 mA true -> reported on the 250 mA grid.
  EXPECT_DOUBLE_EQ(std::fmod(ma, 250.0), 0.0);
  EXPECT_NEAR(ma, 1500.0, 250.0);
}

TEST(Sampler, StaleCacheOnlyGrowsWhileInstrumented) {
  auto soc_ptr = make_soc_with_step_load(1.0, sim::microseconds(1));
  Sampler sampler(*soc_ptr);
  soc_ptr->advance_to(sim::milliseconds(40));
  // obs disabled (the default): the stale-read cache is never touched.
  static_cast<void>(
      sampler.read_now({power::Rail::FpgaLogic, Quantity::Current}));
  EXPECT_EQ(sampler.stale_cache_size(), 0u);

  obs::init();
  static_cast<void>(
      sampler.read_now({power::Rail::FpgaLogic, Quantity::Current}));
  static_cast<void>(
      sampler.read_now({power::Rail::FpgaLogic, Quantity::Voltage}));
  EXPECT_EQ(sampler.stale_cache_size(), 2u);
  obs::shutdown();
}

TEST(Sampler, StaleCacheIsBoundedByCap) {
  // Hammer every channel of every rail repeatedly: the cache holds one
  // entry per distinct attribute path and never exceeds kStaleCacheCap,
  // so a long-running sampler cannot grow without bound.
  auto soc_ptr = make_soc_with_step_load(1.0, sim::microseconds(1));
  Sampler sampler(*soc_ptr);
  soc_ptr->advance_to(sim::milliseconds(40));
  obs::init();
  std::size_t paths = 0;
  for (int round = 0; round < 3; ++round) {
    for (power::Rail rail : power::kAllRails) {
      for (Quantity q :
           {Quantity::Current, Quantity::Voltage, Quantity::Power}) {
        static_cast<void>(sampler.read_now({rail, q}));
        if (round == 0) ++paths;
      }
    }
  }
  EXPECT_EQ(sampler.stale_cache_size(), paths);  // one entry per path
  EXPECT_LE(sampler.stale_cache_size(), Sampler::kStaleCacheCap);
  // Repeated polling at the same instant re-reads identical registers, so
  // the stale-read counter must have fired.
  EXPECT_GT(obs::metrics().counter_value("sampler.stale_reads"), 0u);
  obs::shutdown();
}

TEST(Sampler, MitigationPolicyStopsUnprivilegedSampler) {
  soc::SocConfig config = soc::zcu102_config();
  config.hwmon_policy.unprivileged_sensor_read = false;
  soc::Soc soc(config);
  soc.finalize();
  Sampler sampler(soc);
  EXPECT_THROW(
      static_cast<void>(
          sampler.read_now({power::Rail::FpgaLogic, Quantity::Current})),
      SamplingError);
  // Privileged tooling still reads — via its own root-principal sampler,
  // the single place privilege now lives.
  Sampler root(soc, Principal::root());
  EXPECT_NO_THROW(static_cast<void>(
      root.read_now({power::Rail::FpgaLogic, Quantity::Current})));
}

}  // namespace
}  // namespace amperebleed::core
