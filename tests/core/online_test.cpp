#include "amperebleed/core/online.hpp"

#include <gtest/gtest.h>

#include "amperebleed/util/rng.hpp"

namespace amperebleed::core {
namespace {

// Synthetic "model signature" traces: class c has mean level 100*c with a
// class-specific ripple.
Trace synthetic_trace(int cls, std::uint64_t seed, std::size_t len = 40) {
  util::Rng rng(seed);
  Trace t({}, sim::TimeNs{0}, sim::milliseconds(35));
  for (std::size_t i = 0; i < len; ++i) {
    const double ripple = (i % (2 + static_cast<std::size_t>(cls))) * 5.0;
    t.push(100.0 * cls + ripple + rng.gaussian(0.0, 2.0));
  }
  return t;
}

OnlineFingerprinter trained_service(std::size_t reps = 8) {
  OnlineFingerprinterConfig config;
  config.forest.n_trees = 30;
  OnlineFingerprinter service(config);
  const char* names[] = {"net-a", "net-b", "net-c"};
  for (int cls = 0; cls < 3; ++cls) {
    for (std::size_t r = 0; r < reps; ++r) {
      service.enroll(synthetic_trace(cls, cls * 100 + r), names[cls]);
    }
  }
  service.train();
  return service;
}

TEST(OnlineFingerprinter, EnrollTracksClassesAndWidth) {
  OnlineFingerprinter service;
  service.enroll(synthetic_trace(0, 1), "a");
  service.enroll(synthetic_trace(1, 2), "b");
  service.enroll(synthetic_trace(0, 3), "a");
  EXPECT_EQ(service.enrolled_traces(), 3u);
  EXPECT_EQ(service.class_names().size(), 2u);
  EXPECT_EQ(service.feature_count(), 40u);
}

TEST(OnlineFingerprinter, ClassifiesEnrolledArchitectures) {
  const auto service = trained_service();
  for (int cls = 0; cls < 3; ++cls) {
    const auto verdict = service.classify(synthetic_trace(cls, 999 + cls));
    EXPECT_TRUE(verdict.known) << cls;
    const char* names[] = {"net-a", "net-b", "net-c"};
    EXPECT_EQ(verdict.model_name, names[cls]);
    EXPECT_GT(verdict.confidence, 0.5);
  }
}

TEST(OnlineFingerprinter, RankingIsSortedAndComplete) {
  const auto service = trained_service();
  const auto verdict = service.classify(synthetic_trace(1, 4242));
  ASSERT_EQ(verdict.ranking.size(), 3u);
  EXPECT_GE(verdict.ranking[0].second, verdict.ranking[1].second);
  EXPECT_GE(verdict.ranking[1].second, verdict.ranking[2].second);
  double total = 0.0;
  for (const auto& [name, p] : verdict.ranking) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(OnlineFingerprinter, RejectsOutOfZooTraces) {
  const auto service = trained_service();
  // A signature far from every enrolled class: forest probabilities spread.
  Trace alien({}, sim::TimeNs{0}, sim::milliseconds(35));
  util::Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    // Alternates wildly between class levels -> no leaf agreement.
    alien.push((i % 2 == 0 ? 0.0 : 200.0) + rng.gaussian(0.0, 30.0));
  }
  const auto verdict = service.classify(alien);
  // Either rejected outright, or accepted with conspicuously low margin.
  if (verdict.known) {
    EXPECT_LT(verdict.confidence, 0.9);
  } else {
    EXPECT_FALSE(verdict.model_name.empty());  // still reports best guess
  }
}

TEST(OnlineFingerprinter, LifecycleErrors) {
  OnlineFingerprinter service;
  EXPECT_THROW(service.classify(synthetic_trace(0, 1)), std::logic_error);
  service.enroll(synthetic_trace(0, 1), "only-one");
  EXPECT_THROW(service.train(), std::logic_error);  // single class
  service.enroll(synthetic_trace(1, 2), "second");
  service.train();
  EXPECT_TRUE(service.trained());
  EXPECT_THROW(service.train(), std::logic_error);
  EXPECT_THROW(service.enroll(synthetic_trace(0, 3), "late"),
               std::logic_error);
}

TEST(OnlineFingerprinter, ShortProbeTraceRejected) {
  const auto service = trained_service();
  const Trace stub = synthetic_trace(0, 1, 10);  // shorter than enrolled 40
  EXPECT_THROW(service.classify(stub), std::invalid_argument);
}

TEST(OnlineFingerprinter, EmptyTraceRejectedAtEnroll) {
  OnlineFingerprinter service;
  Trace empty({}, sim::TimeNs{0}, sim::milliseconds(35));
  EXPECT_THROW(service.enroll(empty, "x"), std::invalid_argument);
}

TEST(OnlineFingerprinter, ClassifyManyMatchesPerTraceClassify) {
  const auto service = trained_service();
  std::vector<Trace> probes;
  for (int cls = 0; cls < 3; ++cls) {
    probes.push_back(synthetic_trace(cls, 5000 + cls));
    probes.push_back(synthetic_trace(cls, 6000 + cls));
  }
  const auto batched = service.classify_many(probes);
  ASSERT_EQ(batched.size(), probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto single = service.classify(probes[i]);
    EXPECT_EQ(batched[i].known, single.known) << i;
    EXPECT_EQ(batched[i].model_name, single.model_name) << i;
    EXPECT_EQ(batched[i].confidence, single.confidence) << i;  // exact
    EXPECT_EQ(batched[i].margin, single.margin) << i;
    EXPECT_EQ(batched[i].ranking, single.ranking) << i;
  }
}

TEST(OnlineFingerprinter, ClassifyManyEmptyBatchAndLifecycle) {
  OnlineFingerprinter untrained;
  EXPECT_THROW(untrained.classify_many(std::vector<Trace>{}),
               std::logic_error);
  const auto service = trained_service();
  EXPECT_TRUE(service.classify_many(std::vector<Trace>{}).empty());
}

TEST(OnlineFingerprinter, HighThresholdsRejectEverything) {
  OnlineFingerprinterConfig config;
  config.forest.n_trees = 20;
  config.min_confidence = 1.01;  // impossible
  OnlineFingerprinter service(config);
  for (int cls = 0; cls < 2; ++cls) {
    for (int r = 0; r < 5; ++r) {
      service.enroll(synthetic_trace(cls, cls * 10 + r),
                     cls == 0 ? "a" : "b");
    }
  }
  service.train();
  EXPECT_FALSE(service.classify(synthetic_trace(0, 77)).known);
}

}  // namespace
}  // namespace amperebleed::core
