#include "amperebleed/core/report.hpp"

#include <gtest/gtest.h>

namespace amperebleed::core {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Sensor", "Top-1"});
  t.add_row({"Current (FPGA)", "0.997"});
  t.add_row({"Voltage (FPGA)", "0.116"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| Sensor"), std::string::npos);
  EXPECT_NE(out.find("0.997"), std::string::npos);
  // Every line has the same width.
  std::size_t first_len = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(TextTable, Validation) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_EQ(t.rows(), 0u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(TextTable, HandlesWideCells) {
  TextTable t({"x"});
  t.add_row({"a-very-long-cell-value"});
  const std::string out = t.render();
  EXPECT_NE(out.find("a-very-long-cell-value"), std::string::npos);
}

TEST(Fmt, DecimalControl) {
  EXPECT_EQ(fmt(0.9966, 3), "0.997");
  EXPECT_EQ(fmt(1.0, 1), "1.0");
  EXPECT_EQ(fmt(-2.5, 0), "-2");  // printf rounds half to even
}

}  // namespace
}  // namespace amperebleed::core
