#include "amperebleed/core/characterize.hpp"

#include <gtest/gtest.h>

namespace amperebleed::core {
namespace {

CharacterizationConfig small_config() {
  CharacterizationConfig c;
  c.levels = 9;
  c.samples_per_level = 60;
  c.ro_samples_per_level = 60;
  // Keep the per-level current step at the paper's 40 mA by activating the
  // same group fraction per level: use 8 groups of 20k instances.
  c.virus.instance_count = 160'000;
  c.virus.group_count = 8;
  c.virus.dynamic_current_per_instance_amps = 2e-6;  // 40 mA per group
  c.seed = 99;
  return c;
}

TEST(Characterization, CurrentTracksActivityLinearly) {
  const auto result = run_characterization(small_config());
  ASSERT_EQ(result.level_axis.size(), 9u);
  ASSERT_EQ(result.current.mean_per_level.size(), 9u);
  EXPECT_GT(result.current.pearson_vs_level, 0.99);
  // ~40 mA per level in a trace measured in mA.
  EXPECT_NEAR(result.current.fit.slope, 40.0, 5.0);
  EXPECT_NEAR(result.current.variation_lsb_per_level, 40.0, 6.0);
}

TEST(Characterization, CurrentDoesNotStartFromZero) {
  const auto result = run_characterization(small_config());
  // Static workload of deployed-but-idle instances + board baseline.
  EXPECT_GT(result.current.mean_per_level.front(), 1000.0);  // > 1 A in mA
}

TEST(Characterization, VoltageIsCoarseAndNearlyFlat) {
  const auto result = run_characterization(small_config());
  // Stabilized rail: well under one bus-ADC LSB of change per level.
  EXPECT_LT(result.voltage.variation_lsb_per_level, 0.2);
  const double total_swing = result.voltage.mean_per_level.front() -
                             result.voltage.mean_per_level.back();
  EXPECT_LT(std::abs(total_swing), 5.0);  // a few mV at most
}

TEST(Characterization, PowerMovesOneToTwoLsbPerLevel) {
  const auto result = run_characterization(small_config());
  EXPECT_GT(result.power.pearson_vs_level, 0.99);
  EXPECT_GT(result.power.variation_lsb_per_level, 0.5);
  EXPECT_LT(result.power.variation_lsb_per_level, 3.0);
}

TEST(Characterization, RoAntiCorrelatesWithActivity) {
  const auto result = run_characterization(small_config());
  EXPECT_LT(result.ro.pearson_vs_level, -0.5);
  EXPECT_LT(result.ro.fit.slope, 0.0);
}

TEST(Characterization, CurrentVariationDwarfsRo) {
  const auto result = run_characterization(small_config());
  EXPECT_GT(result.current_over_ro_variation, 50.0);
}

TEST(Characterization, Validation) {
  CharacterizationConfig one_level = small_config();
  one_level.levels = 1;
  EXPECT_THROW(run_characterization(one_level), std::invalid_argument);
  CharacterizationConfig too_many = small_config();
  too_many.levels = too_many.virus.group_count + 2;
  EXPECT_THROW(run_characterization(too_many), std::invalid_argument);
}

TEST(Characterization, OptionalTdcBaselineTracksVoltage) {
  CharacterizationConfig c = small_config();
  c.with_tdc = true;
  const auto result = run_characterization(c);
  ASSERT_TRUE(result.tdc.has_value());
  EXPECT_EQ(result.tdc->mean_per_level.size(), c.levels);
  // Like the RO, the TDC rides the (drooping) PDN voltage: negative slope.
  EXPECT_LT(result.tdc->fit.slope, 0.0);
  // Disabled by default.
  EXPECT_FALSE(run_characterization(small_config()).tdc.has_value());
}

TEST(Characterization, DeterministicForSeed) {
  CharacterizationConfig c = small_config();
  c.levels = 4;
  c.samples_per_level = 20;
  c.ro_samples_per_level = 20;
  const auto a = run_characterization(c);
  const auto b = run_characterization(c);
  EXPECT_EQ(a.current.mean_per_level, b.current.mean_per_level);
  EXPECT_EQ(a.ro.mean_per_level, b.ro.mean_per_level);
}

}  // namespace
}  // namespace amperebleed::core
