// Example: explore the victim model zoo — per-model compute/traffic totals
// and predicted DPU timing. Useful for understanding *why* the fingerprints
// in Fig 3 / Table III are distinguishable: every architecture occupies a
// distinct point in (latency, MACs, traffic) space.
//
// Pass --json to emit the table machine-readably.

#include <cstdio>

#include "amperebleed/core/report.hpp"
#include "amperebleed/dnn/zoo.hpp"
#include "amperebleed/dpu/dpu.hpp"
#include "amperebleed/util/cli.hpp"
#include "amperebleed/util/json.hpp"
#include "amperebleed/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace amperebleed;
  const util::CliArgs args(argc, argv);

  const auto zoo = dnn::build_zoo();
  const dpu::DpuAccelerator dpu;

  if (args.has("json")) {
    util::Json out = util::Json::array();
    for (const auto& m : zoo) {
      util::Json entry = util::Json::object();
      entry.set("name", util::Json::string(m.name));
      entry.set("family",
                util::Json::string(std::string(dnn::family_name(m.family))));
      entry.set("layers", util::Json::integer(
                              static_cast<std::int64_t>(m.layer_count())));
      entry.set("macs", util::Json::integer(
                            static_cast<std::int64_t>(m.total_macs())));
      entry.set("weight_bytes",
                util::Json::integer(
                    static_cast<std::int64_t>(m.total_weight_bytes())));
      entry.set("inference_ms",
                util::Json::number(dpu.inference_period(m).millis()));
      out.push_back(std::move(entry));
    }
    std::puts(out.dump(2).c_str());
    return 0;
  }

  std::printf("Victim model zoo: %zu architectures, 7 families\n\n",
              zoo.size());
  core::TextTable table({"Model", "Family", "Layers", "GMACs", "Weights (MB)",
                         "DPU period (ms)"});
  for (const auto& m : zoo) {
    table.add_row({
        m.name,
        std::string(dnn::family_name(m.family)),
        util::format("%zu", m.layer_count()),
        core::fmt(static_cast<double>(m.total_macs()) / 1e9, 2),
        core::fmt(static_cast<double>(m.total_weight_bytes()) / 1e6, 1),
        core::fmt(dpu.inference_period(m).millis(), 1),
    });
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nDistinct (latency, compute, traffic) signatures are what the");
  std::puts("current side channel picks up during inference.");
  return 0;
}
