// Example: the root-side raw path — an i2cdetect/i2cget-style walk of the
// board's power-monitor bus. This is how the ina2xx kernel driver (and a
// privileged operator) reaches the same registers the unprivileged attack
// reads through hwmon; the two views agree because one register model backs
// both.

#include <cstdio>

#include "amperebleed/fpga/power_virus.hpp"
#include "amperebleed/sensors/i2c.hpp"
#include "amperebleed/soc/soc.hpp"

int main() {
  using namespace amperebleed;

  // Some activity so the registers show non-idle values.
  fpga::PowerVirus virus;
  virus.set_active_groups(sim::milliseconds(1), 25);

  soc::Soc soc(soc::zcu102_config(0x12c));
  soc.fabric().deploy(virus.descriptor());
  soc.add_activity(virus.activity());
  soc.finalize();
  soc.advance_to(sim::milliseconds(80));

  auto& bus = soc.i2c();

  std::puts("i2cdetect: scanning the power-monitor bus\n");
  std::fputs("     0  1  2  3  4  5  6  7  8  9  a  b  c  d  e  f\n", stdout);
  for (int row = 0; row < 8; ++row) {
    std::printf("%02x: ", row * 16);
    for (int col = 0; col < 16; ++col) {
      const auto addr = static_cast<std::uint8_t>(row * 16 + col);
      if (addr <= 0x07 || addr >= 0x78) {
        std::fputs("   ", stdout);
      } else {
        std::printf("%s ", bus.probe(addr) ? "UU" : "--");
      }
    }
    std::puts("");
  }

  std::puts("\nregister dump (i2cget -y <bus> <addr> <reg> w):");
  for (std::uint8_t addr : bus.scan()) {
    const auto mfg = bus.read_word(addr, 0xFE);
    const auto die = bus.read_word(addr, 0xFF);
    const auto cal = bus.read_word(addr, 0x05);
    const auto current = static_cast<std::int16_t>(bus.read_word(addr, 0x04));
    const auto bus_v = bus.read_word(addr, 0x02);
    std::printf("  0x%02x: mfg=0x%04x die=0x%04x cal=%u  CURRENT=%d "
                "(%d mA)  BUS=%u (%.2f mV)\n",
                addr, mfg, die, cal, current, current,
                bus_v, bus_v * 1.25);
  }

  std::printf("\nbus transactions issued: %llu\n",
              static_cast<unsigned long long>(bus.transactions()));
  std::puts("Same silicon, two windows: root reads registers over I2C; the");
  std::puts("attack reads the identical values through world-readable hwmon.");
  return 0;
}
