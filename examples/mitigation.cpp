// Example: deploying and verifying the paper's proposed mitigation —
// restricting hwmon sensor attributes to privileged users (Sec V). Walks
// through the attacker's view before and after the policy change.

#include <cstdio>

#include "amperebleed/core/sampler.hpp"
#include "amperebleed/fpga/power_virus.hpp"
#include "amperebleed/soc/soc.hpp"

int main() {
  using namespace amperebleed;

  fpga::PowerVirus virus;
  virus.set_active_groups(sim::milliseconds(500), 120);

  soc::Soc soc(soc::zcu102_config(0x317));
  soc.fabric().deploy(virus.descriptor());
  soc.add_activity(virus.activity());
  soc.finalize();

  core::Sampler attacker(soc);
  const core::Channel channel{power::Rail::FpgaLogic,
                              core::Quantity::Current};

  std::puts("Mitigation walkthrough (paper Sec V)\n");

  // Phase 1: default policy — world-readable sensors.
  soc.advance_to(sim::seconds(1));
  std::printf("[default policy] attacker reads curr1_input: %.0f mA — "
              "victim activity leaks\n",
              attacker.read_now(channel));

  // Phase 2: administrator applies the mitigation at runtime.
  soc.hwmon().set_policy(hwmon::HwmonPolicy{
      .unprivileged_sensor_read = false});
  std::puts("[mitigation]     admin restricts measurement attrs to root "
            "(mode 0400)");

  soc.advance_to(sim::seconds(2));
  try {
    static_cast<void>(attacker.read_now(channel));
    std::puts("[mitigated]      attacker STILL reads — mitigation failed?!");
    return 1;
  } catch (const core::SamplingError&) {
    std::puts("[mitigated]      attacker read -> EACCES: attack dead");
  }

  // Phase 3: legitimate root tooling is unaffected — privilege lives in the
  // Principal a sampler is constructed with, so root tooling gets its own.
  core::Sampler fleet_monitor(soc, core::Principal::root("fleet-monitor"));
  std::printf("[root tooling]   fleet monitor reads: %.0f mA — still works\n",
              fleet_monitor.read_now(channel));

  // ...but every unprivileged consumer breaks too — the deployment cost.
  std::puts("\nTrade-off: unprivileged health dashboards, thermal daemons and");
  std::puts("user-space governors lose sensor access; legacy images without");
  std::puts("the patched permissions stay vulnerable.");
  return 0;
}
