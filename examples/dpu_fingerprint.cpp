// Example: the two-phase DPU fingerprinting attack on a small model set,
// using the library API directly.
//
//   offline phase  — collect labelled traces of known accelerators and train
//                    a random forest per observation channel;
//   online phase   — query a "black-box" accelerator, record one trace, and
//                    classify it.
//
// The full 39-model Table III reproduction lives in bench/table3_fingerprint.

#include <cstdio>

#include "amperebleed/core/features.hpp"
#include "amperebleed/core/fingerprint.hpp"
#include "amperebleed/core/sampler.hpp"
#include "amperebleed/dnn/zoo.hpp"
#include "amperebleed/dpu/dpu.hpp"
#include "amperebleed/ml/random_forest.hpp"
#include "amperebleed/soc/soc.hpp"
#include "amperebleed/util/rng.hpp"

namespace {

using namespace amperebleed;

// Record one FPGA-current trace of `model` running on a fresh SoC.
core::Trace record_trace(const dnn::Model& model, std::size_t n_samples,
                         std::uint64_t seed) {
  dpu::DpuAccelerator dpu;
  auto run = dpu.run(model, sim::TimeNs{0},
                     sim::seconds(3) + sim::milliseconds(200), seed);
  soc::Soc soc(soc::zcu102_config(util::hash_combine(seed, 0xe9)));
  soc.fabric().deploy(dpu.descriptor());
  soc.add_activity(run.activity);
  soc.finalize();
  core::Sampler sampler(soc);
  core::SamplerConfig sc;
  sc.sample_count = n_samples;
  return sampler.collect({power::Rail::FpgaLogic, core::Quantity::Current},
                         sim::TimeNs{0}, sc);
}

}  // namespace

int main() {
  const std::vector<std::string> victims = {
      "MobileNet-V1", "SqueezeNet", "Inception-V1", "ResNet-18", "VGG-11"};
  const std::size_t traces_per_model = 8;
  const std::size_t n_samples = 85;  // ~3 s at 35 ms

  std::puts("DPU fingerprinting example — 5 candidate architectures\n");

  // ---- Offline phase: build the training set and fit the classifier. ----
  std::puts("[offline] collecting labelled traces...");
  ml::Dataset train(n_samples);
  for (std::size_t m = 0; m < victims.size(); ++m) {
    const dnn::Model model = dnn::build_model(victims[m]);
    for (std::size_t rep = 0; rep < traces_per_model; ++rep) {
      const auto trace =
          record_trace(model, n_samples, util::hash_combine(m, rep));
      core::add_trace(train, trace, static_cast<int>(m), n_samples);
    }
  }
  ml::ForestConfig forest_config;
  forest_config.n_trees = 60;
  ml::RandomForest forest(forest_config);
  forest.fit(train);
  std::printf("[offline] trained RF(%zu trees) on %zu traces\n\n",
              forest.tree_count(), train.size());

  // ---- Online phase: fingerprint a black-box accelerator. ---------------
  std::puts("[online] querying the black-box accelerator...");
  const std::size_t secret = 3;  // the victim deployed ResNet-18
  const auto observed = record_trace(dnn::build_model(victims[secret]),
                                     n_samples, 0xb1ac14b0);
  const auto features = observed.prefix(n_samples);
  const auto probabilities = forest.predict_proba(features);
  const auto ranking = forest.predict_top_k(features, victims.size());

  std::puts("[online] classifier ranking:");
  for (std::size_t r = 0; r < ranking.size(); ++r) {
    const auto cls = static_cast<std::size_t>(ranking[r]);
    std::printf("  %zu. %-14s p=%.3f%s\n", r + 1, victims[cls].c_str(),
                probabilities[cls], cls == secret ? "   <-- ground truth" : "");
  }
  std::printf("\nFingerprinted architecture: %s (%s)\n",
              victims[static_cast<std::size_t>(ranking[0])].c_str(),
              static_cast<std::size_t>(ranking[0]) == secret ? "correct"
                                                             : "incorrect");
  return static_cast<std::size_t>(ranking[0]) == secret ? 0 : 1;
}
