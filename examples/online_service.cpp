// Example: packaging the attack as a long-running service with the
// OnlineFingerprinter API — enroll-once / classify-many with open-set
// rejection — plus trace preprocessing and period recovery.
//
// Scenario: the attacker knows four candidate accelerators. A fifth,
// never-enrolled model must come back as "unknown" instead of a confident
// misclassification.

#include <cstdio>

#include "amperebleed/core/online.hpp"
#include "amperebleed/core/preprocess.hpp"
#include "amperebleed/core/sampler.hpp"
#include "amperebleed/dnn/zoo.hpp"
#include "amperebleed/dpu/dpu.hpp"
#include "amperebleed/soc/soc.hpp"
#include "amperebleed/stats/spectral.hpp"
#include "amperebleed/util/rng.hpp"

namespace {

using namespace amperebleed;

core::Trace record_trace(const std::string& model_name, std::size_t n_samples,
                         std::uint64_t seed) {
  const dnn::Model model = dnn::build_model(model_name);
  dpu::DpuAccelerator dpu;
  auto run = dpu.run(model, sim::TimeNs{0},
                     sim::seconds(3) + sim::milliseconds(200), seed);
  soc::Soc soc(soc::zcu102_config(util::hash_combine(seed, 0x0e)));
  soc.fabric().deploy(dpu.descriptor());
  soc.add_activity(run.activity);
  soc.finalize();
  core::Sampler sampler(soc);
  core::SamplerConfig sc;
  sc.sample_count = n_samples;
  return sampler.collect({power::Rail::FpgaLogic, core::Quantity::Current},
                         sim::TimeNs{0}, sc);
}

void report(const core::OnlineFingerprinter::Verdict& verdict,
            const core::Trace& trace, const char* truth) {
  const std::size_t period =
      stats::dominant_period(trace.values(), trace.size() / 2);
  std::printf("  truth=%-18s -> %s (confidence %.2f, margin %.2f)",
              truth,
              verdict.known ? verdict.model_name.c_str() : "UNKNOWN",
              verdict.confidence, verdict.margin);
  if (period != 0) {
    std::printf("  [period ~%.0f ms]",
                static_cast<double>(period) * trace.period().millis());
  }
  std::puts("");
}

}  // namespace

int main() {
  const std::vector<std::string> enrolled = {
      "MobileNet-V1", "SqueezeNet", "ResNet-50", "VGG-16"};
  const std::size_t n_samples = 85;  // 3 s at 35 ms

  std::puts("Online fingerprinting service with open-set rejection\n");

  // Thresholds tuned on enrolled-class validation traces (which classify at
  // ~0.95+ confidence with ~0.9 margins); anything well below that is
  // treated as outside the zoo.
  core::OnlineFingerprinterConfig config;
  config.forest.n_trees = 60;
  config.min_confidence = 0.80;
  config.min_margin = 0.55;
  core::OnlineFingerprinter service(config);

  std::puts("[enroll] 8 traces per candidate architecture...");
  for (std::size_t m = 0; m < enrolled.size(); ++m) {
    for (std::size_t rep = 0; rep < 8; ++rep) {
      service.enroll(record_trace(enrolled[m], n_samples,
                                  util::hash_combine(m, rep)),
                     enrolled[m]);
    }
  }
  service.train();
  std::printf("[train] forest over %zu traces, %zu classes\n\n",
              service.enrolled_traces(), service.class_names().size());

  // Batched classification: record all fresh observations, then score the
  // whole batch in one classify_many call (forest inference for the batch
  // runs in parallel on the thread pool; verdicts come back in input order,
  // identical to per-trace classify()).
  std::puts("[classify] fresh observations (batched):");
  std::vector<core::Trace> observations;
  observations.reserve(enrolled.size());
  for (std::size_t m = 0; m < enrolled.size(); ++m) {
    observations.push_back(
        record_trace(enrolled[m], n_samples, 0xbeef00 + m));
  }
  const auto verdicts = service.classify_many(observations);
  for (std::size_t m = 0; m < enrolled.size(); ++m) {
    report(verdicts[m], observations[m], enrolled[m].c_str());
  }

  // A model the service never saw: Inception-V4.
  const auto alien = record_trace("Inception-V4", n_samples, 0xa11e4);
  const auto verdict = service.classify(alien);
  report(verdict, alien, "Inception-V4*");
  std::printf("\n(*) never enrolled — expected UNKNOWN; got %s\n",
              verdict.known ? "a (wrong) classification" : "UNKNOWN");
  return verdict.known ? 1 : 0;
}
