// Example: packaging the attack as a long-running multi-tenant service with
// the amperebleed::serve API — typed requests through a bounded queue, batch
// coalescing onto classify_many sweeps, per-tenant enrollment namespaces,
// and open-set rejection.
//
// Scenario: two independent attackers (tenants) share one service. Tenant
// "lab-a" knows four candidate accelerators; tenant "lab-b" knows two. A
// fifth, never-enrolled model must come back as "unknown" instead of a
// confident misclassification — and after lab-b retires, its requests must
// bounce with a typed status instead of stale verdicts.

#include <cstdio>

#include "amperebleed/core/sampler.hpp"
#include "amperebleed/dnn/zoo.hpp"
#include "amperebleed/dpu/dpu.hpp"
#include "amperebleed/serve/service.hpp"
#include "amperebleed/soc/soc.hpp"
#include "amperebleed/stats/spectral.hpp"
#include "amperebleed/util/rng.hpp"

namespace {

using namespace amperebleed;

core::Trace record_trace(const std::string& model_name, std::size_t n_samples,
                         std::uint64_t seed) {
  const dnn::Model model = dnn::build_model(model_name);
  dpu::DpuAccelerator dpu;
  auto run = dpu.run(model, sim::TimeNs{0},
                     sim::seconds(3) + sim::milliseconds(200), seed);
  soc::Soc soc(soc::zcu102_config(util::hash_combine(seed, 0x0e)));
  soc.fabric().deploy(dpu.descriptor());
  soc.add_activity(run.activity);
  soc.finalize();
  core::Sampler sampler(soc);
  core::SamplerConfig sc;
  sc.sample_count = n_samples;
  return sampler.collect({power::Rail::FpgaLogic, core::Quantity::Current},
                         sim::TimeNs{0}, sc);
}

serve::Request classify_request(const std::string& tenant,
                                core::Trace trace) {
  serve::Request request;
  request.kind = serve::RequestKind::Classify;
  request.tenant = tenant;
  request.trace = std::move(trace);
  return request;
}

void report(const serve::Response& response, const char* truth) {
  std::printf("  [%s] truth=%-18s -> ", response.tenant.c_str(), truth);
  if (!response.ok()) {
    std::printf("%s (%s)\n",
                std::string(serve::status_name(response.status)).c_str(),
                response.error.c_str());
    return;
  }
  const auto& verdict = response.verdict;
  std::printf("%s (confidence %.2f, margin %.2f, %lld virtual us)\n",
              verdict.known ? verdict.model_name.c_str() : "UNKNOWN",
              verdict.confidence, verdict.margin,
              static_cast<long long>(response.latency().ns / 1000));
}

}  // namespace

int main() {
  const std::vector<std::string> lab_a = {"MobileNet-V1", "SqueezeNet",
                                          "ResNet-50", "VGG-16"};
  const std::vector<std::string> lab_b = {"Inception-V1", "DenseNet-121"};
  const std::size_t n_samples = 85;  // 3 s at 35 ms

  std::puts("Multi-tenant fingerprinting service with open-set rejection\n");

  // Thresholds tuned on enrolled-class validation traces (which classify at
  // ~0.95+ confidence with ~0.9 margins); anything well below that is
  // treated as outside the zoo.
  serve::ServiceConfig config;
  config.fingerprinter.forest.n_trees = 60;
  config.fingerprinter.min_confidence = 0.80;
  config.fingerprinter.min_margin = 0.55;
  serve::ClassificationService service(config);

  // --- Enroll both tenants through the request queue. Every trace is a
  // typed request; the tick loop executes them in submission order.
  std::puts("[enroll] 8 traces per candidate architecture, 2 tenants...");
  const auto enroll_tenant = [&](const std::string& tenant,
                                 const std::vector<std::string>& models) {
    for (std::size_t m = 0; m < models.size(); ++m) {
      for (std::size_t rep = 0; rep < 8; ++rep) {
        serve::Request request;
        request.kind = serve::RequestKind::Enroll;
        request.tenant = tenant;
        request.label = models[m];
        request.trace = record_trace(models[m], n_samples,
                                     util::hash_combine(m, rep));
        service.submit(std::move(request));
      }
    }
    serve::Request train;
    train.kind = serve::RequestKind::Train;
    train.tenant = tenant;
    service.submit(std::move(train));
  };
  enroll_tenant("lab-a", lab_a);
  enroll_tenant("lab-b", lab_b);
  for (const auto& response : service.drain()) {
    if (!response.ok()) {
      std::printf("  enrollment failed: %s\n", response.error.c_str());
      return 1;
    }
  }
  for (const auto& name : service.tenant_names()) {
    const serve::TenantSession* tenant = service.tenant(name);
    std::printf("[train]  %s: forest over %llu traces, %zu classes\n",
                name.c_str(),
                static_cast<unsigned long long>(tenant->enrolled()),
                tenant->fingerprinter().class_names().size());
  }

  // --- One mixed burst: fresh observations for both tenants, coalesced by
  // the service into per-tenant classify_many sweeps in a single tick.
  std::puts("\n[classify] fresh observations (one coalesced burst):");
  std::vector<const char*> truth;
  for (std::size_t m = 0; m < lab_a.size(); ++m) {
    service.submit(classify_request(
        "lab-a", record_trace(lab_a[m], n_samples, 0xbeef00 + m)));
    truth.push_back(lab_a[m].c_str());
  }
  for (std::size_t m = 0; m < lab_b.size(); ++m) {
    service.submit(classify_request(
        "lab-b", record_trace(lab_b[m], n_samples, 0xcafe00 + m)));
    truth.push_back(lab_b[m].c_str());
  }
  const auto verdicts = service.tick();
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    report(verdicts[i], truth[i]);
  }
  const auto stats = service.stats();
  std::printf("  (%llu rows scored in %llu coalesced sweep(s))\n",
              static_cast<unsigned long long>(stats.coalesced_rows),
              static_cast<unsigned long long>(stats.sweeps));

  // --- Open set: a model lab-a never saw, and a retired tenant.
  std::puts("\n[open-set] never-enrolled model + retired tenant:");
  service.submit(classify_request(
      "lab-a", record_trace("Inception-V4", n_samples, 0xa11e4)));
  serve::Request retire;
  retire.kind = serve::RequestKind::Retire;
  retire.tenant = "lab-b";
  service.submit(std::move(retire));
  service.submit(classify_request(
      "lab-b", record_trace(lab_b[0], n_samples, 0xdead)));
  const auto tail = service.drain();
  report(tail[0], "Inception-V4*");
  report(tail[2], lab_b[0].c_str());

  const bool unknown_rejected = tail[0].ok() && !tail[0].verdict.known;
  const bool retired_refused =
      tail[2].status == serve::ServeStatus::TenantRetired;
  std::printf("\n(*) never enrolled — expected UNKNOWN; got %s\n",
              unknown_rejected ? "UNKNOWN" : "a (wrong) classification");
  std::printf("retired tenant refused with typed status: %s\n",
              retired_refused ? "yes" : "NO");
  return unknown_rejected && retired_refused ? 0 : 1;
}
