// Example: a reduced Fig 2 characterization sweep. Shows how to use
// core::run_characterization() directly and how to interpret the per-channel
// series. (The full 161-level sweep lives in bench/fig2_characterization.)

#include <cstdio>

#include "amperebleed/core/characterize.hpp"
#include "amperebleed/core/report.hpp"
#include "amperebleed/util/strings.hpp"

int main() {
  using namespace amperebleed;

  core::CharacterizationConfig config;
  config.levels = 17;               // 0..16 groups of 10k instances each
  config.samples_per_level = 300;
  config.ro_samples_per_level = 300;
  config.virus.group_count = 16;
  config.virus.dynamic_current_per_instance_amps = 4e-6;  // 40 mA / 10k
  config.seed = 7;

  std::puts("Mini characterization: 17 activity levels, 300 samples each\n");
  const auto result = core::run_characterization(config);

  core::TextTable table({"Level", "Current (mA)", "Voltage (mV)",
                         "Power (mW)", "RO (counts)"});
  for (std::size_t level = 0; level < config.levels; ++level) {
    table.add_row({
        util::format("%zu", level),
        core::fmt(result.current.mean_per_level[level], 1),
        core::fmt(result.voltage.mean_per_level[level], 3),
        core::fmt(result.power.mean_per_level[level] * 1e-3, 1),
        core::fmt(result.ro.mean_per_level[level], 2),
    });
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nPearson r vs level: current %.4f, voltage %.3f, power %.4f, "
              "RO %.3f\n",
              result.current.pearson_vs_level, result.voltage.pearson_vs_level,
              result.power.pearson_vs_level, result.ro.pearson_vs_level);
  std::printf("Per-level variation: current %.1f LSB, RO %.4f counts "
              "(ratio %.0fx)\n",
              result.current.variation_lsb_per_level,
              result.ro.variation_lsb_per_level,
              result.current_over_ro_variation);
  return 0;
}
