// Quickstart: the smallest complete AmpereBleed scenario.
//
// 1. Build a simulated ZCU102-class SoC.
// 2. Deploy a victim workload on the FPGA (power virus, 100 groups).
// 3. As an *unprivileged* process, poll the FPGA rail's INA226 through
//    /sys/class/hwmon and watch the victim's activity leak.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "amperebleed/core/sampler.hpp"
#include "amperebleed/fpga/power_virus.hpp"
#include "amperebleed/soc/soc.hpp"
#include "amperebleed/stats/descriptive.hpp"

int main() {
  using namespace amperebleed;

  // --- Victim side -------------------------------------------------------
  // The victim controls the FPGA: deploy 160k power-virus instances and
  // switch 100 of the 160 groups on one second into the run.
  fpga::PowerVirus virus;
  virus.set_active_groups(sim::seconds(1), 100);

  soc::Soc soc(soc::zcu102_config(/*seed=*/42));
  soc.fabric().deploy(virus.descriptor());
  soc.add_activity(virus.activity());
  soc.finalize();  // power-on: sensors start converting

  // --- Attacker side -----------------------------------------------------
  // An unprivileged process on the ARM cores. It only ever touches
  // /sys/class/hwmon/hwmonN/curr1_input.
  core::Sampler attacker(soc);
  const core::Channel fpga_current{power::Rail::FpgaLogic,
                                   core::Quantity::Current};

  core::SamplerConfig config;
  config.sample_count = 25;  // 25 x 35 ms per phase

  const auto idle = attacker.collect(fpga_current, sim::milliseconds(40),
                                     config);
  const auto busy = attacker.collect(fpga_current, sim::seconds(2), config);

  const auto idle_stats = stats::summarize(idle.values());
  const auto busy_stats = stats::summarize(busy.values());

  std::puts("AmpereBleed quickstart — unprivileged hwmon current sampling\n");
  std::printf("victim idle : %7.0f mA (std %.1f)\n", idle_stats.mean,
              idle_stats.stddev);
  std::printf("victim busy : %7.0f mA (std %.1f)\n", busy_stats.mean,
              busy_stats.stddev);
  std::printf("leaked step : %7.0f mA  (expected: 100 groups x 40 mA = "
              "4000 mA)\n",
              busy_stats.mean - idle_stats.mean);
  std::puts("\nNo crafted circuit, no shared-PDN assumption — just the");
  std::puts("board's own INA226 sensors read through world-readable sysfs.");
  return 0;
}
