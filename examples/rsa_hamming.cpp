// Example: inferring RSA key Hamming weights from hwmon current readings.
// Runs a reduced version of the Fig 4 experiment (5 keys) and shows how the
// attacker turns raw curr1_input polls into a key-space reduction.

#include <cstdio>

#include "amperebleed/core/report.hpp"
#include "amperebleed/core/rsa_attack.hpp"
#include "amperebleed/stats/histogram.hpp"
#include "amperebleed/util/strings.hpp"

int main() {
  using namespace amperebleed;

  core::RsaAttackConfig config;
  config.hamming_weights = {1, 128, 256, 384, 512};
  config.sample_count = 3'000;  // 3 s at 1 kHz per key
  config.seed = 0xe5a;

  std::puts("RSA-1024 Hamming-weight attack example — 5 keys, 3 s each\n");
  const auto result = core::run_rsa_attack(config);

  core::TextTable table({"Hamming weight", "Current mean (mA)",
                         "Power mean (mW)", "Separable (current)"});
  for (std::size_t k = 0; k < result.keys.size(); ++k) {
    const auto& key = result.keys[k];
    table.add_row({util::format("%zu", key.hamming_weight),
                   core::fmt(key.current_ma.mean, 1),
                   core::fmt(key.power_mw.mean, 1),
                   util::format("group %zu", result.current_group_ids[k])});
  }
  std::fputs(table.render().c_str(), stdout);

  // Render the extreme keys' current distributions to show the separation.
  const auto& lo = result.keys.front();
  const auto& hi = result.keys.back();
  const double bin_lo = lo.current_ma.min - 5.0;
  const double bin_hi = hi.current_ma.max + 5.0;
  stats::Histogram hist_lo(bin_lo, bin_hi, 12);
  stats::Histogram hist_hi(bin_lo, bin_hi, 12);
  hist_lo.add_all(lo.current_samples_ma);
  hist_hi.add_all(hi.current_samples_ma);
  std::printf("\ncurrent distribution, HW=%zu:\n%s", lo.hamming_weight,
              hist_lo.render(40).c_str());
  std::printf("\ncurrent distribution, HW=%zu:\n%s", hi.hamming_weight,
              hist_hi.render(40).c_str());

  std::printf("\n%zu of %zu keys separable via current; power alone gives "
              "%zu groups.\n",
              result.current_groups, result.keys.size(), result.power_groups);
  std::puts("Knowing HW(d) cuts brute-force search space and enables");
  std::puts("statistical key-recovery attacks (paper Sec IV-C).");
  return 0;
}
