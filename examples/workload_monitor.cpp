// Example: workload identification — a broader application of the channel
// (cf. the paper's related work on classifying computations). A single
// unprivileged observer watches the FPGA current and decides WHICH kind of
// victim is currently running: idle board, power virus, RSA-1024, AES-128,
// or DPU inference. Uses simple per-trace summary features and the
// nearest-centroid classifier.
//
// Also demonstrates the inference-quality layer (obs/quality.hpp): a
// DriftMonitor watches the live feature stream against the enrollment
// profile and the run ends with a quality verdict — is the monitor still
// operating on the data it was trained on?

#include <cstdio>
#include <memory>

#include "amperebleed/core/sampler.hpp"
#include "amperebleed/crypto/rsa.hpp"
#include "amperebleed/dnn/zoo.hpp"
#include "amperebleed/dpu/dpu.hpp"
#include "amperebleed/fpga/aes_circuit.hpp"
#include "amperebleed/fpga/power_virus.hpp"
#include "amperebleed/fpga/rsa_circuit.hpp"
#include "amperebleed/ml/baselines.hpp"
#include "amperebleed/obs/drift.hpp"
#include "amperebleed/obs/obs.hpp"
#include "amperebleed/obs/quality.hpp"
#include "amperebleed/stats/descriptive.hpp"
#include "amperebleed/util/rng.hpp"

namespace {

using namespace amperebleed;

constexpr const char* kClasses[] = {"idle", "power-virus", "rsa-1024",
                                    "aes-128", "dpu-inference"};

// Build the FPGA-rail activity for one workload class.
power::RailActivity make_activity(int cls, std::uint64_t seed,
                                  sim::TimeNs end) {
  switch (cls) {
    case 0:  // idle board
      return {};
    case 1: {  // power virus at a seed-dependent level
      fpga::PowerVirus virus;
      util::Rng rng(seed);
      virus.set_active_groups(sim::milliseconds(1),
                              40 + rng.uniform_below(80));
      return virus.activity();
    }
    case 2: {  // RSA-1024 encrypt loop, random key
      crypto::RsaKey key;
      key.modulus = crypto::rsa1024_test_modulus();
      key.private_exponent = crypto::exponent_with_hamming_weight(
          1024, 256 + (seed % 512), seed);
      fpga::RsaCircuit circuit(fpga::RsaCircuitConfig{}, std::move(key));
      return circuit.schedule(sim::milliseconds(1), end).activity;
    }
    case 3: {  // AES-128 stream
      crypto::Aes128::Key key{};
      util::Rng rng(seed);
      for (auto& b : key) b = static_cast<std::uint8_t>(rng.uniform_below(256));
      fpga::AesCircuit circuit(fpga::AesCircuitConfig{}, key);
      return circuit.schedule(sim::milliseconds(1), end, seed).activity;
    }
    default: {  // DPU running a random zoo model
      const auto names = dnn::zoo_model_names();
      const auto& name = names[seed % names.size()];
      dpu::DpuAccelerator dpu;
      return dpu.run(dnn::build_model(name), sim::milliseconds(1), end, seed)
          .activity;
    }
  }
}

// Trace summary features: mean, spread, peak-to-peak, successive-diff.
std::vector<double> features_of(const core::Trace& trace) {
  const auto s = stats::summarize(trace.values());
  return {s.mean, s.stddev, s.max - s.min,
          stats::mean_abs_successive_diff(trace.values())};
}

std::vector<double> observe(int cls, std::uint64_t seed) {
  const sim::TimeNs end = sim::seconds(3);
  soc::Soc soc(soc::zcu102_config(util::hash_combine(seed, 0x3c)));
  soc.add_activity(make_activity(cls, seed, end));
  soc.finalize();
  core::Sampler sampler(soc);
  core::SamplerConfig sc;
  sc.sample_count = 70;
  const auto trace = sampler.collect(
      {power::Rail::FpgaLogic, core::Quantity::Current}, sim::milliseconds(50),
      sc);
  return features_of(trace);
}

}  // namespace

int main() {
  std::puts("Workload monitor: what is the FPGA doing right now?\n");

  // Quality monitoring on: the sampler feeds the data-quality tallies and
  // the drift monitor below feeds /quality-style drift reports.
  obs::ObsConfig obs_config;
  obs_config.enabled = true;
  obs_config.quality = true;
  obs::init(obs_config);

  // Enroll 6 observations of each workload class.
  ml::Dataset train(4);
  for (int cls = 0; cls < 5; ++cls) {
    for (std::uint64_t rep = 0; rep < 6; ++rep) {
      train.add(observe(cls, 100 * static_cast<std::uint64_t>(cls) + rep),
                cls);
    }
  }
  ml::CentroidClassifier classifier;
  classifier.fit(train);
  std::printf("[train] %zu observations across %d workload classes\n\n",
              train.size(), 5);

  // Drift monitor over the live feature stream: window of one observation
  // per class, evaluated on every observation past the first window.
  obs::DriftConfig drift_config;
  drift_config.enabled = true;
  drift_config.name = "workload_monitor";
  drift_config.window = 5;
  drift_config.stride = 1;
  drift_config.confirm = 2;
  obs::DriftMonitor drift(obs::ReferenceProfile::from_dataset(train),
                          drift_config);

  // Classify fresh observations of every class.
  int correct = 0;
  for (int cls = 0; cls < 5; ++cls) {
    const auto f = observe(cls, 7'000 + static_cast<std::uint64_t>(cls));
    const int predicted = classifier.predict(f);
    drift.observe(f, predicted, 1.0);  // centroid verdicts carry no p
    std::printf("  running %-13s -> monitor says %-13s (%s)\n", kClasses[cls],
                kClasses[predicted], predicted == cls ? "correct" : "WRONG");
    if (predicted == cls) ++correct;
  }
  std::printf("\n%d / 5 workload types identified from curr1_input alone.\n",
              correct);

  // Live quality verdict: drift state of the feature stream plus the
  // acquisition-side data-quality tallies the sampler reported.
  const obs::DriftReport report = drift.report();
  std::printf("\n[quality] drift state: %s (%llu obs, %llu evals, "
              "psi_mean %.3f, class_p %.3f)\n",
              std::string(obs::drift_state_name(report.state)).c_str(),
              static_cast<unsigned long long>(report.observations),
              static_cast<unsigned long long>(report.evaluations),
              report.last.psi_mean, report.last.class_p);
  for (const auto& ch : obs::quality_hub().data_quality().channels()) {
    std::printf("[quality] channel %s: %llu traces, gap %.1f%%, clip %.1f%%, "
                "%llu warnings\n",
                ch.channel.c_str(),
                static_cast<unsigned long long>(ch.traces),
                100.0 * ch.gap_fraction(), 100.0 * ch.clip_rate(),
                static_cast<unsigned long long>(ch.warnings));
  }
  const bool healthy = report.state == obs::DriftState::Ok;
  std::printf("[quality] verdict: %s\n",
              healthy ? "monitor operating in-distribution"
                      : "monitor input has drifted from enrollment");

  return correct == 5 && healthy ? 0 : 1;
}
