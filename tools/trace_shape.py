#!/usr/bin/env python3
"""Canonicalize a Chrome trace_event JSON into its span-tree shape.

Span/trace/region ids are allocated from process-wide atomics, so two runs
of the same workload — or the same run at different thread-pool sizes —
produce different ids even when the causal structure is identical.  This
tool strips the ids and reduces the wall-clock span tree to a sorted
multiset of root-to-leaf name paths, which IS stable across pool sizes.

Usage:
    trace_shape.py TRACE.json            # print the canonical shape
    trace_shape.py A.json B.json [...]   # exit 1 unless all shapes match

Only phase-'X' (complete) events on the wall-clock track with a span id
are considered; flow events ('s'/'f'), metadata ('M'), and the virtual
clock track carry ids or timestamps that legitimately differ.
"""

import json
import sys
from collections import Counter


def load_spans(path):
    with open(path) as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents", doc if isinstance(doc, list) else [])
    spans = {}
    for e in events:
        # pid 1 is the wall-clock track; pid 2 is the virtual sim clock.
        if e.get("ph") != "X" or e.get("pid") == 2:
            continue
        args = e.get("args", {})
        span_id = args.get("span_id", 0)
        if not span_id:
            continue
        spans[span_id] = (args.get("parent_id", 0), e.get("name", "?"))
    return spans


def shape(spans):
    """Sorted multiset of root-to-leaf name paths, ids erased."""
    children = Counter()
    for parent_id, _ in spans.values():
        children[parent_id] += 1
    paths = Counter()
    for span_id, (parent_id, name) in spans.items():
        if children[span_id]:
            continue  # interior node; leaves spell out the full path
        path = [name]
        seen = {span_id}
        while parent_id in spans and parent_id not in seen:
            seen.add(parent_id)
            path.append(spans[parent_id][1])
            parent_id = spans[parent_id][0]
        paths[";".join(reversed(path))] += 1
    return sorted(paths.items())


def render(paths):
    return "".join(f"{count} {path}\n" for path, count in paths)


def main(argv):
    if len(argv) < 2:
        sys.stderr.write(__doc__)
        return 2
    shapes = [(path, shape(load_spans(path))) for path in argv[1:]]
    if len(shapes) == 1:
        sys.stdout.write(render(shapes[0][1]))
        return 0
    reference_path, reference = shapes[0]
    ok = True
    for path, candidate in shapes[1:]:
        if candidate != reference:
            ok = False
            sys.stderr.write(f"shape mismatch: {reference_path} vs {path}\n")
            ref_lines = set(render(reference).splitlines())
            cand_lines = set(render(candidate).splitlines())
            for line in sorted(ref_lines - cand_lines):
                sys.stderr.write(f"  - {line}\n")
            for line in sorted(cand_lines - ref_lines):
                sys.stderr.write(f"  + {line}\n")
    if ok:
        total = sum(count for _, count in reference)
        print(f"trace shapes identical across {len(shapes)} files "
              f"({total} leaf paths)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
