// bench_compare — perf-trajectory regression gate over BENCH_*.json run
// records. Usage:
//
//   bench_compare [flags] --baseline A --current B
//   bench_compare [flags] A B [C ...]        (positional: snapshots in order)
//
// Each snapshot is a single BENCH_*.json file or a trajectory directory
// written by bench/run_all.sh. With more than two snapshots, adjacent pairs
// are compared in sequence (the trajectory view); the exit status reflects
// the LAST pair — the gate asks "did the newest change regress?".
//
// Flags:
//   --threshold X        relative-delta threshold (default 0.10)
//   --alpha X            Mann-Whitney significance level (default 0.01)
//   --metrics a,b,...    only compare metrics whose key contains a substring
//   --exclude a,b,...    skip metrics whose key contains a substring
//   --force              compare despite hostname/build-type mismatches
//   --stages             surface per-stage pipeline attribution and SLO
//                        keys (stage_* / slo_*) as informational rows —
//                        shown, but never counted as regressions
//   --quality            surface drift/data-quality telemetry keys
//                        (drift_* / quality_*) as informational rows,
//                        same never-gating policy as --stages
//   --json               machine-readable report on stdout
//   --verbose            include unchanged rows in the table
//
// Exit codes: 0 no regression; 1 regression beyond threshold; 2 usage or
// I/O error; 3 environment mismatch without --force.

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "amperebleed/obs/bench_compare.hpp"
#include "amperebleed/util/strings.hpp"

namespace {

using amperebleed::obs::BenchRecord;
using amperebleed::obs::CompareOptions;
using amperebleed::obs::CompareReport;

struct Cli {
  CompareOptions options;
  bool json = false;
  bool verbose = false;
  std::vector<std::string> snapshots;
};

void usage(std::FILE* out) {
  std::fputs(
      "usage: bench_compare [--threshold X] [--alpha X] [--metrics a,b]\n"
      "                     [--exclude a,b] [--force] [--stages] [--quality]\n"
      "                     [--json] [--verbose] SNAPSHOT SNAPSHOT [...]\n"
      "       (SNAPSHOT = BENCH_*.json file or run_all.sh trajectory dir;\n"
      "        also accepts --baseline A --current B)\n",
      out);
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  for (const auto& part : amperebleed::util::split(csv, ',')) {
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

Cli parse_cli(int argc, char** argv) {
  Cli cli;
  std::string baseline;
  std::string current;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(arg + " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--threshold") {
      cli.options.threshold = std::stod(next());
    } else if (arg == "--alpha") {
      cli.options.alpha = std::stod(next());
    } else if (arg == "--metrics") {
      cli.options.include = split_list(next());
    } else if (arg == "--exclude") {
      cli.options.exclude = split_list(next());
    } else if (arg == "--baseline") {
      baseline = next();
    } else if (arg == "--current") {
      current = next();
    } else if (arg == "--force") {
      cli.options.force = true;
    } else if (arg == "--stages") {
      cli.options.show_stages = true;
    } else if (arg == "--quality") {
      cli.options.show_quality = true;
    } else if (arg == "--json") {
      cli.json = true;
    } else if (arg == "--verbose") {
      cli.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      throw std::invalid_argument("unknown flag: " + arg);
    } else {
      cli.snapshots.push_back(arg);
    }
  }
  if (!baseline.empty()) cli.snapshots.insert(cli.snapshots.begin(), baseline);
  if (!current.empty()) cli.snapshots.push_back(current);
  if (cli.snapshots.size() < 2) {
    throw std::invalid_argument("need at least two snapshots to compare");
  }
  return cli;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  try {
    cli = parse_cli(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    usage(stderr);
    return 2;
  }

  try {
    std::vector<std::vector<BenchRecord>> snapshots;
    snapshots.reserve(cli.snapshots.size());
    for (const auto& path : cli.snapshots) {
      snapshots.push_back(amperebleed::obs::load_records(path));
    }

    CompareReport last;
    for (std::size_t i = 0; i + 1 < snapshots.size(); ++i) {
      last = amperebleed::obs::compare_records(snapshots[i], snapshots[i + 1],
                                               cli.options);
      if (cli.json) {
        if (i + 2 == snapshots.size()) {
          std::fputs((last.to_json().dump(2) + "\n").c_str(), stdout);
        }
      } else {
        std::printf("=== %s -> %s ===\n", cli.snapshots[i].c_str(),
                    cli.snapshots[i + 1].c_str());
        std::fputs(last.to_table(cli.verbose).c_str(), stdout);
        std::putchar('\n');
      }
    }

    if (last.env_mismatch && !cli.options.force) {
      std::fprintf(stderr,
                   "bench_compare: environment mismatch (see warnings); "
                   "rerun with --force to compare anyway\n");
      return 3;
    }
    if (last.regressions() > 0) {
      std::fprintf(stderr, "bench_compare: %zu regression(s) beyond "
                           "threshold %.3g\n",
                   last.regressions(), cli.options.threshold);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }
}
